//! The online calibrator: streams tick records in, model versions out.
//!
//! One [`OnlineCalibrator`] serves a zone. Every server tick feeds it the
//! tick's [`TickRecord`] (via [`OnlineCalibrator::ingest`]): per-task
//! timer seconds become per-item cost samples in the bounded window
//! store, the linear parameters' RLS estimators absorb them on the spot,
//! and the tick-duration residual drives the CUSUM drift detector. Once
//! per cluster tick, [`OnlineCalibrator::end_tick`] decides whether a
//! refit is due — on the periodic cadence, or out-of-cadence when the
//! drift detector fired — assembles a candidate parameter set
//! (RLS fast path for linear parameters, warm-started Levenberg–Marquardt
//! for the quadratic ones, or a single-factor rescale of the published
//! curve when the window's x-spread is too narrow to identify individual
//! coefficients) and offers it to the [`ModelRegistry`], which applies
//! the quality gates, cooldown and hysteresis.

use crate::drift::{CusumConfig, CusumDetector};
use crate::registry::{
    CandidateFit, FitPath, ModelRegistry, ParamRefit, PublishOutcome, RefitReason, RegistryConfig,
};
use crate::rls::Rls;
use crate::window::WindowStore;
use roia_fit::lm::{fit, LmConfig};
use roia_fit::model::Polynomial;
use roia_model::{CostFn, ParamKind, ScalabilityModel};
use rtf_core::metrics::TickRecord;
use rtf_core::timer::TaskKind;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Calibrator tuning.
#[derive(Debug, Clone)]
pub struct CalibratorConfig {
    /// Per-parameter sliding-window capacity.
    pub window_capacity: usize,
    /// Ticks between periodic refits.
    pub refit_interval_ticks: u64,
    /// Minimum ticks between drift-triggered refits (an unresolved drift
    /// keeps retrying at this spacing until a refit ships).
    pub drift_backoff_ticks: u64,
    /// RLS forgetting factor for the linear fast path.
    pub rls_forgetting: f64,
    /// Minimum relative x-coverage, `(x_max − x_min) / x_mean`, a
    /// parameter's window must span before a full per-coefficient refit
    /// is attempted. Below it the data cannot separate intercept from
    /// slope (every sample sits at the same population), and a fit that
    /// nails the operating point can still extrapolate wildly — swinging
    /// the model's capacity and replica limits the policy steers by.
    /// Narrow windows instead fall back to rescaling the published curve
    /// by a single least-squares factor ([`FitPath::Scale`]), which is
    /// identifiable from constant-x data and exactly right for uniform
    /// cost shifts.
    pub min_x_spread: f64,
    /// Drift-detector tuning.
    pub cusum: CusumConfig,
    /// Registry tuning (gates, cooldown, hysteresis).
    pub registry: RegistryConfig,
    /// Levenberg–Marquardt tuning for the quadratic refits.
    pub lm: LmConfig,
}

impl Default for CalibratorConfig {
    fn default() -> Self {
        Self {
            window_capacity: 512,
            refit_interval_ticks: 250,
            drift_backoff_ticks: 125,
            rls_forgetting: 0.995,
            min_x_spread: 0.2,
            cusum: CusumConfig::default(),
            registry: RegistryConfig::default(),
            lm: LmConfig::default(),
        }
    }
}

/// Counters describing the calibrator's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CalibratorStats {
    /// Tick records ingested.
    pub records_ingested: u64,
    /// Per-parameter samples accepted into the windows.
    pub samples_accepted: u64,
    /// Refits attempted (cadence + drift).
    pub refit_attempts: u64,
    /// Refits attempted because the drift detector fired.
    pub drift_refits: u64,
    /// Parameter fits that errored out (kept the previous value).
    pub fit_errors: u64,
    /// Tick of the last refit attempt.
    pub last_refit_tick: Option<u64>,
}

/// What one refit attempt did.
#[derive(Debug, Clone)]
pub struct RefitReport {
    /// Tick at which the refit ran.
    pub tick: u64,
    /// What prompted it.
    pub reason: RefitReason,
    /// Parameters with enough window samples to refit.
    pub refitted: Vec<ParamKind>,
    /// The registry's verdict.
    pub outcome: PublishOutcome,
}

/// The streaming calibration engine (see the module docs).
pub struct OnlineCalibrator {
    config: CalibratorConfig,
    registry: Arc<ModelRegistry>,
    windows: WindowStore,
    rls: BTreeMap<ParamKind, Rls>,
    drift: CusumDetector,
    drift_pending: bool,
    last_refit_tick: Option<u64>,
    last_drift_refit_tick: Option<u64>,
    stats: CalibratorStats,
}

/// Tasks whose timer records map to model parameters.
const SAMPLED_TASKS: [TaskKind; 9] = [
    TaskKind::UaDser,
    TaskKind::Ua,
    TaskKind::FaDser,
    TaskKind::Fa,
    TaskKind::Npc,
    TaskKind::Aoi,
    TaskKind::Su,
    TaskKind::MigIni,
    TaskKind::MigRcv,
];

/// Maps a framework task to its model parameter.
fn task_param(task: TaskKind) -> Option<ParamKind> {
    match task {
        TaskKind::UaDser => Some(ParamKind::UaDser),
        TaskKind::Ua => Some(ParamKind::Ua),
        TaskKind::FaDser => Some(ParamKind::FaDser),
        TaskKind::Fa => Some(ParamKind::Fa),
        TaskKind::Npc => Some(ParamKind::Npc),
        TaskKind::Aoi => Some(ParamKind::Aoi),
        TaskKind::Su => Some(ParamKind::Su),
        TaskKind::MigIni => Some(ParamKind::MigIni),
        TaskKind::MigRcv => Some(ParamKind::MigRcv),
        TaskKind::Other => None,
    }
}

/// The per-record item count a task's cost is divided by (the "per
/// entity" denominators of §III-A).
fn item_count(task: TaskKind, r: &TickRecord) -> u32 {
    match task {
        TaskKind::UaDser | TaskKind::Ua => r.inputs_processed,
        TaskKind::FaDser | TaskKind::Fa => r.forwarded_processed,
        TaskKind::Npc => r.npcs,
        TaskKind::Aoi | TaskKind::Su => r.updates_sent,
        TaskKind::MigIni => r.migrations_initiated,
        TaskKind::MigRcv => r.migrations_received,
        TaskKind::Other => 0,
    }
}

/// Relative x-coverage of a sample window: `(x_max − x_min) / x_mean`.
fn x_spread(xs: &[f64]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    if xs.is_empty() || sum <= 0.0 {
        return 0.0;
    }
    (max - min) / (sum / xs.len() as f64)
}

/// R², RMSE and mean-of-observations of `predict` over a sample set.
fn fit_quality(predict: impl Fn(f64) -> f64, xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = ys.len() as f64;
    if ys.is_empty() {
        return (0.0, f64::INFINITY, 0.0);
    }
    let mean = ys.iter().sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let e = y - predict(x);
        ss_res += e * e;
        let d = y - mean;
        ss_tot += d * d;
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
        // lint: allow(float_cmp, "exact-zero guard: a sum of squares is 0.0 only when every residual is exactly 0.0")
    } else if ss_res == 0.0 {
        1.0
    } else {
        0.0
    };
    (r_squared, (ss_res / n).sqrt(), mean)
}

impl OnlineCalibrator {
    /// Creates a calibrator seeded with `initial` (typically the offline
    /// calibration) and a fresh registry.
    pub fn new(initial: ScalabilityModel, config: CalibratorConfig) -> Self {
        let registry = Arc::new(ModelRegistry::new(initial, config.registry));
        Self::with_registry(registry, config)
    }

    /// Creates a calibrator feeding an externally shared registry (the
    /// handle policies also hold).
    pub fn with_registry(registry: Arc<ModelRegistry>, config: CalibratorConfig) -> Self {
        Self {
            windows: WindowStore::new(config.window_capacity),
            rls: BTreeMap::new(),
            drift: CusumDetector::new(config.cusum),
            drift_pending: false,
            last_refit_tick: None,
            last_drift_refit_tick: None,
            stats: CalibratorStats::default(),
            registry,
            config,
        }
    }

    /// The registry handle policies should consult.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        self.registry.clone()
    }

    /// A clone of the currently published model.
    pub fn model(&self) -> ScalabilityModel {
        self.registry.model()
    }

    /// The currently published model version.
    pub fn version(&self) -> u64 {
        self.registry.version()
    }

    /// The drift detector (diagnostics).
    pub fn drift(&self) -> &CusumDetector {
        &self.drift
    }

    /// The sample windows (diagnostics).
    pub fn windows(&self) -> &WindowStore {
        &self.windows
    }

    /// Counters so far.
    pub fn stats(&self) -> CalibratorStats {
        self.stats
    }

    /// The current model's tick-duration prediction (Eq. 4).
    pub fn predicted_tick(&self, replicas: u32, users: u32, npcs: u32, active: u32) -> f64 {
        self.registry
            .current()
            .model
            .tick(replicas, users, npcs, active)
    }

    /// Ingests one server's tick record. `replicas` is the zone's current
    /// replica count `l` (the record itself does not know it).
    pub fn ingest(&mut self, record: &TickRecord, replicas: u32) {
        self.stats.records_ingested += 1;
        let n = record.zone_users();
        if n > 0 {
            let x = n as f64;
            for task in SAMPLED_TASKS {
                let Some(param) = task_param(task) else {
                    continue;
                };
                let items = item_count(task, record);
                if items == 0 {
                    continue;
                }
                let y = record.task(task) / items as f64;
                // A task that processed items but charged nothing carries
                // no cost information (timers are strictly positive).
                if !y.is_finite() || y <= 0.0 {
                    continue;
                }
                self.windows.push(param, x, y);
                if param.fit_degree() == 1 {
                    let forgetting = self.config.rls_forgetting;
                    self.rls
                        .entry(param)
                        .or_insert_with(|| Rls::new(1, forgetting))
                        .observe(x, y);
                }
                self.stats.samples_accepted += 1;
            }
        }
        let predicted = self.predicted_tick(replicas, n, record.npcs, record.active_users);
        if self.drift.observe(record.tick_duration - predicted) {
            self.drift_pending = true;
        }
    }

    /// Call once per cluster tick after every server's record was
    /// ingested: runs a refit when the cadence or the drift detector says
    /// so. Returns what happened, or `None` when no refit was due.
    pub fn end_tick(&mut self, now_tick: u64) -> Option<RefitReport> {
        let cadence_due = match self.last_refit_tick {
            None => now_tick >= self.config.refit_interval_ticks,
            Some(last) => now_tick >= last + self.config.refit_interval_ticks,
        };
        let drift_due = self.drift_pending
            && match self.last_drift_refit_tick {
                None => true,
                Some(last) => now_tick >= last + self.config.drift_backoff_ticks,
            };
        if !cadence_due && !drift_due {
            return None;
        }
        let reason = if drift_due {
            RefitReason::Drift
        } else {
            RefitReason::Cadence
        };
        Some(self.refit(reason, now_tick))
    }

    /// Least-squares rescale of the published `current` curve against the
    /// window: the factor `s = Σ ŷ·y / Σ ŷ²` minimises `Σ (y − s·ŷ)²`.
    /// Returns `None` when the published curve predicts nothing positive
    /// over the window (there is no curve to rescale).
    fn rescale_fit(
        current: &CostFn,
        xs: &[f64],
        ys: &[f64],
    ) -> Option<(CostFn, f64, f64, f64, FitPath)> {
        let mut num = 0.0;
        let mut den = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let p = current.eval_raw(x);
            num += p * y;
            den += p * p;
        }
        if den <= 0.0 || num <= 0.0 {
            return None;
        }
        let s = num / den;
        let coefficients: Vec<f64> = current.coefficients().iter().map(|c| c * s).collect();
        let cost_fn = CostFn::from_coefficients(&coefficients);
        let predict = cost_fn.clone();
        let (r_squared, rmse, mean_y) = fit_quality(|x| predict.eval_raw(x), xs, ys);
        Some((cost_fn, r_squared, rmse, mean_y, FitPath::Scale))
    }

    fn refit(&mut self, reason: RefitReason, now_tick: u64) -> RefitReport {
        self.stats.refit_attempts += 1;
        self.stats.last_refit_tick = Some(now_tick);
        self.last_refit_tick = Some(now_tick);
        if reason == RefitReason::Drift {
            self.stats.drift_refits += 1;
            self.last_drift_refit_tick = Some(now_tick);
            self.drift_pending = false;
        }

        let current = self.registry.current();
        let mut params = current.model.params.clone();
        let mut refits: Vec<ParamRefit> = Vec::new();
        let min_samples = self.config.registry.gates.min_samples;
        for kind in ParamKind::ALL {
            let Some(window) = self.windows.window(kind) else {
                continue;
            };
            if window.len() < min_samples {
                continue;
            }
            let (xs, ys) = window.as_vecs();
            let fitted = if x_spread(&xs) < self.config.min_x_spread {
                // The window does not cover enough of the x-axis to
                // identify individual coefficients; rescale the published
                // curve instead (see `CalibratorConfig::min_x_spread`).
                Self::rescale_fit(current.model.params.get(kind), &xs, &ys)
            } else if kind.fit_degree() == 1 {
                self.rls.get(&kind).map(|rls| {
                    let cost_fn = CostFn::from_coefficients(rls.coefficients());
                    let (r_squared, rmse, mean_y) = fit_quality(|x| rls.predict(x), &xs, &ys);
                    (cost_fn, r_squared, rmse, mean_y, FitPath::Rls)
                })
            } else {
                // Warm start from the currently published coefficients.
                let mut beta0 = current.model.params.get(kind).coefficients();
                beta0.resize(kind.fit_degree() + 1, 0.0);
                let model = Polynomial::new(kind.fit_degree());
                match fit(&model, &xs, &ys, Some(&beta0), &self.config.lm) {
                    Ok(result) => {
                        let cost_fn = CostFn::from_coefficients(&result.beta);
                        let predict = cost_fn.clone();
                        let (r_squared, rmse, mean_y) =
                            fit_quality(|x| predict.eval_raw(x), &xs, &ys);
                        Some((cost_fn, r_squared, rmse, mean_y, FitPath::WarmLm))
                    }
                    Err(_) => {
                        self.stats.fit_errors += 1;
                        None
                    }
                }
            };
            let Some((cost_fn, r_squared, rmse, mean_y, path)) = fitted else {
                continue;
            };
            params.set(kind, cost_fn.clone());
            refits.push(ParamRefit {
                kind,
                cost_fn,
                samples: window.len(),
                r_squared,
                rmse,
                mean_y,
                path,
            });
        }

        if refits.is_empty() {
            // Nothing to offer; report it as a no-change outcome.
            return RefitReport {
                tick: now_tick,
                reason,
                refitted: Vec::new(),
                outcome: PublishOutcome::Unchanged {
                    relative_change: 0.0,
                },
            };
        }

        let refitted = refits.iter().map(|r| r.kind).collect();
        let outcome = self.registry.try_publish(
            CandidateFit {
                params,
                refits,
                reason,
            },
            now_tick,
        );
        if matches!(outcome, PublishOutcome::Published { .. }) {
            // The residual baseline just changed; start the drift
            // detector over against the new model.
            self.drift.rearm();
            self.drift_pending = false;
        }
        RefitReport {
            tick: now_tick,
            reason,
            refitted,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roia_model::ModelParams;

    fn seed_model() -> ScalabilityModel {
        let params = ModelParams {
            t_ua_dser: CostFn::Linear { c0: 4e-6, c1: 5e-9 },
            t_ua: CostFn::Quadratic {
                c0: 45e-6,
                c1: 2.5e-7,
                c2: 0.0,
            },
            t_aoi: CostFn::Quadratic {
                c0: 5e-6,
                c1: 2.2e-7,
                c2: 1e-10,
            },
            t_su: CostFn::Linear {
                c0: 3e-6,
                c1: 1.5e-7,
            },
            t_fa_dser: CostFn::Linear { c0: 2e-6, c1: 1e-9 },
            t_fa: CostFn::Linear {
                c0: 20e-6,
                c1: 1e-9,
            },
            t_npc: CostFn::ZERO,
            t_mig_ini: CostFn::Linear {
                c0: 0.2e-3,
                c1: 7e-6,
            },
            t_mig_rcv: CostFn::Linear {
                c0: 0.15e-3,
                c1: 4e-6,
            },
        };
        ScalabilityModel::new(params, 0.040)
    }

    /// A synthetic tick record for `n` active users where the
    /// state-update task cost `su_per_item` seconds per update.
    fn record(tick: u64, n: u32, su_per_item: f64) -> TickRecord {
        use rtf_core::net::NodeId;
        use rtf_core::timer::TASK_COUNT;
        let mut per_task = [0.0; TASK_COUNT];
        per_task[TaskKind::Su.index()] = su_per_item * n as f64;
        per_task[TaskKind::Aoi.index()] = 2e-6 * n as f64;
        TickRecord {
            tick,
            server: NodeId(0),
            active_users: n,
            shadow_users: 0,
            npcs: 0,
            per_task,
            tick_duration: su_per_item * n as f64,
            inputs_processed: 0,
            forwarded_processed: 0,
            updates_sent: n,
            migrations_initiated: 0,
            migrations_received: 0,
            bytes_in: 0,
            bytes_out: 0,
            bytes_in_clients: 0,
            bytes_in_peers: 0,
            bytes_out_clients: 0,
            bytes_out_peers: 0,
        }
    }

    fn quick_config() -> CalibratorConfig {
        CalibratorConfig {
            window_capacity: 128,
            refit_interval_ticks: 50,
            drift_backoff_ticks: 10,
            registry: RegistryConfig {
                cooldown_ticks: 0,
                min_relative_change: 0.0,
                ..RegistryConfig::default()
            },
            ..CalibratorConfig::default()
        }
    }

    #[test]
    fn cadence_refit_recovers_a_linear_parameter() {
        let mut cal = OnlineCalibrator::new(seed_model(), quick_config());
        // The true su cost is 10 µs + 0.4 µs·n — far from the seed.
        for t in 0..50u64 {
            let n = 20 + (t % 30) as u32;
            let y = 10e-6 + 0.4e-6 * n as f64;
            cal.ingest(&record(t, n, y), 1);
            cal.end_tick(t);
        }
        let report = cal.end_tick(50).expect("cadence due");
        assert!(
            matches!(report.outcome, PublishOutcome::Published { .. }),
            "outcome: {:?}",
            report.outcome
        );
        assert!(report.refitted.contains(&ParamKind::Su));
        let fitted = cal.model().params.t_su;
        let got = fitted.eval(40.0);
        let want = 10e-6 + 0.4e-6 * 40.0;
        assert!(
            (got - want).abs() / want < 0.05,
            "refit landed near truth: {got} vs {want}"
        );
        assert!(cal.version() >= 2);
    }

    #[test]
    fn no_refit_before_cadence_or_drift() {
        let mut cal = OnlineCalibrator::new(seed_model(), quick_config());
        for t in 0..49u64 {
            assert!(cal.end_tick(t).is_none(), "tick {t} refit too early");
        }
    }

    #[test]
    fn too_few_samples_keeps_the_seed() {
        let mut cal = OnlineCalibrator::new(seed_model(), quick_config());
        for t in 0..5u64 {
            cal.ingest(&record(t, 30, 1e-6), 1);
        }
        let report = cal.refit(RefitReason::Cadence, 50);
        assert!(report.refitted.is_empty());
        assert_eq!(cal.version(), 1);
    }
}
