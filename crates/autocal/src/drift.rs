//! CUSUM drift detection on the tick-duration prediction residual.
//!
//! The controller's model predicts `T(l, n, m, a)` every tick; the servers
//! report what the tick actually cost. When the workload's character
//! changes (bots attack twice as often, an NPC event doubles the zone's
//! entity count), the *residual* `observed − predicted` acquires a
//! persistent bias long before any single tick looks anomalous. A
//! two-sided CUSUM accumulates that bias above a per-sample slack `k` and
//! raises an alarm once either side exceeds the decision threshold `h` —
//! the classic Page test, robust to the per-tick noise the virtual cost
//! model injects. An alarm asks the calibrator for an out-of-cadence
//! refit; it never touches the registry directly.

/// CUSUM tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CusumConfig {
    /// Per-sample slack `k` (seconds): residual magnitude tolerated
    /// without accumulating. Set above the noise floor of a healthy model
    /// (≈ the cost model's relative noise × a typical tick duration).
    pub slack: f64,
    /// Decision threshold `h` (seconds of accumulated excess) before an
    /// alarm fires.
    pub threshold: f64,
    /// Residuals ignored after (re)arming — lets a fresh model's
    /// transient settle instead of instantly re-alarming.
    pub warmup: u64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        Self {
            slack: 2e-3,
            threshold: 40e-3,
            warmup: 25,
        }
    }
}

/// A two-sided CUSUM detector over a residual stream.
#[derive(Debug, Clone)]
pub struct CusumDetector {
    config: CusumConfig,
    g_pos: f64,
    g_neg: f64,
    /// Samples seen since the last (re)arm.
    since_arm: u64,
    observed: u64,
    alarms: u64,
}

impl CusumDetector {
    /// Creates an armed detector.
    pub fn new(config: CusumConfig) -> Self {
        Self {
            config,
            g_pos: 0.0,
            g_neg: 0.0,
            since_arm: 0,
            observed: 0,
            alarms: 0,
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &CusumConfig {
        &self.config
    }

    /// Feeds one residual; returns `true` when drift is declared (the
    /// detector re-arms itself afterwards).
    pub fn observe(&mut self, residual: f64) -> bool {
        self.observed += 1;
        if !residual.is_finite() {
            return false;
        }
        self.since_arm += 1;
        if self.since_arm <= self.config.warmup {
            return false;
        }
        self.g_pos = (self.g_pos + residual - self.config.slack).max(0.0);
        self.g_neg = (self.g_neg - residual - self.config.slack).max(0.0);
        if self.g_pos > self.config.threshold || self.g_neg > self.config.threshold {
            self.alarms += 1;
            self.rearm();
            return true;
        }
        false
    }

    /// The larger of the two accumulated sums (how close to an alarm the
    /// detector currently is).
    pub fn excess(&self) -> f64 {
        self.g_pos.max(self.g_neg)
    }

    /// Total residuals observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Clears the accumulated sums and restarts the warmup — called
    /// automatically after an alarm, and by the calibrator after a new
    /// model version ships (the residual baseline just changed).
    pub fn rearm(&mut self) {
        self.g_pos = 0.0;
        self.g_neg = 0.0;
        self.since_arm = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CusumConfig {
        CusumConfig {
            slack: 1e-3,
            threshold: 10e-3,
            warmup: 5,
        }
    }

    #[test]
    fn stationary_noise_never_alarms() {
        let mut d = CusumDetector::new(config());
        // Deterministic zero-mean residuals below the slack.
        for i in 0..10_000 {
            let r = if i % 2 == 0 { 0.8e-3 } else { -0.8e-3 };
            assert!(!d.observe(r), "alarm on stationary noise at {i}");
        }
        assert_eq!(d.alarms(), 0);
    }

    #[test]
    fn persistent_bias_alarms() {
        let mut d = CusumDetector::new(config());
        let mut fired = false;
        for _ in 0..100 {
            if d.observe(3e-3) {
                fired = true;
                break;
            }
        }
        assert!(fired, "a 3 ms persistent bias must trip a 10 ms threshold");
        assert_eq!(d.alarms(), 1);
    }

    #[test]
    fn negative_bias_alarms_too() {
        let mut d = CusumDetector::new(config());
        let fired = (0..100).any(|_| d.observe(-3e-3));
        assert!(fired, "the detector is two-sided");
    }

    #[test]
    fn warmup_suppresses_the_transient() {
        let mut d = CusumDetector::new(CusumConfig {
            warmup: 50,
            ..config()
        });
        for _ in 0..50 {
            assert!(!d.observe(100e-3), "warmup must swallow the transient");
        }
        assert!(d.excess() == 0.0);
    }

    #[test]
    fn rearms_after_alarm() {
        let mut d = CusumDetector::new(config());
        while !d.observe(5e-3) {}
        assert_eq!(d.excess(), 0.0, "sums cleared");
        // Immediately after the alarm the warmup swallows new residuals.
        assert!(!d.observe(5e-3));
    }
}
