//! `roia-autocal` — online calibration for the ROIA scalability model.
//!
//! The paper's parameter-determination methodology (§V-A) is an offline
//! campaign: measure per-task costs at increasing populations, fit the
//! nine `t_*` cost functions once, hand the frozen model to RTF-RMS. Real
//! deployments drift — player behaviour changes, content updates add
//! NPCs, hardware ages — and a controller steering by a stale model
//! mis-sizes the cluster. This crate closes the loop, forming a new layer
//! between measurement (`rtf-core` metrics) and control (`rtf-rms`
//! policies):
//!
//! * [`window`] — bounded per-parameter sliding windows of
//!   `(population, seconds-per-item)` samples streamed from tick records.
//! * [`rls`] — a recursive-least-squares fast path that keeps the linear
//!   parameters' coefficients current in O(p²) per sample.
//! * [`calibrator`] — the [`OnlineCalibrator`]: ingests records, refits
//!   on a cadence (RLS for linear parameters, warm-started
//!   Levenberg–Marquardt via `roia-fit` for the quadratic ones) and
//!   offers candidates to the registry.
//! * [`drift`] — a two-sided CUSUM on the residual between predicted
//!   `T(l, n, m, a)` and the observed tick duration; an alarm triggers an
//!   out-of-cadence refit.
//! * [`registry`] — the versioned [`ModelRegistry`]: atomic swap behind
//!   quality gates (R²/RMSE floors, minimum sample counts), a cooldown
//!   and hysteresis, so a bad fit never ships and a good one is one
//!   pointer store away from every policy.

#![warn(missing_docs)]

pub mod calibrator;
pub mod drift;
pub mod registry;
pub mod rls;
pub mod window;

pub use calibrator::{CalibratorConfig, CalibratorStats, OnlineCalibrator, RefitReport};
pub use drift::{CusumConfig, CusumDetector};
pub use registry::{
    CandidateFit, FitPath, GateFailure, ModelRegistry, ModelVersion, ParamRefit, PublishOutcome,
    QualityGates, RefitReason, RegistryConfig, RegistryStats,
};
pub use rls::Rls;
pub use window::{SampleWindow, WindowStore};
