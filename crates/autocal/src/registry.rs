//! The versioned model registry — the swap point between calibration and
//! control.
//!
//! Policies read the *current* [`ModelVersion`] through an atomic
//! `RwLock<Arc<…>>` swap: a reader never observes a half-updated
//! parameter set, and a publish is one pointer store. Three defenses keep
//! a bad fit from ever steering the controller:
//!
//! * **Quality gates** — every refitted parameter must carry enough
//!   samples and either a decent R² or a small RMSE relative to the data's
//!   mean (near-constant parameters legitimately have R² ≈ 0, so the gate
//!   is "explains the variance *or* there is hardly any"). Gates apply
//!   per parameter: a failing refit keeps that parameter's published
//!   value while the passing ones still ship, so one chronically noisy
//!   parameter cannot wedge the registry on a stale model.
//! * **Cooldown** — cadence refits cannot swap more often than
//!   `cooldown_ticks`; a flapping fit cannot make the controller flap.
//! * **Hysteresis** — a cadence refit whose parameters barely moved is
//!   dropped; version churn would only invalidate downstream caches.
//!
// lint: allow-file(hot_lock, "locking IS this module's hot-path contract: reads are an RwLock<Arc> pointer clone (never blocked longer than the one-store publish swap), and the stats/history/tracer mutexes are touched only on cooldown-gated publishes and report paths")
//! Drift-triggered refits bypass cooldown and hysteresis — the detector
//! has evidence the world changed — but **never** the quality gates.

use parking_lot::{Mutex, RwLock};
use roia_model::{CostFn, ModelParams, ParamKind, ScalabilityModel};
use roia_obs::{TraceEvent, Tracer};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why a refit ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitReason {
    /// The initial model the registry was seeded with.
    Seed,
    /// The periodic refit cadence came due.
    Cadence,
    /// The CUSUM drift detector demanded an out-of-cadence refit.
    Drift,
}

impl RefitReason {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            RefitReason::Seed => "seed",
            RefitReason::Cadence => "cadence",
            RefitReason::Drift => "drift",
        }
    }
}

/// Which estimator produced a parameter refit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitPath {
    /// The recursive-least-squares fast path (linear parameters).
    Rls,
    /// Warm-started Levenberg–Marquardt (quadratic parameters).
    WarmLm,
    /// A single multiplicative rescale of the published curve — the
    /// fallback when the window's x-spread is too narrow to identify
    /// per-coefficient fits (see `CalibratorConfig::min_x_spread`).
    Scale,
}

/// One refitted parameter with its fit diagnostics.
#[derive(Debug, Clone)]
pub struct ParamRefit {
    /// The parameter.
    pub kind: ParamKind,
    /// The refitted cost function.
    pub cost_fn: CostFn,
    /// Window samples the fit was judged on.
    pub samples: usize,
    /// Coefficient of determination over the window.
    pub r_squared: f64,
    /// Root-mean-square error over the window (seconds).
    pub rmse: f64,
    /// Mean observed value over the window (seconds) — the RMSE scale.
    pub mean_y: f64,
    /// Which estimator produced it.
    pub path: FitPath,
}

/// A candidate parameter set offered to the registry.
#[derive(Debug, Clone)]
pub struct CandidateFit {
    /// The full parameter set (refitted values merged over the previous
    /// version's).
    pub params: ModelParams,
    /// Diagnostics for the parameters that were actually refitted.
    pub refits: Vec<ParamRefit>,
    /// What prompted the refit.
    pub reason: RefitReason,
}

/// Fit-quality floors a candidate must clear. A parameter passes when it
/// has at least `min_samples` observations AND (`r_squared ≥
/// min_r_squared` OR `rmse ≤ max_rmse_frac · |mean|`). The disjunction is
/// deliberate: a near-constant cost series has no variance to explain
/// (R² ≈ 0) yet fits to within a few percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityGates {
    /// Minimum window samples behind a refit.
    pub min_samples: usize,
    /// R² floor.
    pub min_r_squared: f64,
    /// RMSE ceiling as a fraction of the window's mean observation.
    pub max_rmse_frac: f64,
}

impl Default for QualityGates {
    fn default() -> Self {
        Self {
            min_samples: 32,
            min_r_squared: 0.85,
            max_rmse_frac: 0.35,
        }
    }
}

/// Why a parameter refit failed the gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateFailure {
    /// Fewer window samples than `min_samples`.
    TooFewSamples {
        /// Samples behind the fit.
        have: usize,
        /// The floor.
        need: usize,
    },
    /// Neither the R² floor nor the relative-RMSE ceiling was met.
    PoorFit {
        /// Fit R².
        r_squared: f64,
        /// Fit RMSE relative to the window mean.
        rmse_frac: f64,
    },
    /// A coefficient or diagnostic is NaN/∞.
    NonFinite,
}

impl QualityGates {
    /// Checks one parameter refit against the gates.
    pub fn check(&self, refit: &ParamRefit) -> Result<(), GateFailure> {
        let finite = refit.r_squared.is_finite()
            && refit.rmse.is_finite()
            && refit.mean_y.is_finite()
            && refit.cost_fn.coefficients().iter().all(|c| c.is_finite());
        if !finite {
            return Err(GateFailure::NonFinite);
        }
        if refit.samples < self.min_samples {
            return Err(GateFailure::TooFewSamples {
                have: refit.samples,
                need: self.min_samples,
            });
        }
        let scale = refit.mean_y.abs().max(f64::MIN_POSITIVE);
        let rmse_frac = refit.rmse / scale;
        if refit.r_squared >= self.min_r_squared || rmse_frac <= self.max_rmse_frac {
            Ok(())
        } else {
            Err(GateFailure::PoorFit {
                r_squared: refit.r_squared,
                rmse_frac,
            })
        }
    }
}

/// Registry tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryConfig {
    /// Fit-quality floors (see [`QualityGates`]).
    pub gates: QualityGates,
    /// Minimum ticks between cadence-driven swaps.
    pub cooldown_ticks: u64,
    /// Hysteresis: a cadence candidate whose per-parameter predictions
    /// moved less than this relative fraction is not published.
    pub min_relative_change: f64,
    /// Version-history entries retained.
    pub history_capacity: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            gates: QualityGates::default(),
            cooldown_ticks: 250,
            min_relative_change: 0.05,
            history_capacity: 64,
        }
    }
}

/// One published model version.
#[derive(Debug, Clone)]
pub struct ModelVersion {
    /// Monotonically increasing version number (the seed is 1).
    pub version: u64,
    /// The model itself.
    pub model: ScalabilityModel,
    /// Tick at which it was published.
    pub published_at: u64,
    /// What prompted it.
    pub reason: RefitReason,
    /// Worst R² among the refitted parameters (1.0 for the seed).
    pub worst_r_squared: f64,
    /// Parameters refitted relative to the previous version.
    pub refitted: Vec<ParamKind>,
}

/// What `try_publish` did with a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PublishOutcome {
    /// Swapped in as this version.
    Published {
        /// The new version number.
        version: u64,
    },
    /// Every refitted parameter failed the quality gates; nothing
    /// swapped. (Carries the first failure for diagnostics.)
    RejectedQuality(ParamKind, GateFailure),
    /// A cadence candidate arrived inside the cooldown window.
    Cooldown {
        /// First tick at which a cadence publish is allowed again.
        until: u64,
    },
    /// A cadence candidate changed too little to be worth a version.
    Unchanged {
        /// The observed relative change.
        relative_change: f64,
    },
}

/// Publish/reject counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Versions published (excluding the seed).
    pub published: u64,
    /// Candidates rejected by the quality gates.
    pub rejected_quality: u64,
    /// Candidates deferred by the cooldown.
    pub rejected_cooldown: u64,
    /// Candidates dropped by hysteresis.
    pub unchanged: u64,
}

/// Zone populations at which hysteresis compares per-parameter
/// predictions (small and near-capacity loads).
const PROBE_USERS: [f64; 2] = [50.0, 200.0];

/// The versioned model registry.
pub struct ModelRegistry {
    config: RegistryConfig,
    current: RwLock<Arc<ModelVersion>>,
    history: Mutex<VecDeque<ModelVersion>>,
    stats: Mutex<RegistryStats>,
    tracer: Mutex<Tracer>,
}

impl ModelRegistry {
    /// Seeds the registry with an initial model as version 1.
    pub fn new(initial: ScalabilityModel, config: RegistryConfig) -> Self {
        let seed = ModelVersion {
            version: 1,
            model: initial,
            published_at: 0,
            reason: RefitReason::Seed,
            worst_r_squared: 1.0,
            refitted: Vec::new(),
        };
        let mut history = VecDeque::with_capacity(config.history_capacity.max(1));
        history.push_back(seed.clone());
        Self {
            config,
            current: RwLock::new(Arc::new(seed)),
            history: Mutex::new(history),
            stats: Mutex::new(RegistryStats::default()),
            tracer: Mutex::new(Tracer::disabled()),
        }
    }

    /// Installs a telemetry tracer: every successful publish emits a
    /// [`TraceEvent::RegistrySwap`] so the audit trail records exactly
    /// when the controller's model changed underneath it. Interior
    /// mutability because registries are shared behind an `Arc`.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.lock() = tracer;
    }

    /// The registry's tuning.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The current version — one atomic pointer load; the `Arc` keeps the
    /// snapshot alive however long the reader holds it.
    pub fn current(&self) -> Arc<ModelVersion> {
        self.current.read().clone()
    }

    /// Convenience: a clone of the current model.
    pub fn model(&self) -> ScalabilityModel {
        self.current.read().model.clone()
    }

    /// The current version number.
    pub fn version(&self) -> u64 {
        self.current.read().version
    }

    /// Publish/reject counters so far.
    pub fn stats(&self) -> RegistryStats {
        *self.stats.lock()
    }

    /// The retained version history, oldest first.
    pub fn history(&self) -> Vec<ModelVersion> {
        self.history.lock().iter().cloned().collect()
    }

    /// Offers a candidate. Gates always apply; cooldown and hysteresis
    /// apply to cadence refits only (see the module docs).
    ///
    /// Gating is **per parameter**: a refit that fails its gates is
    /// dropped — the currently published value of that parameter stays —
    /// while the passing refits still publish. One chronically noisy
    /// parameter (e.g. a cost with no explainable relationship to the
    /// zone population under the current distribution) therefore cannot
    /// veto every other parameter's refit and wedge the registry on a
    /// stale model. Only a candidate whose refits *all* fail is rejected
    /// outright.
    pub fn try_publish(&self, candidate: CandidateFit, now_tick: u64) -> PublishOutcome {
        let CandidateFit {
            mut params,
            refits,
            reason,
        } = candidate;
        let cur = self.current();
        let mut first_failure: Option<(ParamKind, GateFailure)> = None;
        let mut passing: Vec<ParamRefit> = Vec::with_capacity(refits.len());
        for refit in refits {
            match self.config.gates.check(&refit) {
                Ok(()) => passing.push(refit),
                Err(failure) => {
                    params.set(refit.kind, cur.model.params.get(refit.kind).clone());
                    first_failure.get_or_insert((refit.kind, failure));
                }
            }
        }
        if passing.is_empty() {
            if let Some((kind, failure)) = first_failure {
                self.stats.lock().rejected_quality += 1;
                return PublishOutcome::RejectedQuality(kind, failure);
            }
        }
        let candidate = CandidateFit {
            params,
            refits: passing,
            reason,
        };
        if candidate.reason == RefitReason::Cadence {
            let until = cur.published_at.saturating_add(self.config.cooldown_ticks);
            if cur.reason != RefitReason::Seed && now_tick < until {
                self.stats.lock().rejected_cooldown += 1;
                return PublishOutcome::Cooldown { until };
            }
            let change = relative_change(&cur.model.params, &candidate.params);
            if change < self.config.min_relative_change {
                self.stats.lock().unchanged += 1;
                return PublishOutcome::Unchanged {
                    relative_change: change,
                };
            }
        }

        let worst_r_squared = candidate
            .refits
            .iter()
            .map(|r| r.r_squared)
            .fold(1.0, f64::min);
        let refitted = candidate.refits.iter().map(|r| r.kind).collect();
        let mut model = cur.model.clone();
        model.params = candidate.params;
        let next = ModelVersion {
            version: cur.version + 1,
            model,
            published_at: now_tick,
            reason: candidate.reason,
            worst_r_squared,
            refitted,
        };
        {
            let mut history = self.history.lock();
            if history.len() == self.config.history_capacity.max(1) {
                history.pop_front();
            }
            history.push_back(next.clone());
        }
        let version = next.version;
        let reason = next.reason;
        *self.current.write() = Arc::new(next);
        self.stats.lock().published += 1;
        {
            let tracer = self.tracer.lock();
            if tracer.is_enabled() {
                tracer.emit(TraceEvent::RegistrySwap {
                    tick: now_tick,
                    version,
                    reason: reason.name(),
                });
            }
        }
        PublishOutcome::Published { version }
    }
}

/// Largest relative change of any parameter's prediction across the probe
/// populations — the hysteresis distance between two parameter sets.
fn relative_change(old: &ModelParams, new: &ModelParams) -> f64 {
    let mut worst = 0.0f64;
    for kind in ParamKind::ALL {
        for n in PROBE_USERS {
            let a = old.get(kind).eval(n);
            let b = new.get(kind).eval(n);
            let scale = a.abs().max(1e-12);
            worst = worst.max((b - a).abs() / scale);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ScalabilityModel {
        let params = ModelParams {
            t_ua_dser: CostFn::Linear { c0: 4e-6, c1: 5e-9 },
            t_ua: CostFn::Quadratic {
                c0: 45e-6,
                c1: 2.5e-7,
                c2: 0.0,
            },
            t_aoi: CostFn::Quadratic {
                c0: 5e-6,
                c1: 2.2e-7,
                c2: 1e-10,
            },
            t_su: CostFn::Linear {
                c0: 3e-6,
                c1: 1.5e-7,
            },
            t_fa_dser: CostFn::Linear { c0: 2e-6, c1: 1e-9 },
            t_fa: CostFn::Linear {
                c0: 20e-6,
                c1: 1e-9,
            },
            t_npc: CostFn::ZERO,
            t_mig_ini: CostFn::Linear {
                c0: 0.2e-3,
                c1: 7e-6,
            },
            t_mig_rcv: CostFn::Linear {
                c0: 0.15e-3,
                c1: 4e-6,
            },
        };
        ScalabilityModel::new(params, 0.040)
    }

    fn good_refit(kind: ParamKind, cost_fn: CostFn) -> ParamRefit {
        ParamRefit {
            kind,
            cost_fn,
            samples: 100,
            r_squared: 0.97,
            rmse: 1e-7,
            mean_y: 1e-4,
            path: FitPath::Rls,
        }
    }

    fn candidate(reason: RefitReason, refits: Vec<ParamRefit>) -> CandidateFit {
        let mut params = model().params;
        for r in &refits {
            params.set(r.kind, r.cost_fn.clone());
        }
        CandidateFit {
            params,
            refits,
            reason,
        }
    }

    #[test]
    fn seed_is_version_one() {
        let reg = ModelRegistry::new(model(), RegistryConfig::default());
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.current().reason, RefitReason::Seed);
        assert_eq!(reg.history().len(), 1);
    }

    #[test]
    fn good_candidate_publishes_and_swaps_atomically() {
        let reg = ModelRegistry::new(model(), RegistryConfig::default());
        let snapshot_before = reg.current();
        let new_fn = CostFn::Linear { c0: 6e-6, c1: 3e-7 };
        let out = reg.try_publish(
            candidate(
                RefitReason::Cadence,
                vec![good_refit(ParamKind::Su, new_fn.clone())],
            ),
            500,
        );
        assert_eq!(out, PublishOutcome::Published { version: 2 });
        assert_eq!(reg.version(), 2);
        assert_eq!(reg.current().model.params.t_su, new_fn);
        assert_eq!(reg.current().refitted, vec![ParamKind::Su]);
        // The old snapshot is still intact for readers that held it.
        assert_eq!(snapshot_before.version, 1);
        assert_eq!(snapshot_before.model.params.t_su, model().params.t_su);
    }

    #[test]
    fn gate_failure_never_swaps() {
        let reg = ModelRegistry::new(model(), RegistryConfig::default());
        let mut bad = good_refit(ParamKind::Ua, CostFn::Linear { c0: 1.0, c1: 1.0 });
        bad.r_squared = 0.10;
        bad.rmse = 1e-3; // 10× the mean: fails both arms of the gate
        let out = reg.try_publish(candidate(RefitReason::Drift, vec![bad]), 500);
        assert!(matches!(
            out,
            PublishOutcome::RejectedQuality(ParamKind::Ua, GateFailure::PoorFit { .. })
        ));
        assert_eq!(
            reg.version(),
            1,
            "a drift refit still cannot dodge the gates"
        );
        assert_eq!(reg.stats().rejected_quality, 1);
    }

    #[test]
    fn too_few_samples_rejected() {
        let reg = ModelRegistry::new(model(), RegistryConfig::default());
        let mut thin = good_refit(ParamKind::Su, CostFn::Linear { c0: 1e-5, c1: 1e-6 });
        thin.samples = 3;
        let out = reg.try_publish(candidate(RefitReason::Cadence, vec![thin]), 500);
        assert!(matches!(
            out,
            PublishOutcome::RejectedQuality(ParamKind::Su, GateFailure::TooFewSamples { .. })
        ));
    }

    #[test]
    fn near_constant_data_passes_via_rmse_arm() {
        let gates = QualityGates::default();
        let flat = ParamRefit {
            kind: ParamKind::Fa,
            cost_fn: CostFn::Linear { c0: 20e-6, c1: 0.0 },
            samples: 100,
            r_squared: 0.01, // no variance to explain
            rmse: 1e-6,      // 5 % of the mean
            mean_y: 20e-6,
            path: FitPath::Rls,
        };
        assert!(gates.check(&flat).is_ok());
    }

    #[test]
    fn cadence_cooldown_applies_but_drift_bypasses_it() {
        let config = RegistryConfig {
            cooldown_ticks: 1000,
            min_relative_change: 0.0,
            ..RegistryConfig::default()
        };
        let reg = ModelRegistry::new(model(), config);
        let bump = |c0: f64| vec![good_refit(ParamKind::Su, CostFn::Linear { c0, c1: 2e-7 })];
        assert!(matches!(
            reg.try_publish(candidate(RefitReason::Cadence, bump(5e-6)), 100),
            PublishOutcome::Published { version: 2 }
        ));
        assert!(matches!(
            reg.try_publish(candidate(RefitReason::Cadence, bump(8e-6)), 300),
            PublishOutcome::Cooldown { until: 1100 }
        ));
        assert!(matches!(
            reg.try_publish(candidate(RefitReason::Drift, bump(8e-6)), 300),
            PublishOutcome::Published { version: 3 }
        ));
        assert_eq!(reg.stats().rejected_cooldown, 1);
    }

    #[test]
    fn hysteresis_drops_a_noop_refit() {
        let config = RegistryConfig {
            cooldown_ticks: 0,
            min_relative_change: 0.05,
            ..RegistryConfig::default()
        };
        let reg = ModelRegistry::new(model(), config);
        // Identical parameters: zero relative change.
        let same = good_refit(ParamKind::Su, model().params.t_su.clone());
        let out = reg.try_publish(candidate(RefitReason::Cadence, vec![same]), 100);
        assert!(matches!(out, PublishOutcome::Unchanged { .. }));
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.stats().unchanged, 1);
    }

    #[test]
    fn history_is_bounded() {
        let config = RegistryConfig {
            cooldown_ticks: 0,
            min_relative_change: 0.0,
            history_capacity: 3,
            ..RegistryConfig::default()
        };
        let reg = ModelRegistry::new(model(), config);
        for i in 0..10u64 {
            let refit = good_refit(
                ParamKind::Su,
                CostFn::Linear {
                    c0: (i + 1) as f64 * 1e-6,
                    c1: 2e-7,
                },
            );
            reg.try_publish(candidate(RefitReason::Cadence, vec![refit]), i * 10);
        }
        let history = reg.history();
        assert_eq!(history.len(), 3);
        assert_eq!(history.last().unwrap().version, reg.version());
        assert_eq!(reg.version(), 11);
    }
}
