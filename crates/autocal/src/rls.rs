//! Recursive least squares — the fast path for linear parameters.
//!
//! Seven of the nine cost parameters are linear in the zone population, so
//! a refit does not need an iterative solver at all: an exponentially
//! forgetting RLS estimator absorbs each sample in O(p²) and always holds
//! the current coefficient estimate. The forgetting factor `λ < 1` is what
//! makes the estimator *track* — after a regime shift the old samples'
//! influence decays geometrically instead of anchoring the fit forever.
//! The quadratic parameters (`t_ua`, `t_aoi`) keep using warm-started
//! Levenberg–Marquardt over the sample window (see the calibrator).

/// Exponentially weighted recursive least squares for a polynomial model
/// `y = θ₀ + θ₁·x + … + θ_d·x^d`.
#[derive(Debug, Clone)]
pub struct Rls {
    degree: usize,
    forgetting: f64,
    theta: Vec<f64>,
    /// Covariance matrix, row-major `(d+1)×(d+1)`.
    p: Vec<f64>,
    samples: u64,
}

/// Initial covariance scale: large enough that the first few samples
/// dominate the zero prior.
const P_INIT: f64 = 1e6;

impl Rls {
    /// Creates an estimator for a degree-`degree` polynomial with
    /// forgetting factor `forgetting` (`0 < λ ≤ 1`; 1 = ordinary least
    /// squares, smaller = faster tracking).
    pub fn new(degree: usize, forgetting: f64) -> Self {
        assert!(
            forgetting > 0.0 && forgetting <= 1.0,
            "forgetting factor must be in (0, 1]"
        );
        let p_dim = degree + 1;
        let mut p = vec![0.0; p_dim * p_dim];
        for i in 0..p_dim {
            p[i * p_dim + i] = P_INIT;
        }
        Self {
            degree,
            forgetting,
            theta: vec![0.0; p_dim],
            p,
            samples: 0,
        }
    }

    /// Polynomial degree being estimated.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Samples absorbed so far.
    pub fn len(&self) -> u64 {
        self.samples
    }

    /// Whether no sample has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Current coefficient estimates `[θ₀, θ₁, …]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.theta
    }

    /// The model's prediction at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.theta.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Absorbs one `(x, y)` observation.
    pub fn observe(&mut self, x: f64, y: f64) {
        if !x.is_finite() || !y.is_finite() {
            return;
        }
        let d = self.degree + 1;
        // Design vector φ = [1, x, x², …].
        let mut phi = vec![0.0; d];
        let mut pow = 1.0;
        for p in phi.iter_mut() {
            *p = pow;
            pow *= x;
        }
        // Pφ and the gain denominator λ + φᵀPφ.
        let mut p_phi = vec![0.0; d];
        for (row, out) in self.p.chunks(d).zip(p_phi.iter_mut()) {
            *out = row.iter().zip(&phi).map(|(a, b)| a * b).sum();
        }
        let denom = self.forgetting + phi.iter().zip(&p_phi).map(|(a, b)| a * b).sum::<f64>();
        if !denom.is_finite() || denom <= 0.0 {
            return;
        }
        let gain: Vec<f64> = p_phi.iter().map(|v| v / denom).collect();
        let err = y - self.predict(x);
        for (theta, k) in self.theta.iter_mut().zip(&gain) {
            *theta += k * err;
        }
        // P ← (P − k·(Pφ)ᵀ) / λ, symmetrized against round-off drift.
        for (row, &k) in self.p.chunks_mut(d).zip(&gain) {
            for (v, &pp) in row.iter_mut().zip(&p_phi) {
                *v = (*v - k * pp) / self.forgetting;
            }
        }
        for i in 0..d {
            for j in (i + 1)..d {
                let avg = 0.5 * (self.p[i * d + j] + self.p[j * d + i]);
                self.p[i * d + j] = avg;
                self.p[j * d + i] = avg;
            }
        }
        self.samples += 1;
    }

    /// Forgets everything (coefficients and covariance).
    pub fn reset(&mut self) {
        let d = self.degree + 1;
        self.theta.iter_mut().for_each(|t| *t = 0.0);
        self.p.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..d {
            self.p[i * d + i] = P_INIT;
        }
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let mut rls = Rls::new(1, 1.0);
        for i in 0..50 {
            let x = i as f64;
            rls.observe(x, 3.0 + 0.5 * x);
        }
        let c = rls.coefficients();
        assert!((c[0] - 3.0).abs() < 1e-6, "intercept: {c:?}");
        assert!((c[1] - 0.5).abs() < 1e-8, "slope: {c:?}");
        assert_eq!(rls.len(), 50);
    }

    #[test]
    fn forgetting_tracks_a_shifted_slope() {
        let mut rls = Rls::new(1, 0.9);
        for i in 0..200 {
            rls.observe((i % 40) as f64, 1.0 + 2.0 * (i % 40) as f64);
        }
        // The slope doubles; a forgetting estimator follows it.
        for i in 0..200 {
            rls.observe((i % 40) as f64, 1.0 + 4.0 * (i % 40) as f64);
        }
        let c = rls.coefficients();
        assert!((c[1] - 4.0).abs() < 0.05, "tracked slope: {c:?}");
    }

    #[test]
    fn quadratic_recovery() {
        let mut rls = Rls::new(2, 1.0);
        for i in 0..100 {
            let x = i as f64 * 0.5;
            rls.observe(x, 2.0 + 0.1 * x + 0.01 * x * x);
        }
        let c = rls.coefficients();
        assert!((c[2] - 0.01).abs() < 1e-6, "curvature: {c:?}");
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut rls = Rls::new(1, 1.0);
        rls.observe(f64::NAN, 1.0);
        rls.observe(1.0, f64::INFINITY);
        assert!(rls.is_empty());
    }

    #[test]
    fn reset_forgets() {
        let mut rls = Rls::new(1, 1.0);
        for i in 0..10 {
            rls.observe(i as f64, 7.0);
        }
        rls.reset();
        assert!(rls.is_empty());
        assert_eq!(rls.coefficients(), &[0.0, 0.0]);
    }
}
