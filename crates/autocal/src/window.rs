//! Bounded sliding-window sample store.
//!
//! Online calibration must run for hours without growing without bound:
//! each model parameter keeps at most `capacity` of its most recent
//! `(zone users, seconds per item)` observations in a ring buffer. The
//! window doubles as the refit data set — old-regime samples age out of
//! it at the ingest rate, which is what lets a post-drift refit converge
//! on the new regime.

use roia_model::ParamKind;
use std::collections::{BTreeMap, VecDeque};

/// A bounded ring of `(x, y)` samples; pushing at capacity evicts the
/// oldest sample.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    capacity: usize,
    xs: VecDeque<f64>,
    ys: VecDeque<f64>,
}

impl SampleWindow {
    /// Creates an empty window holding at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a sample window needs room for samples");
        Self {
            capacity,
            xs: VecDeque::with_capacity(capacity),
            ys: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, x: f64, y: f64) {
        if self.xs.len() == self.capacity {
            self.xs.pop_front();
            self.ys.pop_front();
        }
        self.xs.push_back(x);
        self.ys.push_back(y);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The maximum number of samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Contiguous copies of the sample vectors, oldest first (the batch
    /// fitters want slices).
    pub fn as_vecs(&self) -> (Vec<f64>, Vec<f64>) {
        (
            self.xs.iter().copied().collect(),
            self.ys.iter().copied().collect(),
        )
    }

    /// Drops every sample.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
    }
}

/// Per-parameter sample windows, lazily created on first push.
#[derive(Debug, Clone)]
pub struct WindowStore {
    capacity: usize,
    windows: BTreeMap<ParamKind, SampleWindow>,
}

impl WindowStore {
    /// Creates a store whose windows each hold at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            windows: BTreeMap::new(),
        }
    }

    /// Records one observation for `kind`.
    pub fn push(&mut self, kind: ParamKind, x: f64, y: f64) {
        self.windows
            .entry(kind)
            .or_insert_with(|| SampleWindow::new(self.capacity))
            .push(x, y);
    }

    /// The window for `kind`, if any sample arrived for it.
    pub fn window(&self, kind: ParamKind) -> Option<&SampleWindow> {
        self.windows.get(&kind)
    }

    /// Samples currently held for `kind`.
    pub fn len(&self, kind: ParamKind) -> usize {
        self.windows.get(&kind).map(|w| w.len()).unwrap_or(0)
    }

    /// Samples currently held across every parameter.
    pub fn total(&self) -> usize {
        self.windows.values().map(|w| w.len()).sum()
    }

    /// Drops every sample in every window.
    pub fn clear(&mut self) {
        for w in self.windows.values_mut() {
            w.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest_at_capacity() {
        let mut w = SampleWindow::new(3);
        for i in 0..5 {
            w.push(i as f64, 10.0 * i as f64);
        }
        assert_eq!(w.len(), 3);
        let (xs, ys) = w.as_vecs();
        assert_eq!(xs, vec![2.0, 3.0, 4.0]);
        assert_eq!(ys, vec![20.0, 30.0, 40.0]);
    }

    #[test]
    fn store_is_bounded_per_param() {
        let mut store = WindowStore::new(8);
        for i in 0..100 {
            store.push(ParamKind::Ua, i as f64, 1.0);
            store.push(ParamKind::Su, i as f64, 2.0);
        }
        assert_eq!(store.len(ParamKind::Ua), 8);
        assert_eq!(store.len(ParamKind::Su), 8);
        assert_eq!(store.len(ParamKind::Npc), 0);
        assert_eq!(store.total(), 16);
        store.clear();
        assert_eq!(store.total(), 0);
    }

    #[test]
    #[should_panic(expected = "room for samples")]
    fn zero_capacity_rejected() {
        SampleWindow::new(0);
    }
}
