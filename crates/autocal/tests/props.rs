//! Property-based tests for the online-calibration building blocks: the
//! RLS fast path must agree with the batch Levenberg–Marquardt fitter on
//! linear models under noise, and the CUSUM drift detector must fire on a
//! synthetic regime shift while staying silent on stationary noise.

use proptest::prelude::*;
use roia_autocal::{CusumConfig, CusumDetector, Rls};
use roia_fit::lm::fit_default;
use roia_fit::model::{FitModel, Polynomial};

/// Deterministic uniform noise in `[-1, 1)` (SplitMix64, seeded per case).
struct Noise {
    state: u64,
}

impl Noise {
    fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

proptest! {
    /// With λ = 1 (no forgetting) RLS solves the same least-squares
    /// problem as the batch LM fitter, so on noisy linear data the two
    /// must produce near-identical predictions across the sample range.
    #[test]
    fn rls_agrees_with_batch_lm_on_noisy_linear_data(
        c0 in 1e-5f64..1e-2,
        c1 in 1e-7f64..1e-4,
        noise_frac in 0.0f64..0.10,
        seed in 0u64..1000,
    ) {
        let mut noise = Noise::new(seed);
        let xs: Vec<f64> = (0..120).map(|i| 1.0 + i as f64 * 2.5).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let clean = c0 + c1 * x;
                clean * (1.0 + noise_frac * noise.next())
            })
            .collect();

        let mut rls = Rls::new(1, 1.0);
        for (&x, &y) in xs.iter().zip(&ys) {
            rls.observe(x, y);
        }
        let lm = fit_default(&Polynomial::linear(), &xs, &ys).unwrap();
        let model = Polynomial::linear();

        for &x in &[xs[0], 75.0, 150.0, *xs.last().unwrap()] {
            let recursive = rls.predict(x);
            let batch = model.eval(&lm.beta, x);
            let scale = batch.abs().max(c0);
            prop_assert!(
                (recursive - batch).abs() <= scale * 1e-3,
                "at x = {x}: RLS {recursive} vs LM {batch}"
            );
        }
    }

    /// A persistent residual bias well above the slack must raise a CUSUM
    /// alarm shortly after the shift — and stationary noise below the
    /// slack must never alarm, no matter how long it runs.
    #[test]
    fn cusum_fires_on_regime_shift_but_not_stationary_noise(
        noise_amp in 0.5e-3f64..2e-3,
        shift_factor in 5.0f64..20.0,
        seed in 0u64..1000,
    ) {
        let config = CusumConfig {
            slack: 2.0 * noise_amp,
            threshold: 20.0 * noise_amp,
            warmup: 25,
        };
        let shift = shift_factor * config.slack;
        let mut noise = Noise::new(seed);
        let mut detector = CusumDetector::new(config);

        // Stationary phase: zero-mean noise strictly inside the slack.
        for _ in 0..600 {
            let fired = detector.observe(noise_amp * noise.next());
            prop_assert!(!fired, "stationary noise must not alarm");
        }
        prop_assert_eq!(detector.alarms(), 0);

        // Regime shift: the same noise plus a persistent bias. Each
        // sample accumulates at least `shift − slack − noise_amp` of
        // excess, so the alarm must land within a bounded horizon.
        let per_sample = shift - detector.config().slack - noise_amp;
        let horizon = (detector.config().threshold / per_sample).ceil() as u64 + 10;
        let mut fired_at = None;
        for i in 0..horizon {
            if detector.observe(shift + noise_amp * noise.next()) {
                fired_at = Some(i);
                break;
            }
        }
        prop_assert!(
            fired_at.is_some(),
            "no alarm within {horizon} samples of a {shift_factor}x-slack shift"
        );
        prop_assert_eq!(detector.alarms(), 1);
    }
}
