//! Criterion benchmarks of the figure pipelines at reduced scale: what does
//! it cost to rerun each experiment of §V? (The full-scale series are
//! produced by the `fig*` binaries; these benches keep the pipelines
//! honest and measurable.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use roia_model::calibrate;
use roia_sim::{
    measure_migration_params, measure_replication_params, run_session, MeasureConfig, PaperSession,
    Ramp, SessionConfig,
};
use rtf_rms::{ModelDriven, ModelDrivenConfig, StaticInterval};

fn small_campaign() -> MeasureConfig {
    MeasureConfig {
        max_users: 80,
        step: 20,
        settle_ticks: 5,
        sample_ticks: 10,
        noise: 0.05,
        ..MeasureConfig::default()
    }
}

/// Fig. 4/6 pipeline: measurement campaign + LM calibration.
fn bench_fig4_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig4_replication_campaign_small", |b| {
        b.iter(|| measure_replication_params(black_box(&small_campaign())))
    });
    group.bench_function("fig6_migration_campaign_small", |b| {
        b.iter(|| measure_migration_params(black_box(&small_campaign())))
    });
    group.bench_function("fig4_fit_only", |b| {
        let m = measure_replication_params(&small_campaign());
        b.iter(|| calibrate(black_box(&m)).unwrap())
    });
    group.finish();
}

/// Fig. 5/7 pipeline: threshold computation from a calibrated model.
fn bench_fig5_thresholds(c: &mut Criterion) {
    let mut m = measure_replication_params(&small_campaign());
    m.merge(&measure_migration_params(&small_campaign()));
    let cal = calibrate(&m).unwrap();
    let model = roia_model::ScalabilityModel::new(cal.params, 0.040);
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig5_capacity_ladder", |b| {
        b.iter(|| black_box(&model).max_replicas(0))
    });
    group.bench_function("fig7_migration_budget", |b| {
        b.iter(|| black_box(&model).migrations_initiate(2, 200, 0, 120))
    });
    group.finish();
}

/// Fig. 8 pipeline: a short managed session per policy.
fn bench_fig8_session(c: &mut Criterion) {
    let mut m = measure_replication_params(&small_campaign());
    m.merge(&measure_migration_params(&small_campaign()));
    let cal = calibrate(&m).unwrap();
    let model = roia_model::ScalabilityModel::new(cal.params, 0.040);

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig8_session_short_model_driven", |b| {
        b.iter(|| {
            let config = SessionConfig {
                ticks: 250,
                max_churn_per_tick: 3,
                ..SessionConfig::default()
            };
            let policy = Box::new(ModelDriven::new(
                model.clone(),
                ModelDrivenConfig::default(),
            ));
            run_session(
                config,
                policy,
                &PaperSession {
                    peak: 60,
                    ramp_up_secs: 4.0,
                    hold_secs: 2.0,
                    ramp_down_secs: 4.0,
                },
            )
        })
    });
    group.bench_function("policy_compare_session_short_static", |b| {
        b.iter(|| {
            let config = SessionConfig {
                ticks: 250,
                max_churn_per_tick: 3,
                ..SessionConfig::default()
            };
            run_session(
                config,
                Box::new(StaticInterval::new(1, 10_000)),
                &Ramp {
                    from: 0,
                    to: 60,
                    duration_secs: 4.0,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4_calibration,
    bench_fig5_thresholds,
    bench_fig8_session
);
criterion_main!(benches);
