//! Criterion microbenchmarks of the PR-5 hot paths: wire encoding with
//! and without buffer reuse, and the quadratic scan vs the spatial-hash
//! grid for interest management.
//!
//! The grid numbers quantify the host-CPU win of [`rtfdemo::AoiGrid`];
//! the *virtual* cost charged to the scalability model stays quadratic
//! either way (see `DESIGN.md`).

use bytes::BytesMut;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtf_core::entity::{Rect, UserId, Vec2};
use rtf_core::event::Packet;
use rtf_core::wire::{Wire, WireWriter};
use rtfdemo::{compute_aoi, AoiGrid, CommandBatch, World};

fn state_update_packet() -> Packet {
    Packet::StateUpdate {
        user: UserId(7),
        tick: 1_234,
        payload: CommandBatch::movement(1.0, 0.5)
            .with_attack(UserId(9), 10)
            .to_bytes(),
    }
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let pkt = state_update_packet();
    let encoded = pkt.to_bytes();
    let mut group = c.benchmark_group("hotpath/wire");
    group.bench_function("encode_fresh", |b| b.iter(|| black_box(&pkt).to_bytes()));
    group.bench_function("encode_reused_buffer", |b| {
        let mut buf = BytesMut::with_capacity(256);
        b.iter(|| {
            let mut w = WireWriter::with_buf(std::mem::take(&mut buf));
            black_box(&pkt).encode(&mut w);
            let (frame, rest) = w.finish_reusing();
            buf = rest;
            frame
        })
    });
    group.bench_function("roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&pkt).to_bytes();
            Packet::from_bytes(&bytes).unwrap()
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| Packet::from_bytes(black_box(&encoded)).unwrap())
    });
    group.finish();
}

/// Density-constant arena (as in the `scale` bench): the visible-set
/// size stays roughly flat while the population grows, which is exactly
/// the regime where the quadratic scan falls behind.
fn dense_world(n: u64) -> (World, Vec<(UserId, Vec2)>) {
    let side = 1000.0 * ((n.max(300) as f32) / 300.0).sqrt();
    let world = World {
        bounds: Rect::square(side),
        ..World::default()
    };
    let avatars: Vec<(UserId, Vec2)> = (0..n)
        .map(|i| (UserId(i), world.spawn_point(UserId(i))))
        .collect();
    (world, avatars)
}

fn bench_aoi_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/aoi");
    for n in [64u64, 512, 4096] {
        let (world, avatars) = dense_world(n);
        // One observer's query: the per-user cost inside a server tick.
        group.bench_with_input(BenchmarkId::new("quadratic", n), &n, |b, _| {
            let (observer, pos) = avatars[0];
            b.iter(|| compute_aoi(&world, observer, black_box(&pos), avatars.iter().copied()))
        });
        // Grid equivalent including its amortized share of the rebuild:
        // one rebuild serves every observer of the tick, so a full tick
        // is rebuild + n queries. Benchmark that whole tick divided by
        // the iteration giving per-tick numbers comparable to running
        // the quadratic scan n times.
        group.bench_with_input(BenchmarkId::new("grid_query", n), &n, |b, _| {
            let mut grid = AoiGrid::default();
            grid.rebuild(&world, &avatars);
            let (observer, pos) = avatars[0];
            b.iter(|| grid.query(&world, observer, black_box(&pos), avatars.len() - 1))
        });
        group.bench_with_input(BenchmarkId::new("grid_rebuild", n), &n, |b, _| {
            let mut grid = AoiGrid::default();
            b.iter(|| grid.rebuild(&world, black_box(&avatars)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire_roundtrip, bench_aoi_backends);
criterion_main!(benches);
