//! Criterion microbenchmarks of the scalability model itself: how cheap is
//! it for RTF-RMS to consult Eq. (1)–(5) and the Listing-1 planner at
//! runtime, and what does a full Levenberg–Marquardt calibration cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use roia_fit::lm::fit_default;
use roia_fit::model::Polynomial;
use roia_model::{
    l_max, n_max, plan, tick_duration_equal, CostFn, ModelParams, PlannerConfig, ZoneLoad,
};

fn demo_params() -> ModelParams {
    ModelParams {
        t_ua_dser: CostFn::Linear {
            c0: 2.7e-6,
            c1: 3.8e-9,
        },
        t_ua: CostFn::Quadratic {
            c0: 1.2e-4,
            c1: 3.6e-8,
            c2: 1.4e-10,
        },
        t_aoi: CostFn::Quadratic {
            c0: 1e-7,
            c1: 1.4e-9,
            c2: 2e-10,
        },
        t_su: CostFn::Linear {
            c0: 8e-8,
            c1: 6.2e-8,
        },
        t_fa_dser: CostFn::Linear {
            c0: 2e-6,
            c1: 1e-10,
        },
        t_fa: CostFn::Linear {
            c0: 1.2e-5,
            c1: 1e-10,
        },
        t_npc: CostFn::ZERO,
        t_mig_ini: CostFn::Linear { c0: 2e-4, c1: 7e-6 },
        t_mig_rcv: CostFn::Linear {
            c0: 1.5e-4,
            c1: 4e-6,
        },
    }
}

fn bench_tick_prediction(c: &mut Criterion) {
    let params = demo_params();
    c.bench_function("model/tick_duration_eq1", |b| {
        b.iter(|| tick_duration_equal(&params, black_box(ZoneLoad::new(4, 500, 50))))
    });
}

fn bench_capacity(c: &mut Criterion) {
    let params = demo_params();
    let mut group = c.benchmark_group("model/capacity");
    for l in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::new("n_max", l), &l, |b, &l| {
            b.iter(|| n_max(&params, black_box(l), 0, 0.040))
        });
    }
    group.bench_function("l_max_c015", |b| b.iter(|| l_max(&params, 0, 0.040, 0.15)));
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let params = demo_params();
    let config = PlannerConfig::default();
    let mut group = c.benchmark_group("model/planner");
    for replicas in [3usize, 8, 32] {
        // A maximally imbalanced group: everyone on one server.
        let mut users = vec![0u32; replicas];
        users[0] = 120;
        group.bench_with_input(
            BenchmarkId::new("plan_imbalanced", replicas),
            &users,
            |b, users| b.iter(|| plan(&params, black_box(users), &config)),
        );
    }
    group.finish();
}

fn bench_lm_fit(c: &mut Criterion) {
    // The §V-A fit workload: ~600 noisy samples per parameter, quadratic.
    let xs: Vec<f64> = (0..600).map(|i| 10.0 + (i % 30) as f64 * 10.0).collect();
    let ys: Vec<f64> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let noise = 1.0 + 0.1 * (((i as f64) * 0.37).sin());
            (1.2e-4 + 3.6e-8 * x + 1.4e-10 * x * x) * noise
        })
        .collect();
    c.bench_function("fit/lm_quadratic_600pts", |b| {
        b.iter(|| fit_default(&Polynomial::quadratic(), black_box(&xs), black_box(&ys)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_tick_prediction,
    bench_capacity,
    bench_planner,
    bench_lm_fit
);
criterion_main!(benches);
