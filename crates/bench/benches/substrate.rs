//! Criterion microbenchmarks of the substrate layers: wire serialization,
//! interest management, the message bus and a full server tick — the
//! per-tick costs the scalability model abstracts as `t_*` parameters.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtf_core::entity::{UserId, Vec2};
use rtf_core::event::Packet;
use rtf_core::net::Bus;
use rtf_core::server::{Server, ServerConfig};
use rtf_core::wire::Wire;
use rtf_core::zone::ZoneId;
use rtfdemo::{compute_aoi, CommandBatch, CostModel, RtfDemoApp, World};

fn bench_wire(c: &mut Criterion) {
    let pkt = Packet::UserInput {
        user: UserId(7),
        seq: 42,
        payload: CommandBatch::movement(1.0, 0.5)
            .with_attack(UserId(9), 10)
            .to_bytes(),
    };
    let encoded = pkt.to_bytes();
    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_user_input", |b| {
        b.iter(|| black_box(&pkt).to_bytes())
    });
    group.bench_function("decode_user_input", |b| {
        b.iter(|| Packet::from_bytes(black_box(&encoded)).unwrap())
    });
    let update = Packet::ReplicaUpdate {
        origin: rtf_core::net::NodeId(1),
        users: (0..100).map(UserId).collect(),
        payload: Bytes::from(vec![0u8; 2000]),
    };
    group.bench_function("encode_replica_update_100users", |b| {
        b.iter(|| black_box(&update).to_bytes())
    });
    group.finish();
}

fn bench_aoi(c: &mut Criterion) {
    let world = World::default();
    let mut group = c.benchmark_group("aoi/euclidean");
    for n in [100u64, 300, 1000] {
        let others: Vec<(UserId, Vec2)> = (1..=n)
            .map(|i| (UserId(i), world.spawn_point(UserId(i))))
            .collect();
        let observer_pos = world.spawn_point(UserId(0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &others, |b, others| {
            b.iter(|| {
                compute_aoi(
                    &world,
                    UserId(0),
                    black_box(&observer_pos),
                    others.iter().copied(),
                )
            })
        });
    }
    group.finish();
}

fn bench_bus(c: &mut Criterion) {
    let bus = Bus::new();
    let a = bus.register("a");
    let b_ep = bus.register("b");
    let payload = Bytes::from(vec![0u8; 128]);
    c.bench_function("bus/send_recv_128B", |b| {
        b.iter(|| {
            a.send(b_ep.id(), payload.clone()).unwrap();
            b_ep.try_recv().unwrap()
        })
    });
}

/// A full real-time-loop iteration with `n` connected users sending inputs
/// — the real cost behind the paper's T(1, n, 0).
fn bench_server_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("server/tick");
    group.sample_size(20);
    for n in [50u64, 150] {
        let bus = Bus::new();
        let app = RtfDemoApp::new(World::default(), 0, CostModel::exact());
        let mut server = Server::new(&bus, "bench", ZoneId(1), app, ServerConfig::default());
        let clients: Vec<_> = (0..n)
            .map(|i| {
                let ep = bus.register(&format!("c{i}"));
                server.connect_user(UserId(i), ep.id());
                ep
            })
            .collect();
        let input = CommandBatch::movement(1.0, 0.0).to_bytes();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for (i, ep) in clients.iter().enumerate() {
                    let pkt = Packet::UserInput {
                        user: UserId(i as u64),
                        seq: 0,
                        payload: input.clone(),
                    };
                    ep.send(server.id(), pkt.to_bytes()).unwrap();
                }
                let record = server.tick();
                // Drain the clients so inboxes do not grow unboundedly.
                for ep in &clients {
                    while ep.try_recv().is_some() {}
                }
                black_box(record)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire, bench_aoi, bench_bus, bench_server_tick);
criterion_main!(benches);
