//! Ablations over the design choices of the model-driven controller:
//!
//! 1. the §V-A replication-trigger fraction (the paper picks 80 % after
//!    "empiric observations" — what happens at other values?),
//! 2. the minimum-improvement factor `c` of Eq. (3) (the paper discusses
//!    0.05 / 0.15 / 1.0),
//! 3. the machine boot delay (the paper's testbed had none worth noting;
//!    clouds do),
//! 4. the measurement noise fed into the calibration (how robust is the
//!    LM fit pipeline?).
//!
//! Usage: `ablations [--seed N] [--ticks N] [--json PATH]` — the seed
//! and length apply to every ablated session so sweeps stay paired.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_model::ScalabilityModel;
use roia_sim::{
    calibrate_demo, run_session, ClusterConfig, MeasureConfig, PaperSession, SessionConfig,
};
use rtf_rms::{ModelDriven, ModelDrivenConfig, ResourcePool};

fn session(
    model: ScalabilityModel,
    trigger_fraction: f64,
    boot_delay: u64,
    args: &cli::CommonArgs,
) -> roia_sim::SessionReport {
    let workload = PaperSession {
        peak: 300,
        ramp_up_secs: 80.0,
        hold_secs: 20.0,
        ramp_down_secs: 80.0,
    };
    let config = SessionConfig {
        ticks: args.ticks.unwrap_or(180 * 25),
        max_churn_per_tick: 2,
        cluster: ClusterConfig {
            seed: args.seed.unwrap_or(42),
            pool: ResourcePool::new(16, 2, boot_delay, 90_000),
            ..ClusterConfig::default()
        },
        ..SessionConfig::default()
    };
    let policy = Box::new(ModelDriven::new(
        model.with_trigger_fraction(trigger_fraction),
        ModelDrivenConfig::default(),
    ));
    run_session(config, policy, &workload)
}

fn main() {
    let args = cli::parse();
    let (_cal, model) = calibrated_model(&default_campaign());

    println!("=== Ablation 1: replication-trigger fraction (paper: 0.8) ===");
    println!(
        "{:>9} {:>11} {:>11} {:>8} {:>10} {:>9}",
        "fraction", "violations", "migrations", "adds", "peak_srv", "cost"
    );
    let mut trigger_rows: Vec<String> = Vec::new();
    for fraction in [0.6, 0.7, 0.8, 0.9, 0.95, 1.0] {
        let r = session(model.clone(), fraction, 50, &args);
        println!(
            "{:>9.2} {:>11} {:>11} {:>8} {:>10} {:>9.3}",
            fraction, r.violations, r.migrations, r.replicas_added, r.peak_servers, r.total_cost
        );
        trigger_rows.push(json::object(&[
            ("fraction", json::num(fraction)),
            ("violations", json::uint(r.violations)),
            ("migrations", json::uint(r.migrations)),
            ("replicas_added", json::uint(r.replicas_added as u64)),
            ("peak_servers", json::uint(r.peak_servers as u64)),
            ("total_cost", json::num(r.total_cost)),
        ]));
    }
    println!("(low fractions scale early: fewer violations, more cost; 1.0 scales");
    println!(" only at the capacity limit and pays in violations)\n");

    println!("=== Ablation 2: minimum-improvement factor c of Eq. (3) ===");
    println!("{:>6} {:>7} {:>16}", "c", "l_max", "capacity@l_max");
    let mut improvement_rows: Vec<String> = Vec::new();
    for c in [0.05, 0.10, 0.15, 0.25, 0.5, 1.0] {
        let m = model.clone().with_improvement_factor(c);
        let limit = m.max_replicas(0);
        println!(
            "{:>6.2} {:>7} {:>16}",
            c,
            limit.l_max,
            limit.capacity_per_replica.last().copied().unwrap_or(0)
        );
        improvement_rows.push(json::object(&[
            ("c", json::num(c)),
            ("l_max", json::uint(limit.l_max as u64)),
            (
                "capacity_at_l_max",
                json::uint(limit.capacity_per_replica.last().copied().unwrap_or(0) as u64),
            ),
        ]));
    }
    println!();

    println!("=== Ablation 3: machine boot delay (ticks of 40 ms) ===");
    println!(
        "{:>7} {:>11} {:>8} {:>10}",
        "delay", "violations", "adds", "peak_srv"
    );
    let mut boot_rows: Vec<String> = Vec::new();
    for delay in [0u64, 25, 50, 100, 200] {
        let r = session(model.clone(), 0.8, delay, &args);
        println!(
            "{:>7} {:>11} {:>8} {:>10}",
            delay, r.violations, r.replicas_added, r.peak_servers
        );
        boot_rows.push(json::object(&[
            ("boot_delay_ticks", json::uint(delay)),
            ("violations", json::uint(r.violations)),
            ("replicas_added", json::uint(r.replicas_added as u64)),
            ("peak_servers", json::uint(r.peak_servers as u64)),
        ]));
    }
    println!("(slower clouds need earlier triggers — delay eats the 20 % headroom)\n");

    println!("=== Ablation 4: measurement noise vs calibrated capacity ===");
    println!("{:>7} {:>10} {:>9}", "noise", "n_max(1)", "l_max");
    let mut noise_rows: Vec<String> = Vec::new();
    for noise in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let campaign = MeasureConfig {
            noise,
            seed: args.seed.unwrap_or(default_campaign().seed),
            ..default_campaign()
        };
        let cal = calibrate_demo(&campaign).expect("campaign succeeds");
        let m = ScalabilityModel::new(cal.params, 0.040);
        println!(
            "{:>7.2} {:>10} {:>9}",
            noise,
            m.max_users(1, 0),
            m.max_replicas(0).l_max
        );
        noise_rows.push(json::object(&[
            ("noise", json::num(noise)),
            ("n_max_1", json::uint(m.max_users(1, 0) as u64)),
            ("l_max", json::uint(m.max_replicas(0).l_max as u64)),
        ]));
    }
    println!("(the LM fit absorbs realistic noise; capacities drift only slightly)");

    let doc = json::object(&[
        ("experiment", json::string("ablations")),
        ("seed", json::uint(args.seed.unwrap_or(42))),
        ("trigger_fraction", json::array(&trigger_rows)),
        ("improvement_factor", json::array(&improvement_rows)),
        ("boot_delay", json::array(&boot_rows)),
        ("calibration_noise", json::array(&noise_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
