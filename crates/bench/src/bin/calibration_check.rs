//! Diagnostic: where do the calibrated headline numbers land relative to
//! the paper (n_max(1) ≈ 235, trigger ≈ 188, l_max(0.15) = 8,
//! l_max(0.05) = 48)?

use roia_bench::{calibrated_model, default_campaign};

fn main() {
    let (calibration, model) = calibrated_model(&default_campaign());
    println!(
        "fit quality (worst R^2): {:.5}",
        calibration.worst_r_squared()
    );
    for fit in &calibration.fits {
        println!(
            "  {:>10}: coeffs {:?} r2={:.4} rmse={:.3e}",
            fit.kind.symbol(),
            fit.cost_fn.coefficients(),
            fit.fit.r_squared,
            fit.fit.rmse,
        );
    }
    let n1 = model.max_users(1, 0);
    println!("n_max(1) = {n1}   (paper: 235)");
    println!(
        "trigger  = {}  (paper: 188)",
        model.replication_trigger(1, 0)
    );
    for l in 2..=10 {
        println!("n_max({l}) = {}", model.max_users(l, 0));
    }
    let lim15 = model.max_replicas(0);
    println!("l_max(c=0.15) = {}  (paper: 8)", lim15.l_max);
    let m05 = model.clone().with_improvement_factor(0.05);
    println!("l_max(c=0.05) = {}  (paper: 48)", m05.max_replicas(0).l_max);
}
