//! Diagnostic: where do the calibrated headline numbers land relative to
//! the paper (n_max(1) ≈ 235, trigger ≈ 188, l_max(0.15) = 8,
//! l_max(0.05) = 48)?
//!
//! Usage: `calibration_check [--seed N] [--json PATH]`.

use roia_bench::{calibrated_model, cli, default_campaign, json};

fn main() {
    let args = cli::parse();
    let mut campaign = default_campaign();
    if let Some(seed) = args.seed {
        campaign.seed = seed;
    }
    let (calibration, model) = calibrated_model(&campaign);
    println!(
        "fit quality (worst R^2): {:.5}",
        calibration.worst_r_squared()
    );
    for fit in &calibration.fits {
        println!(
            "  {:>10}: coeffs {:?} r2={:.4} rmse={:.3e}",
            fit.kind.symbol(),
            fit.cost_fn.coefficients(),
            fit.fit.r_squared,
            fit.fit.rmse,
        );
    }
    let n1 = model.max_users(1, 0);
    println!("n_max(1) = {n1}   (paper: 235)");
    println!(
        "trigger  = {}  (paper: 188)",
        model.replication_trigger(1, 0)
    );
    for l in 2..=10 {
        println!("n_max({l}) = {}", model.max_users(l, 0));
    }
    let lim15 = model.max_replicas(0);
    println!("l_max(c=0.15) = {}  (paper: 8)", lim15.l_max);
    let m05 = model.clone().with_improvement_factor(0.05);
    println!("l_max(c=0.05) = {}  (paper: 48)", m05.max_replicas(0).l_max);

    let fit_rows: Vec<String> = calibration
        .fits
        .iter()
        .map(|fit| {
            json::object(&[
                ("param", json::string(fit.kind.symbol())),
                ("r_squared", json::num(fit.fit.r_squared)),
                ("rmse", json::num(fit.fit.rmse)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("calibration_check")),
        ("seed", json::uint(campaign.seed)),
        ("worst_r_squared", json::num(calibration.worst_r_squared())),
        ("n_max_1", json::uint(n1 as u64)),
        (
            "trigger",
            json::uint(model.replication_trigger(1, 0) as u64),
        ),
        ("l_max_c015", json::uint(lim15.l_max as u64)),
        ("l_max_c005", json::uint(m05.max_replicas(0).l_max as u64)),
        ("fits", json::array(&fit_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
