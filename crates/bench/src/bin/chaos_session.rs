//! Chaos evaluation — the Fig. 8 session on a cloud that misbehaves.
//!
//! Runs the §V-B managed session (population ramping to 300 users and
//! back) under three escalating fault plans — mild, rough, hostile — each
//! with at least two server crashes, a boot-failure window and ambient
//! link loss. For every plan it prints the recovery episodes (how long
//! users stayed unhomed after each fault), the U-violation series, and the
//! controller's action-ledger outcome histogram: every failed action must
//! end retried-to-success, escalated, or explicitly abandoned — never
//! silently lost. The per-tick invariant checker runs throughout, so a
//! panic here means user conservation or migration-safety broke.
//!
//! Usage: `chaos_session [--seed N] [--plan mild|rough|hostile|all]
//! [--ticks N] [--json PATH] [--trace PATH] [--metrics PATH]` — default
//! runs all three plans at the session's natural length with the
//! built-in seed. `--trace` records the session's JSONL telemetry
//! stream (tick spans, controller decisions with their Eq. 1–5 numbers,
//! fault injections, action lifecycles); replay it with the `explain`
//! binary. When several plans run, the plan label is suffixed to the
//! trace/metrics file stem.

use roia_bench::{calibrated_model, cli, default_campaign, json, U_THRESHOLD};
use roia_sim::chaos::{Fault, FaultPlan};
use roia_sim::{run_session, table, PaperSession, Series, SessionConfig, SessionReport};
use rtf_rms::{ModelDriven, ModelDrivenConfig};
use std::path::{Path, PathBuf};

/// A contiguous stretch of ticks with unhomed users.
struct Episode {
    start_tick: u64,
    ticks: u64,
    peak_unhomed: u32,
}

fn recovery_episodes(report: &SessionReport) -> Vec<Episode> {
    let mut episodes: Vec<Episode> = Vec::new();
    let mut open: Option<Episode> = None;
    for h in &report.history {
        if h.unhomed > 0 {
            let ep = open.get_or_insert(Episode {
                start_tick: h.tick,
                ticks: 0,
                peak_unhomed: 0,
            });
            ep.ticks += 1;
            ep.peak_unhomed = ep.peak_unhomed.max(h.unhomed);
        } else if let Some(ep) = open.take() {
            episodes.push(ep);
        }
    }
    episodes.extend(open);
    episodes
}

fn plan(seed: u64, level: u32, ticks: u64) -> FaultPlan {
    // Every level crashes two servers mid-session and has a window where
    // every machine request fails to boot; harsher levels add more.
    let base = FaultPlan::quiet(seed)
        .at(ticks * 3 / 10, Fault::CrashMostLoaded)
        .at(ticks * 6 / 10, Fault::CrashMostLoaded)
        .at(ticks * 3 / 10, Fault::SetBootFailureRate(1.0))
        .at(ticks * 3 / 10 + 500, Fault::SetBootFailureRate(0.0));
    match level {
        0 => base.with_link_faults(0.01, 0),
        1 => base.with_link_faults(0.01, 1).with_boot_failures(0.2).at(
            ticks / 2,
            Fault::Straggle {
                nth: 1,
                factor: 2.0,
                for_ticks: 750,
            },
        ),
        _ => base
            .with_link_faults(0.02, 2)
            .with_boot_failures(0.3)
            .at(
                ticks / 2,
                Fault::Straggle {
                    nth: 1,
                    factor: 3.0,
                    for_ticks: 750,
                },
            )
            .at(
                ticks * 4 / 10,
                Fault::Isolate {
                    nth: 0,
                    for_ticks: 500,
                },
            )
            .at(ticks * 8 / 10, Fault::CrashNth(0)),
    }
}

/// `trace.jsonl` + `rough` → `trace.rough.jsonl` (used when several
/// plans run in one invocation so they do not clobber one file).
fn with_label(path: &Path, label: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let ext = path.extension().and_then(|s| s.to_str());
    let name = match ext {
        Some(ext) => format!("{stem}.{label}.{ext}"),
        None => format!("{stem}.{label}"),
    };
    path.with_file_name(name)
}

fn main() {
    let args = cli::parse();
    if let Some(plan) = args.plan.as_deref() {
        assert!(
            matches!(plan, "mild" | "rough" | "hostile" | "all"),
            "unknown plan {plan} (mild|rough|hostile|all)"
        );
    }
    let seed = args.seed.unwrap_or(0xC405);
    let (_cal, model) = calibrated_model(&default_campaign());
    let workload = PaperSession::default();
    let ticks = args
        .ticks
        .unwrap_or_else(|| (workload.duration_secs() / 0.040).ceil() as u64);

    let levels: Vec<(u32, &str)> = [(0, "mild"), (1, "rough"), (2, "hostile")]
        .into_iter()
        .filter(|(_, label)| match args.plan.as_deref() {
            Some("all") | None => true,
            Some(wanted) => wanted == *label,
        })
        .collect();
    let single = levels.len() == 1;
    let per_plan_path = |base: Option<&Path>, label: &str| -> Option<PathBuf> {
        base.map(|p| {
            if single {
                p.to_path_buf()
            } else {
                with_label(p, label)
            }
        })
    };
    let mut plan_docs: Vec<String> = Vec::new();

    for (level, label) in levels {
        let trace_path = per_plan_path(args.trace.as_deref(), label);
        let config = SessionConfig {
            ticks,
            max_churn_per_tick: 2,
            initial_servers: 2,
            chaos: Some(plan(seed + level as u64, level, ticks)),
            debug_checks: true,
            tracer: cli::tracer(trace_path.as_deref()),
            flight: per_plan_path(args.flight.as_deref(), label).map(roia_obs::FlightConfig::new),
            reference_model: Some(model.clone()),
            ..SessionConfig::default()
        };
        let policy = Box::new(ModelDriven::new(
            model.clone(),
            ModelDrivenConfig::default(),
        ));
        let report = run_session(config, policy, &workload);
        if let Some(path) = &trace_path {
            println!("wrote {}", path.display());
        }
        cli::write_metrics(
            per_plan_path(args.metrics.as_deref(), label).as_deref(),
            &report.metrics,
        );

        println!("=== chaos level {level} ({label}) ===\n");

        let mut users = Series::new("users");
        let mut servers = Series::new("servers");
        let mut unhomed = Series::new("unhomed");
        let mut viol = Series::new("violations_%");
        let window = 250usize;
        for (i, chunk) in report.history.chunks(window).enumerate() {
            let t = (i * window) as f64 * 0.040;
            let last = chunk.last().unwrap();
            users.push(t, last.users as f64);
            servers.push(t, last.servers as f64);
            unhomed.push(
                t,
                chunk.iter().map(|h| h.unhomed as f64).fold(0.0, f64::max),
            );
            let v = chunk.iter().filter(|h| h.violation).count() as f64 / chunk.len() as f64;
            viol.push(t, v * 100.0);
        }
        println!("{}", table("t_secs", &[&users, &servers, &unhomed, &viol]));

        let episodes = recovery_episodes(&report);
        println!("recovery episodes (users unhomed -> re-homed):");
        if episodes.is_empty() {
            println!("  none — no fault unhomed anyone");
        }
        for ep in &episodes {
            println!(
                "  t={:>6.1}s  {:>4} ticks ({:>5.1}s) to recover, peak {} users unhomed",
                ep.start_tick as f64 * 0.040,
                ep.ticks,
                ep.ticks as f64 * 0.040,
                ep.peak_unhomed
            );
        }
        let final_unhomed = report.history.last().map_or(0, |h| h.unhomed);
        println!(
            "end of session: {} users connected, {} unhomed — {}",
            report.history.last().map_or(0, |h| h.users),
            final_unhomed,
            if final_unhomed == 0 {
                "every orphan recovered"
            } else {
                "RECOVERY INCOMPLETE"
            }
        );

        println!("\naction ledger outcomes:");
        for (name, count) in &report.outcomes {
            if *count > 0 {
                println!("  {name:<10} {count}");
            }
        }
        println!(
            "violations: {} ({:.2} % of ticks, threshold {:.0} ms)",
            report.violations,
            report.violation_rate() * 100.0,
            U_THRESHOLD * 1e3
        );
        println!(
            "cost: {:.3} units, peak servers: {}, migrations: {}\n",
            report.total_cost, report.peak_servers, report.migrations
        );

        let outcome_fields: Vec<String> = report
            .outcomes
            .iter()
            .map(|(name, count)| {
                json::object(&[
                    ("outcome", json::string(name)),
                    ("count", json::uint(*count as u64)),
                ])
            })
            .collect();
        let episode_rows: Vec<String> = episodes
            .iter()
            .map(|ep| {
                json::object(&[
                    ("start_tick", json::uint(ep.start_tick)),
                    ("ticks", json::uint(ep.ticks)),
                    ("peak_unhomed", json::uint(ep.peak_unhomed as u64)),
                ])
            })
            .collect();
        plan_docs.push(json::object(&[
            ("plan", json::string(label)),
            ("level", json::uint(level as u64)),
            ("violations", json::uint(report.violations)),
            ("violation_rate", json::num(report.violation_rate())),
            ("migrations", json::uint(report.migrations)),
            ("peak_servers", json::uint(report.peak_servers as u64)),
            ("total_cost", json::num(report.total_cost)),
            ("final_unhomed", json::uint(final_unhomed as u64)),
            ("recovery_episodes", json::array(&episode_rows)),
            ("outcomes", json::array(&outcome_fields)),
        ]));
    }

    let doc = json::object(&[
        ("experiment", json::string("chaos_session")),
        ("seed", json::uint(seed)),
        ("ticks", json::uint(ticks)),
        ("plans", json::array(&plan_docs)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
