//! `explain` — replay a JSONL telemetry trace as a human-readable
//! timeline.
//!
//! Reads the trace a session wrote under `--trace` (see `chaos_session`,
//! `fig8`, `recalibration`), decodes every line back into a typed
//! [`TraceEvent`], and reconstructs the controller's audit trail: for
//! every control round, the model decision with its Eq. 1–5 numbers
//! (predicted tick vs. `n_max` / trigger / `l_max`), the per-pair Eq. 5
//! migration budgets, and each issued action followed to its terminal
//! outcome. Server lifecycle, chaos faults, migration waves, calibration
//! refits and graceful-degradation episodes (degraded-mode enter/exit
//! with their cause ticks, plus every admission-control verdict) are
//! interleaved at the tick they happened.
//!
//! Usage: `explain TRACE.jsonl [--ticks N] [--since N] [--last N]
//! [--kind NAME]...` — `--ticks` truncates the replay after the given sim
//! tick, `--since` skips everything before one (bracket an incident with
//! `--since`/`--ticks`), `--last` keeps only the N most recent timeline
//! events after the other filters, and `--kind` (repeatable) restricts
//! the timeline to the named event kinds (`decision`, `slo_burn`,
//! `postmortem_dumped`, … — the `event` field of the JSONL records).
//! Action issue→resolution chains are followed over the whole trace
//! before filtering, so a filtered view still shows terminal outcomes.
//! Per-server tick spans are folded into the summary instead of printed
//! (they dominate the line count).

use roia_obs::TraceEvent;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};

const USAGE: &str = "usage: explain TRACE.jsonl [--ticks N] [--since N] [--last N] [--kind NAME]...

Replays a JSONL telemetry trace as a human-readable timeline.

  --ticks N    drop events after sim tick N
  --since N    drop events before sim tick N
  --last N     keep only the N most recent events (after other filters)
  --kind NAME  keep only events of this kind; repeatable
               (names are the `event` field: decision, action_issued,
                slo_burn, slo_recovered, postmortem_dumped, ...)
  --help       print this help";

/// Tick count → wall-clock seconds at the paper's 25 Hz update rate.
fn secs(tick: u64) -> f64 {
    tick as f64 * 0.040
}

struct ActionInfo {
    attempts: u32,
    outcome: Option<&'static str>,
    resolved_tick: Option<u64>,
}

fn main() {
    let mut path: Option<String> = None;
    let mut max_tick = u64::MAX;
    let mut since_tick = 0u64;
    let mut last_n: Option<usize> = None;
    let mut kinds: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ticks" => {
                max_tick = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--ticks needs a numeric value");
            }
            "--since" => {
                since_tick = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--since needs a numeric value");
            }
            "--last" => {
                last_n = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--last needs a numeric value"),
                );
            }
            "--kind" => {
                kinds.push(it.next().expect("--kind needs an event name"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if !other.starts_with("--") => path = Some(other.to_string()),
            other => panic!("unknown flag {other}\n{USAGE}"),
        }
    }
    let path = path.unwrap_or_else(|| panic!("no trace given\n{USAGE}"));
    let file = std::fs::File::open(&path).unwrap_or_else(|e| panic!("open {path}: {e}"));

    let mut events: Vec<TraceEvent> = Vec::new();
    let mut malformed = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line.unwrap_or_else(|e| panic!("read {path}: {e}"));
        if line.trim().is_empty() {
            continue;
        }
        match TraceEvent::from_json(&line) {
            Some(ev) if ev.tick() <= max_tick => events.push(ev),
            Some(_) => {}
            None => malformed += 1,
        }
    }
    // The JSONL stream interleaves emitters; order by sim-time for replay.
    events.sort_by_key(|e| e.tick());

    // First pass: follow every action to its terminal outcome so the
    // timeline can print issue→resolution chains in one line.
    let mut actions: BTreeMap<u64, ActionInfo> = BTreeMap::new();
    for ev in &events {
        match ev {
            TraceEvent::ActionIssued { action_id, .. } => {
                let info = actions.entry(*action_id).or_insert(ActionInfo {
                    attempts: 0,
                    outcome: None,
                    resolved_tick: None,
                });
                info.attempts += 1;
            }
            TraceEvent::ActionResolved {
                tick,
                action_id,
                outcome,
            } => {
                if let Some(info) = actions.get_mut(action_id) {
                    info.outcome = Some(outcome);
                    info.resolved_tick = Some(*tick);
                }
            }
            _ => {}
        }
    }

    let server_of = |id: i64| -> String {
        if id < 0 {
            "-".to_string()
        } else {
            format!("s{id}")
        }
    };

    // Timeline filters (the action map above intentionally sees the whole
    // trace, so filtered issue lines still carry their resolutions).
    let mut filtered: Vec<&TraceEvent> = events
        .iter()
        .filter(|ev| ev.tick() >= since_tick)
        .filter(|ev| kinds.is_empty() || kinds.iter().any(|k| k == ev.name()))
        .collect();
    if let Some(n) = last_n {
        let skip = filtered.len().saturating_sub(n);
        filtered.drain(..skip);
    }

    println!("=== trace replay: {path} ===\n");
    let mut tick_spans = 0u64;
    let mut worst_tick: Option<(u64, u32, f64)> = None;
    let mut decision_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut throttle_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut degraded_entries = 0u64;
    let mut fault_count = 0u64;
    let mut conn_opens = 0u64;
    let mut close_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut backpressure_onsets = 0u64;
    let mut corrections = 0u64;
    let mut slo_burns: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut slo_recoveries = 0u64;
    let mut postmortems = 0u64;
    for ev in &filtered {
        let t = ev.tick();
        let stamp = format!("t={t:>6} ({:>7.1}s)", secs(t));
        match ev {
            TraceEvent::TickSpan {
                server, duration_s, ..
            } => {
                tick_spans += 1;
                if worst_tick.is_none_or(|(_, _, d)| *duration_s > d) {
                    worst_tick = Some((t, *server, *duration_s));
                }
            }
            TraceEvent::ControlRound {
                zone,
                servers,
                users,
                issued,
                ..
            } => {
                println!(
                    "{stamp}  control round   zone {zone}: {servers} servers, {users} users, \
                     {issued} action(s) issued"
                );
            }
            TraceEvent::Decision {
                zone,
                kind,
                model_version,
                replicas,
                users,
                npcs,
                predicted_tick_s,
                n_max,
                trigger,
                l_max,
                ..
            } => {
                *decision_counts.entry(kind).or_insert(0) += 1;
                println!(
                    "{stamp}    decision      {kind} (zone {zone}, model v{model_version}): \
                     l={replicas} n={users} m={npcs} -> T={:.1}ms | n_max={n_max} \
                     trigger={trigger} l_max={l_max}",
                    predicted_tick_s * 1e3
                );
            }
            TraceEvent::MigrationBudget {
                from,
                to,
                from_tick_s,
                to_tick_s,
                x_max_ini,
                x_max_rcv,
                granted,
                ..
            } => {
                println!(
                    "{stamp}    eq5 budget    s{from}({:.1}ms) -> s{to}({:.1}ms): \
                     x_max_ini={x_max_ini} x_max_rcv={x_max_rcv} granted={granted}",
                    from_tick_s * 1e3,
                    to_tick_s * 1e3
                );
            }
            TraceEvent::ActionIssued {
                action_id,
                kind,
                attempt,
                from,
                to,
                users,
                ..
            } => {
                let chain = actions
                    .get(action_id)
                    .and_then(|info| info.outcome.map(|o| (o, info.resolved_tick)));
                let resolution = match chain {
                    Some((outcome, Some(rt))) => format!(" => {outcome} @ t={rt}"),
                    Some((outcome, None)) => format!(" => {outcome}"),
                    None => " => UNRESOLVED".to_string(),
                };
                let retry = if *attempt > 0 {
                    format!(" (retry #{attempt})")
                } else {
                    String::new()
                };
                println!(
                    "{stamp}    action #{action_id:<4} {kind}{retry} {} -> {} ({users} users){resolution}",
                    server_of(*from),
                    server_of(*to)
                );
            }
            TraceEvent::ActionResolved { .. } => {} // folded into the issue line
            TraceEvent::MigrationPlanned {
                action_id,
                from,
                to,
                users,
                ..
            } => {
                let origin = if *action_id == 0 {
                    "rebalance".to_string()
                } else {
                    format!("action #{action_id}")
                };
                println!(
                    "{stamp}    migration     s{from} -> s{to}: {users} users scheduled ({origin})"
                );
            }
            TraceEvent::MigrationSettled {
                server, arrived, ..
            } => {
                println!("{stamp}    settled       {arrived} users arrived on s{server}");
            }
            TraceEvent::FaultInjected { fault, server, .. } => {
                fault_count += 1;
                println!(
                    "{stamp}  FAULT           {fault} (target {})",
                    server_of(*server)
                );
            }
            TraceEvent::FaultReverted { fault, server, .. } => {
                println!(
                    "{stamp}  fault reverted  {fault} (target {})",
                    server_of(*server)
                );
            }
            TraceEvent::ServerBooted { server, .. } => {
                println!("{stamp}  server s{server} booted");
            }
            TraceEvent::ServerCrashed { server, .. } => {
                println!("{stamp}  server s{server} CRASHED");
            }
            TraceEvent::ServerRemoved { server, .. } => {
                println!("{stamp}  server s{server} removed (scale-down)");
            }
            TraceEvent::Refit {
                reason,
                outcome,
                version,
                params,
                ..
            } => {
                println!(
                    "{stamp}  refit           reason={reason} outcome={outcome} \
                     version={version} params_updated={params}"
                );
            }
            TraceEvent::RegistrySwap {
                version, reason, ..
            } => {
                println!("{stamp}  registry swap   model v{version} live (reason: {reason})");
            }
            TraceEvent::DegradedEnter {
                cause,
                reason,
                admission,
                fidelity,
                ..
            } => {
                degraded_entries += 1;
                println!(
                    "{stamp}  DEGRADED enter  reason={reason} (cause t={cause}): \
                     new joins {admission}, aoi fidelity {fidelity:.2}"
                );
            }
            TraceEvent::DegradedExit {
                cause,
                dwell_ticks,
                queued,
                shed,
                ..
            } => {
                println!(
                    "{stamp}  degraded exit   entered t={cause}, dwelt {dwell_ticks} ticks \
                     ({:.1}s): {queued} join(s) queued, {shed} shed",
                    secs(*dwell_ticks)
                );
            }
            TraceEvent::JoinThrottled {
                cause,
                verdict,
                total,
                ..
            } => {
                *throttle_counts.entry(verdict).or_insert(0) += 1;
                println!(
                    "{stamp}    join throttle {verdict} (episode t={cause}, \
                     #{total} this episode)"
                );
            }
            TraceEvent::ConnOpened {
                peer, transport, ..
            } => {
                conn_opens += 1;
                println!("{stamp}  conn open       peer {peer} ({transport})");
            }
            TraceEvent::ConnClosed {
                cause,
                peer,
                reason,
                ..
            } => {
                *close_counts.entry(reason).or_insert(0) += 1;
                println!(
                    "{stamp}  conn close      peer {peer}: {reason} \
                     (opened t={cause}, lived {} ticks)",
                    t.saturating_sub(*cause)
                );
            }
            TraceEvent::Backpressure {
                cause,
                peer,
                state,
                queued_bytes,
                ..
            } => {
                if *state == "onset" {
                    backpressure_onsets += 1;
                    println!(
                        "{stamp}  BACKPRESSURE    peer {peer}: onset, \
                         {queued_bytes} bytes queued"
                    );
                } else {
                    println!(
                        "{stamp}  backpressure    peer {peer}: relief \
                         (onset t={cause}, lasted {} ticks)",
                        t.saturating_sub(*cause)
                    );
                }
            }
            TraceEvent::ReconcileCorrection {
                peer, seq, error, ..
            } => {
                corrections += 1;
                println!(
                    "{stamp}    reconcile     user {peer}: prediction off by \
                     {error} units at ack seq {seq}"
                );
            }
            TraceEvent::SloBurn {
                cause,
                slo,
                severity,
                fast_burn_pm,
                slow_burn_pm,
                ..
            } => {
                *slo_burns.entry(slo).or_insert(0) += 1;
                println!(
                    "{stamp}  SLO BURN        {slo} [{severity}] (cause t={cause}): \
                     burning {:.1}x budget (fast) / {:.1}x (slow)",
                    *fast_burn_pm as f64 / 1e3,
                    *slow_burn_pm as f64 / 1e3
                );
            }
            TraceEvent::SloRecovered {
                cause,
                slo,
                burn_ticks,
                ..
            } => {
                slo_recoveries += 1;
                println!(
                    "{stamp}  slo recovered   {slo} (cause t={cause}, burned {burn_ticks} \
                     ticks = {:.1}s)",
                    secs(*burn_ticks)
                );
            }
            TraceEvent::PostmortemDumped {
                cause,
                reason,
                seq,
                events,
                decisions,
                model_version,
                ..
            } => {
                postmortems += 1;
                println!(
                    "{stamp}  POSTMORTEM #{seq} reason={reason} (cause t={cause}): \
                     {events} events, {decisions} decisions, model v{model_version}"
                );
            }
        }
    }

    println!("\n=== summary ===");
    if filtered.len() != events.len() {
        println!(
            "events: {} shown of {} decoded ({} malformed lines skipped)",
            filtered.len(),
            events.len(),
            malformed
        );
    } else {
        println!(
            "events: {} ({} malformed lines skipped)",
            events.len(),
            malformed
        );
    }
    println!("server tick spans: {tick_spans}");
    if let Some((t, server, d)) = worst_tick {
        println!(
            "worst tick: {:.2} ms on s{server} at t={t} ({:.1}s)",
            d * 1e3,
            secs(t)
        );
    }
    if !decision_counts.is_empty() {
        println!("decisions:");
        for (kind, count) in &decision_counts {
            println!("  {kind:<14} {count}");
        }
    }
    if !actions.is_empty() {
        let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut unresolved = 0u64;
        for info in actions.values() {
            match info.outcome {
                Some(o) => *outcomes.entry(o).or_insert(0) += 1,
                None => unresolved += 1,
            }
        }
        let retried = actions.values().filter(|i| i.attempts > 1).count();
        println!("actions: {} issued ({retried} retried)", actions.len());
        for (outcome, count) in &outcomes {
            println!("  {outcome:<14} {count}");
        }
        if unresolved > 0 {
            println!("  UNRESOLVED     {unresolved} (trace truncated or ledger leak)");
        }
    }
    println!("faults injected: {fault_count}");
    if degraded_entries > 0 || !throttle_counts.is_empty() {
        println!("degraded episodes: {degraded_entries}");
        for (verdict, count) in &throttle_counts {
            println!("  joins {verdict:<12} {count}");
        }
    }
    if conn_opens > 0 || !close_counts.is_empty() {
        println!("connections opened: {conn_opens}");
        for (reason, count) in &close_counts {
            println!("  closed {reason:<12} {count}");
        }
    }
    if backpressure_onsets > 0 {
        println!("backpressure onsets: {backpressure_onsets}");
    }
    if corrections > 0 {
        println!("reconciliation corrections: {corrections}");
    }
    if !slo_burns.is_empty() || slo_recoveries > 0 {
        println!("slo burns:");
        for (slo, count) in &slo_burns {
            println!("  {slo:<20} {count}");
        }
        println!("slo recoveries: {slo_recoveries}");
    }
    if postmortems > 0 {
        println!("postmortem bundles dumped: {postmortems}");
    }
}
