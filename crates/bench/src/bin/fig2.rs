//! Figure 2 — "Using the scalability model for workload-aware user
//! migration in two steps."
//!
//! The illustration scenario of §III-B: 45 users distributed [25, 12, 8]
//! across three replicas are equalized to [15, 15, 15], but each replica
//! may only initiate/receive as many migrations per second as Eq. (5)
//! allows, so the rebalancing takes multiple rounds. This binary runs the
//! Listing-1 planner with the calibrated RTFDemo model and prints every
//! round.
//!
//! Usage: `fig2 [--seed N] [--json PATH]`.

use roia_bench::{calibrated_model, cli, default_campaign, json};

fn main() {
    let args = cli::parse();
    let mut campaign = default_campaign();
    if let Some(seed) = args.seed {
        campaign.seed = seed;
    }
    let (_cal, model) = calibrated_model(&campaign);

    let initial = [25u32, 12, 8];
    println!("=== Fig. 2: workload-aware migration, initial distribution {initial:?} ===\n");

    // Show the Eq. (5) budgets the planner works under.
    let n: u32 = initial.iter().sum();
    for (i, &a) in initial.iter().enumerate() {
        let ini = model.migrations_initiate(3, n, 0, a);
        let rcv = model.migrations_receive(3, n, 0, a);
        println!("replica {i}: {a:>2} users   x_max_ini = {ini:<3} x_max_rcv = {rcv}");
    }

    let plan = model.plan_migrations(&initial, 0);
    println!();
    print_plan(&plan);
    println!(
        "balanced: {} (paper: reaches [15, 15, 15]; with the calibrated budgets ({}+ \
         migrations/s at this light load) one round suffices)",
        plan.balanced,
        model.migrations_initiate(3, n, 0, 25)
    );

    // The figure's *two-step* dynamic assumes tightly budgeted servers. The
    // same 25/12/8 imbalance under real load reproduces it: scaled by 5,
    // the 125-user source is budget-limited and rebalancing takes rounds.
    let loaded: Vec<u32> = initial.iter().map(|u| u * 5).collect();
    println!("\n--- same shape under heavy load: {loaded:?} ---\n");
    let n2: u32 = loaded.iter().sum();
    for (i, &a) in loaded.iter().enumerate() {
        println!(
            "replica {i}: {a:>3} users   x_max_ini = {:<4} x_max_rcv = {}",
            model.migrations_initiate(3, n2, 0, a),
            model.migrations_receive(3, n2, 0, a)
        );
    }
    let plan2 = model.plan_migrations(&loaded, 0);
    println!();
    print_plan(&plan2);
    println!(
        "balanced: {} in {} rounds (paper's figure: 2 rounds — budget-limited rebalancing)",
        plan2.balanced,
        plan2.rounds.len()
    );

    let doc = json::object(&[
        ("experiment", json::string("fig2")),
        ("light_balanced", json::string(&plan.balanced.to_string())),
        ("light_rounds", json::uint(plan.rounds.len() as u64)),
        ("heavy_balanced", json::string(&plan2.balanced.to_string())),
        ("heavy_rounds", json::uint(plan2.rounds.len() as u64)),
        (
            "heavy_final_distribution",
            json::array(
                &plan2
                    .rounds
                    .last()
                    .map(|r| {
                        r.resulting_users
                            .iter()
                            .map(|&u| json::uint(u as u64))
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default(),
            ),
        ),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}

fn print_plan(plan: &roia_model::MigrationPlan) {
    for (round_no, round) in plan.rounds.iter().enumerate() {
        println!("round {} (1 second):", round_no + 1);
        for mv in &round.moves {
            println!(
                "  migrate {:>2} users: replica {} -> replica {}",
                mv.users, mv.from, mv.to
            );
        }
        println!("  distribution now {:?}", round.resulting_users);
    }
}
