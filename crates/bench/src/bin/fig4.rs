//! Figure 4 — "Model parameters for replication in the RTFDemo application."
//!
//! Reruns the §V-A parameter-determination campaign (up to 300 bots on two
//! replicas of one zone), fits every per-task cost with the
//! Levenberg–Marquardt algorithm using the paper's function shapes
//! (quadratic for `t_ua`/`t_aoi`, linear otherwise), and prints the
//! measured samples next to the fitted approximation functions for the four
//! parameters the figure shows.

use roia_bench::{calibrated_model, default_campaign};
use roia_model::ParamKind;
use roia_sim::{table, Series};

fn main() {
    let campaign = default_campaign();
    let (calibration, _model) = calibrated_model(&campaign);

    println!("=== Fig. 4: fitted approximation functions (CPU time per entity, µs) ===\n");
    for kind in [
        ParamKind::UaDser,
        ParamKind::Ua,
        ParamKind::Aoi,
        ParamKind::Su,
    ] {
        let fit = calibration
            .fit_for(kind)
            .expect("campaign covers the figure's params");
        let coeffs = fit.cost_fn.coefficients();
        let shape = if coeffs.len() == 3 {
            "quadratic"
        } else {
            "linear"
        };
        println!(
            "{:>10} ({shape}): coeffs = {:?}   R² = {:.4}  RMSE = {:.3e}",
            kind.symbol(),
            coeffs,
            fit.fit.r_squared,
            fit.fit.rmse
        );
    }

    // The fitted curves evaluated on the figure's x-axis (user count).
    println!("\n--- fitted curves (µs per entity) ---");
    let mut columns = Vec::new();
    for kind in [
        ParamKind::UaDser,
        ParamKind::Ua,
        ParamKind::Aoi,
        ParamKind::Su,
    ] {
        let fit = calibration.fit_for(kind).unwrap();
        let mut s = Series::new(kind.symbol());
        let mut n = 20u32;
        while n <= campaign.max_users {
            s.push(n as f64, fit.cost_fn.eval(n as f64) * 1e6);
            n += 20;
        }
        columns.push(s);
    }
    let refs: Vec<&Series> = columns.iter().collect();
    println!("{}", table("users", &refs));

    // Shape checks the paper calls out in the text.
    let ua = calibration.fit_for(ParamKind::Ua).unwrap();
    let su = calibration.fit_for(ParamKind::Su).unwrap();
    println!("paper: 't_ua grows faster than any linear function' -> fitted quadratic coefficient = {:.3e}",
        ua.cost_fn.coefficients().get(2).copied().unwrap_or(0.0));
    println!(
        "paper: 't_su increases linearly' -> fitted slope = {:.3e}",
        su.cost_fn.coefficients().get(1).copied().unwrap_or(0.0)
    );
    println!("paper: 't_fa, t_fa_dser very short compared to other parameters':");
    let fa = calibration.fit_for(ParamKind::Fa).unwrap();
    println!(
        "  t_fa(300)  = {:.2} µs vs t_ua(300) = {:.2} µs",
        fa.cost_fn.eval(300.0) * 1e6,
        ua.cost_fn.eval(300.0) * 1e6
    );
}
