//! Figure 4 — "Model parameters for replication in the RTFDemo application."
//!
//! Reruns the §V-A parameter-determination campaign (up to 300 bots on two
//! replicas of one zone), fits every per-task cost with the
//! Levenberg–Marquardt algorithm using the paper's function shapes
//! (quadratic for `t_ua`/`t_aoi`, linear otherwise), and prints the
//! measured samples next to the fitted approximation functions for the four
//! parameters the figure shows.
//!
//! Usage: `fig4 [--seed N] [--json PATH]`.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_model::ParamKind;
use roia_sim::{table, Series};

fn main() {
    let args = cli::parse();
    let mut campaign = default_campaign();
    if let Some(seed) = args.seed {
        campaign.seed = seed;
    }
    let (calibration, _model) = calibrated_model(&campaign);

    println!("=== Fig. 4: fitted approximation functions (CPU time per entity, µs) ===\n");
    for kind in [
        ParamKind::UaDser,
        ParamKind::Ua,
        ParamKind::Aoi,
        ParamKind::Su,
    ] {
        let fit = calibration
            .fit_for(kind)
            .expect("campaign covers the figure's params");
        let coeffs = fit.cost_fn.coefficients();
        let shape = if coeffs.len() == 3 {
            "quadratic"
        } else {
            "linear"
        };
        println!(
            "{:>10} ({shape}): coeffs = {:?}   R² = {:.4}  RMSE = {:.3e}",
            kind.symbol(),
            coeffs,
            fit.fit.r_squared,
            fit.fit.rmse
        );
    }

    // The fitted curves evaluated on the figure's x-axis (user count).
    println!("\n--- fitted curves (µs per entity) ---");
    let mut columns = Vec::new();
    for kind in [
        ParamKind::UaDser,
        ParamKind::Ua,
        ParamKind::Aoi,
        ParamKind::Su,
    ] {
        let fit = calibration.fit_for(kind).unwrap();
        let mut s = Series::new(kind.symbol());
        let mut n = 20u32;
        while n <= campaign.max_users {
            s.push(n as f64, fit.cost_fn.eval(n as f64) * 1e6);
            n += 20;
        }
        columns.push(s);
    }
    let refs: Vec<&Series> = columns.iter().collect();
    println!("{}", table("users", &refs));

    // Shape checks the paper calls out in the text.
    let ua = calibration.fit_for(ParamKind::Ua).unwrap();
    let su = calibration.fit_for(ParamKind::Su).unwrap();
    println!("paper: 't_ua grows faster than any linear function' -> fitted quadratic coefficient = {:.3e}",
        ua.cost_fn.coefficients().get(2).copied().unwrap_or(0.0));
    println!(
        "paper: 't_su increases linearly' -> fitted slope = {:.3e}",
        su.cost_fn.coefficients().get(1).copied().unwrap_or(0.0)
    );
    println!("paper: 't_fa, t_fa_dser very short compared to other parameters':");
    let fa = calibration.fit_for(ParamKind::Fa).unwrap();
    println!(
        "  t_fa(300)  = {:.2} µs vs t_ua(300) = {:.2} µs",
        fa.cost_fn.eval(300.0) * 1e6,
        ua.cost_fn.eval(300.0) * 1e6
    );

    let fit_rows: Vec<String> = [
        ParamKind::UaDser,
        ParamKind::Ua,
        ParamKind::Aoi,
        ParamKind::Su,
    ]
    .iter()
    .map(|&kind| {
        let fit = calibration.fit_for(kind).unwrap();
        json::object(&[
            ("param", json::string(kind.symbol())),
            (
                "coefficients",
                json::array(
                    &fit.cost_fn
                        .coefficients()
                        .iter()
                        .map(|&c| json::num(c))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("r_squared", json::num(fit.fit.r_squared)),
            ("rmse", json::num(fit.fit.rmse)),
        ])
    })
    .collect();
    let doc = json::object(&[
        ("experiment", json::string("fig4")),
        ("seed", json::uint(campaign.seed)),
        ("fits", json::array(&fit_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
