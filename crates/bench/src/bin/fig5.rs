//! Figure 5 — "The effect of replication on scalability of the RTFDemo
//! application."
//!
//! Prints `n_max(l)` (Eq. (2)) and the 80 % replication trigger (the
//! figure's dashed line) for every replica count up to `l_max` (Eq. (3)),
//! plus the paper's §V-A scalars: the single-server capacity (235 in the
//! paper), the trigger (188), and l_max for c = 0.15 (8) and c = 0.05 (48).
//!
//! Usage: `fig5 [--seed N] [--json PATH]`.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_sim::{table, Series};

fn main() {
    let args = cli::parse();
    let mut campaign = default_campaign();
    if let Some(seed) = args.seed {
        campaign.seed = seed;
    }
    let (_calibration, model) = calibrated_model(&campaign);

    let limit = model.max_replicas(0);
    let mut cap = Series::new("max_users");
    let mut trigger = Series::new("trigger_80pct");
    for (i, &users) in limit.capacity_per_replica.iter().enumerate() {
        let l = (i + 1) as f64;
        cap.push(l, users as f64);
        trigger.push(l, (users as f64 * model.trigger_fraction).floor());
    }

    println!("=== Fig. 5: users vs replicas (U = 40 ms, c = 0.15, trigger = 80 %) ===\n");
    println!("{}", table("replicas", &[&cap, &trigger]));

    println!(
        "single-server capacity n_max(1) = {}   (paper: 235)",
        limit.single_server_capacity
    );
    println!(
        "replication trigger at 80 %      = {}   (paper: 188)",
        model.replication_trigger(1, 0)
    );
    println!(
        "l_max(c = 0.15)                  = {}   (paper: 8)",
        limit.l_max
    );
    let loose = model.clone().with_improvement_factor(0.05);
    println!(
        "l_max(c = 0.05)                  = {}  (paper: 48)",
        loose.max_replicas(0).l_max
    );
    let strict = model.clone().with_improvement_factor(1.0);
    println!(
        "l_max(c = 1.0)                   = {}   (paper: 1, 'values close or equal to 1 lead to l_max = 1')",
        strict.max_replicas(0).l_max
    );

    let capacity_rows: Vec<String> = limit
        .capacity_per_replica
        .iter()
        .enumerate()
        .map(|(i, &users)| {
            json::object(&[
                ("replicas", json::uint(i as u64 + 1)),
                ("max_users", json::uint(users as u64)),
                (
                    "trigger",
                    json::uint((users as f64 * model.trigger_fraction).floor() as u64),
                ),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("fig5")),
        ("seed", json::uint(campaign.seed)),
        ("n_max_1", json::uint(limit.single_server_capacity as u64)),
        (
            "trigger_80pct",
            json::uint(model.replication_trigger(1, 0) as u64),
        ),
        ("l_max_c015", json::uint(limit.l_max as u64)),
        ("l_max_c005", json::uint(loose.max_replicas(0).l_max as u64)),
        (
            "l_max_c100",
            json::uint(strict.max_replicas(0).l_max as u64),
        ),
        ("capacity_per_replica", json::array(&capacity_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
