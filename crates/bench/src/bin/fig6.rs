//! Figure 6 — "Model parameters for user migration in the RTFDemo
//! application."
//!
//! Reruns the migration measurement campaign (migrations issued between two
//! servers at varying populations), fits `t_mig_ini` and `t_mig_rcv` with
//! linear approximation functions, and prints both curves. The paper's
//! observation to reproduce: both grow almost linearly and initiating is
//! more expensive than receiving.
//!
//! Usage: `fig6 [--seed N] [--json PATH]`.

use roia_bench::{cli, default_campaign, json};
use roia_model::{calibrate, ParamKind};
use roia_sim::{measure_migration_params, table, Series};

fn main() {
    let args = cli::parse();
    let mut campaign = default_campaign();
    if let Some(seed) = args.seed {
        campaign.seed = seed;
    }
    let measurements = measure_migration_params(&campaign);
    let calibration = calibrate(&measurements).expect("migration params sampled");

    println!("=== Fig. 6: migration cost parameters (ms per migration) ===\n");
    let mut columns = Vec::new();
    for kind in [ParamKind::MigIni, ParamKind::MigRcv] {
        let fit = calibration.fit_for(kind).expect("fitted");
        println!(
            "{:>10}: coeffs = {:?}  R² = {:.4}",
            kind.symbol(),
            fit.cost_fn.coefficients(),
            fit.fit.r_squared
        );
        let mut s = Series::new(kind.symbol());
        let mut n = 20u32;
        while n <= campaign.max_users {
            s.push(n as f64, fit.cost_fn.eval(n as f64) * 1e3);
            n += 20;
        }
        columns.push(s);
    }
    let refs: Vec<&Series> = columns.iter().collect();
    println!("\n{}", table("users", &refs));

    let ini = calibration.fit_for(ParamKind::MigIni).unwrap();
    let rcv = calibration.fit_for(ParamKind::MigRcv).unwrap();
    let n = 200.0;
    println!(
        "paper: 'CPU time for initiating migrations is higher than for receiving': t_mig_ini({n}) = {:.3} ms > t_mig_rcv({n}) = {:.3} ms : {}",
        ini.cost_fn.eval(n) * 1e3,
        rcv.cost_fn.eval(n) * 1e3,
        ini.cost_fn.eval(n) > rcv.cost_fn.eval(n)
    );

    let fit_rows: Vec<String> = [ParamKind::MigIni, ParamKind::MigRcv]
        .iter()
        .map(|&kind| {
            let fit = calibration.fit_for(kind).unwrap();
            json::object(&[
                ("param", json::string(kind.symbol())),
                (
                    "coefficients",
                    json::array(
                        &fit.cost_fn
                            .coefficients()
                            .iter()
                            .map(|&c| json::num(c))
                            .collect::<Vec<_>>(),
                    ),
                ),
                ("r_squared", json::num(fit.fit.r_squared)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("fig6")),
        ("seed", json::uint(campaign.seed)),
        ("ini_cost_ms_at_200", json::num(ini.cost_fn.eval(n) * 1e3)),
        ("rcv_cost_ms_at_200", json::num(rcv.cost_fn.eval(n) * 1e3)),
        ("fits", json::array(&fit_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
