//! Figure 7 — "Scalability Model output: Number of user migrations for the
//! RTFDemo application."
//!
//! For a range of observed tick durations, prints how many migrations a
//! server may initiate (`x_max_ini`) and receive (`x_max_rcv`) per second
//! without exceeding U = 40 ms (Eq. (5)). The user count entering
//! `t_mig_*(n)` at each tick duration is inferred from the model itself:
//! the population of a server of a two-replica group whose predicted tick
//! equals the x value (the setup of the paper's worked example with servers
//! A and B).
//!
//! Also reprints the worked example of §V-A: 180 users at 35 ms vs 80 users
//! at 15 ms ⇒ RTF-RMS performs min{x_ini, x_rcv} migrations per second.
//!
//! Usage: `fig7 [--seed N] [--json PATH]`.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_model::{migration_curve, x_max_from_tick, MigrationSide, ZoneLoad};
use roia_sim::{table, Series};

fn main() {
    let args = cli::parse();
    let mut campaign = default_campaign();
    if let Some(seed) = args.seed {
        campaign.seed = seed;
    }
    let (_cal, model) = calibrated_model(&campaign);

    // Invert the tick prediction: for each candidate active-user count `a`
    // on one of two replicas (zone population n = 2a), Eq. (4) gives the
    // tick duration; collect (tick, n) samples across the feasible range.
    let mut samples: Vec<(f64, u32)> = Vec::new();
    let mut a = 5u32;
    loop {
        let n = 2 * a;
        let tick = roia_model::tick_duration(&model.params, ZoneLoad::new(2, n, 0), a);
        if tick >= model.u_threshold {
            break;
        }
        samples.push((tick, n));
        a += 5;
    }

    let curve = migration_curve(&model.params, &samples, model.u_threshold);
    let mut ini = Series::new("x_max_ini/s");
    let mut rcv = Series::new("x_max_rcv/s");
    for p in &curve {
        ini.push(p.tick * 1e3, p.x_ini as f64);
        rcv.push(p.tick * 1e3, p.x_rcv as f64);
    }

    println!("=== Fig. 7: migration budgets vs tick duration (U = 40 ms) ===\n");
    println!("{}", table("tick_ms", &[&ini, &rcv]));

    // §V-A worked example.
    let ini_a = x_max_from_tick(&model.params, MigrationSide::Initiate, 0.035, 180, 0.040);
    let rcv_b = x_max_from_tick(&model.params, MigrationSide::Receive, 0.015, 80, 0.040);
    println!("worked example (server A: 180 users @ 35 ms, server B: 80 users @ 15 ms):");
    println!("  x_max_ini(A) = {ini_a}   (paper: 3)");
    println!("  x_max_rcv(B) = {rcv_b}  (paper: 34)");
    println!(
        "  RTF-RMS performs min{{{ini_a}, {rcv_b}}} = {} migrations/s (paper: 3)",
        ini_a.min(rcv_b)
    );
    let ini_a2 = x_max_from_tick(&model.params, MigrationSide::Initiate, 0.030, 160, 0.040);
    let rcv_b2 = x_max_from_tick(&model.params, MigrationSide::Receive, 0.020, 100, 0.040);
    println!(
        "  after rebalancing (A: 160 @ 30 ms): min{{{ini_a2}, {rcv_b2}}} = {} (paper: 5)",
        ini_a2.min(rcv_b2)
    );

    let curve_rows: Vec<String> = curve
        .iter()
        .map(|p| {
            json::object(&[
                ("tick_ms", json::num(p.tick * 1e3)),
                ("x_max_ini", json::uint(p.x_ini as u64)),
                ("x_max_rcv", json::uint(p.x_rcv as u64)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("fig7")),
        ("seed", json::uint(campaign.seed)),
        ("worked_example_ini_a", json::uint(ini_a as u64)),
        ("worked_example_rcv_b", json::uint(rcv_b as u64)),
        ("worked_example_min", json::uint(ini_a.min(rcv_b) as u64)),
        ("curve", json::array(&curve_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
