//! Figure 8 — "Dynamic load balancing of the RTFDemo application for a
//! changing number of users."
//!
//! Calibrates the model (§V-A), then runs a full managed session (§V-B): a
//! population ramping up to 300 users and back down, the model-driven
//! RTF-RMS policy adding/removing replicas at the Fig. 5 trigger and pacing
//! migrations with the Fig. 7 budgets. Prints the figure's three series —
//! user count, active servers and average CPU load — and the §V-B
//! acceptance criterion: the tick duration never exceeded 40 ms.

//!
//! Usage: `fig8 [--seed N] [--ticks N] [--json PATH] [--trace PATH]
//! [--metrics PATH]`.

use roia_bench::{calibrated_model, cli, default_campaign, json, U_THRESHOLD};
use roia_sim::{run_session, table, ClusterConfig, PaperSession, Series, SessionConfig};
use rtf_rms::{ModelDriven, ModelDrivenConfig};

fn main() {
    let args = cli::parse();
    let (_cal, model) = calibrated_model(&default_campaign());
    println!(
        "calibrated: n_max(1) = {}, trigger = {}, l_max = {}\n",
        model.max_users(1, 0),
        model.replication_trigger(1, 0),
        model.max_replicas(0).l_max
    );

    let workload = PaperSession::default();
    let ticks = args
        .ticks
        .unwrap_or_else(|| (workload.duration_secs() / 0.040).ceil() as u64);
    let config = SessionConfig {
        ticks,
        max_churn_per_tick: 2,
        cluster: ClusterConfig {
            seed: args.seed.unwrap_or(42),
            ..ClusterConfig::default()
        },
        tracer: cli::tracer(args.trace.as_deref()),
        ..SessionConfig::default()
    };
    let policy = Box::new(ModelDriven::new(model, ModelDrivenConfig::default()));
    let report = run_session(config, policy, &workload);
    if let Some(path) = &args.trace {
        println!("wrote {}", path.display());
    }
    cli::write_metrics(args.metrics.as_deref(), &report.metrics);

    // Downsample to ~5-second resolution for the printed series.
    let mut users = Series::new("users");
    let mut servers = Series::new("servers");
    let mut cpu = Series::new("avg_cpu_load_%");
    for h in report.sampled(125) {
        let t = h.tick as f64 * 0.040;
        users.push(t, h.users as f64);
        servers.push(t, h.servers as f64);
        cpu.push(t, h.avg_cpu_load * 100.0);
    }

    println!("=== Fig. 8: managed session, model-driven RTF-RMS ===\n");
    println!("{}", table("t_secs", &[&users, &servers, &cpu]));

    let worst = report
        .history
        .iter()
        .map(|h| h.max_tick_duration)
        .fold(0.0f64, f64::max);
    println!("replication enactments: {}", report.replicas_added);
    println!("resource removals:      {}", report.replicas_removed);
    println!("users migrated:         {}", report.migrations);
    println!("peak servers:           {}", report.peak_servers);
    println!(
        "mean CPU load:          {:.1} % (paper: stays below 100 % by design)",
        report.mean_cpu_load() * 100.0
    );
    println!("cloud cost:             {:.3} units", report.total_cost);
    println!(
        "worst tick duration:    {:.2} ms (threshold {:.0} ms) — violations: {} ({:.3} % of ticks)",
        worst * 1e3,
        U_THRESHOLD * 1e3,
        report.violations,
        report.violation_rate() * 100.0
    );
    println!(
        "paper's claim 'the tick duration on all application servers did not exceed 40 ms': {}",
        if report.violations == 0 {
            "REPRODUCED"
        } else {
            "violated (see EXPERIMENTS.md)"
        }
    );

    // Machine-readable counterpart of the printed series and summary.
    let series_rows: Vec<String> = report
        .sampled(125)
        .iter()
        .map(|h| {
            json::object(&[
                ("tick", json::num(h.tick as f64)),
                ("t_secs", json::num(h.tick as f64 * 0.040)),
                ("users", json::num(h.users as f64)),
                ("servers", json::num(h.servers as f64)),
                ("avg_cpu_load", json::num(h.avg_cpu_load)),
                ("max_tick_ms", json::num(h.max_tick_duration * 1e3)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("fig8")),
        ("u_threshold_ms", json::num(U_THRESHOLD * 1e3)),
        ("worst_tick_ms", json::num(worst * 1e3)),
        ("violations", json::num(report.violations as f64)),
        ("violation_rate", json::num(report.violation_rate())),
        ("replicas_added", json::num(report.replicas_added as f64)),
        (
            "replicas_removed",
            json::num(report.replicas_removed as f64),
        ),
        ("migrations", json::num(report.migrations as f64)),
        ("peak_servers", json::num(report.peak_servers as f64)),
        ("mean_cpu_load", json::num(report.mean_cpu_load())),
        ("total_cost", json::num(report.total_cost)),
        ("series", json::array(&series_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), Some("BENCH_fig8.json"), &doc);
}
