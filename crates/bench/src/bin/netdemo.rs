//! `netdemo` — wire-level validation of the Eq. (1) serialization terms
//! over real sockets.
//!
//! Starts a real [`rtf_transport::tcp::TcpServerTransport`] session on
//! localhost, connects `--clients` socket bots (one OS thread each, real
//! non-blocking TCP through the full prediction/reconciliation client),
//! and measures the server's wire egress over a `--ticks` window. The
//! measurement is compared against the analytic per-tick serialization
//! volume predicted by `roia_model::bandwidth::BandwidthParams` built
//! from the protocol's byte constants:
//!
//! ```text
//! predicted = n · (SNAPSHOT_OVERHEAD + FRAME_OVERHEAD + n · ENTITY_STATE)
//! ```
//!
//! (each of the `n` clients receives one snapshot per tick carrying ~`n`
//! entity entries, because every bot paces one input per received
//! snapshot and every applied input marks its entity changed).
//!
//! The run fails (exit 1) if any invariant is violated — a bot desyncs,
//! a connection drops unexpectedly, the server sees a corrupt frame —
//! or if measured and predicted egress disagree by more than
//! `--tolerance` (default 15%).
//!
//! Flags beyond the common set: `--clients N` (default 64), `--tick-ms M`
//! (default 5), `--tolerance PCT` (default 15). Writes
//! `BENCH_transport.json` (override with `--json`).

use roia_bench::{cli, json};
use roia_model::bandwidth::BandwidthParams;
use roia_model::tick::ZoneLoad;
use roia_model::CostFn;
use roia_obs::{MetricKey, MetricsRegistry};
use rtf_transport::proto::{
    ENTITY_STATE_BYTES, INPUT_MSG_BYTES, NO_TARGET, SNAPSHOT_OVERHEAD_BYTES,
};
use rtf_transport::session::{
    ClientNetStats, ClientSession, ClientState, InputCmd, ServerSession, SessionConfig,
};
use rtf_transport::tcp::{TcpClientTransport, TcpConfig, TcpServerTransport};
use rtf_transport::{Transport, FRAME_OVERHEAD};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tiny xorshift so bots are seeded deterministically without pulling a
/// stateful RNG into every thread.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

struct BotOutcome {
    stats: ClientNetStats,
    clean_exit: bool,
}

fn run_bot(
    addr: std::net::SocketAddr,
    user: u64,
    seed: u64,
    stop: Arc<AtomicBool>,
    outcomes: Arc<Mutex<Vec<BotOutcome>>>,
) {
    let transport =
        TcpClientTransport::connect_retry(addr, TcpConfig::default(), Duration::from_secs(5))
            .unwrap_or_else(|e| panic!("bot {user}: connect {addr}: {e}"));
    let mut session = ClientSession::new(
        transport,
        user,
        SessionConfig::default(),
        roia_obs::Tracer::disabled(),
    );
    let mut rng = XorShift::new(seed ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // One input owed per snapshot received: bots keep exact pace with the
    // server's update rate, which is what the Eq. (1) prediction assumes.
    let mut owed: u64 = 0;
    let mut next_input: Option<InputCmd> = None;
    while !stop.load(Ordering::Relaxed) {
        let applied = session.tick(next_input.take());
        owed += u64::from(applied);
        if session.state() == ClientState::Closed {
            break;
        }
        if session.state() == ClientState::Welcomed && owed > 0 {
            owed -= 1;
            let r = rng.next();
            // Mostly walk; occasionally swing at the nearest entity (the
            // respawn teleports exercise reconciliation corrections).
            let attack = if r % 16 == 0 {
                nearest_other(&session, user).unwrap_or(NO_TARGET)
            } else {
                NO_TARGET
            };
            next_input = Some(InputCmd {
                dx: ((r >> 8) % 3) as i8 - 1,
                dy: ((r >> 16) % 3) as i8 - 1,
                attack,
            });
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    let clean = session.state() != ClientState::Closed;
    if clean {
        session.bye();
    }
    if let Ok(mut o) = outcomes.lock() {
        o.push(BotOutcome {
            stats: session.net_stats(),
            clean_exit: clean,
        });
    }
}

fn nearest_other(session: &ClientSession<TcpClientTransport>, user: u64) -> Option<u64> {
    let (px, py) = session.predicted_pos();
    session
        .auth_world()
        .iter()
        .filter(|(id, _)| **id != user)
        .min_by_key(|(_, e)| {
            let dx = i64::from(e.x) - i64::from(px);
            let dy = i64::from(e.y) - i64::from(py);
            dx.abs().max(dy.abs())
        })
        .map(|(id, _)| *id)
}

fn main() {
    let mut clients: u64 = 64;
    let mut tick_ms: u64 = 5;
    let mut tolerance_pct: u64 = 15;
    let args = cli::parse_with(|flag, value| match flag {
        "--clients" => {
            clients = value("--clients")
                .parse()
                .expect("--clients needs a number");
            true
        }
        "--tick-ms" => {
            tick_ms = value("--tick-ms")
                .parse()
                .expect("--tick-ms needs a number");
            true
        }
        "--tolerance" => {
            tolerance_pct = value("--tolerance")
                .parse()
                .expect("--tolerance needs a number (percent)");
            true
        }
        _ => false,
    });
    let ticks = args.ticks.unwrap_or(200);
    let seed = args.seed.unwrap_or(42);
    let tracer = cli::tracer(args.trace.as_deref());

    let server_transport =
        TcpServerTransport::bind("127.0.0.1:0", TcpConfig::default()).expect("bind localhost");
    let addr = server_transport.local_addr().expect("local addr");
    let mut server = ServerSession::new(server_transport, SessionConfig::default(), tracer);
    println!("netdemo: {clients} socket bots -> {addr}, {ticks} ticks @ {tick_ms}ms over real TCP");

    let stop = Arc::new(AtomicBool::new(false));
    let outcomes: Arc<Mutex<Vec<BotOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let stop = stop.clone();
            let outcomes = outcomes.clone();
            std::thread::spawn(move || run_bot(addr, i + 1, seed, stop, outcomes))
        })
        .collect();

    // Warmup: tick at the configured cadence until every bot is spawned
    // into the world and snapshots are flowing.
    let tick_period = Duration::from_millis(tick_ms.max(1));
    let warmup_deadline = Instant::now() + Duration::from_secs(30);
    while (server.world().len() as u64) < clients {
        server.tick();
        std::thread::sleep(tick_period);
        assert!(
            Instant::now() < warmup_deadline,
            "warmup timed out: only {}/{clients} bots joined",
            server.world().len()
        );
    }
    // A few settle ticks so every bot has its first keyframe and the
    // input pipeline is primed.
    for _ in 0..32 {
        server.tick();
        std::thread::sleep(tick_period);
    }

    // Measurement window.
    server.transport_mut().reset_stats();
    let stats_before = server.stats();
    let mut metrics = MetricsRegistry::new();
    let egress_key = MetricKey::plain("netdemo_egress_bytes_per_tick");
    let ingress_key = MetricKey::plain("netdemo_ingress_bytes_per_tick");
    let window_start = Instant::now();
    for _ in 0..ticks {
        let next = Instant::now() + tick_period;
        let report = server.tick();
        metrics.record(egress_key, report.egress_bytes);
        metrics.record(ingress_key, report.ingress_bytes);
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
    }
    let window_secs = window_start.elapsed().as_secs_f64();
    let window = server.transport().total_stats();
    let window_server_stats = {
        let after = server.stats();
        let before = stats_before;
        (
            after.inputs_applied - before.inputs_applied,
            after.snapshots_sent - before.snapshots_sent,
            after.keyframes_sent - before.keyframes_sent,
            after.snapshot_skips - before.snapshot_skips,
        )
    };

    // Wind down: stop the bots, drain their goodbyes.
    stop.store(true, Ordering::Relaxed);
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while server.peer_count() > 0 && Instant::now() < drain_deadline {
        server.tick();
        std::thread::sleep(tick_period);
    }
    server.shutdown();
    for h in handles {
        let _ = h.join();
    }
    let outcomes = Arc::try_unwrap(outcomes)
        .map(|m| m.into_inner().unwrap_or_default())
        .unwrap_or_default();

    // Eq. (1) serialization volume from the protocol's byte constants:
    // one snapshot per client per tick, ~n entity entries each.
    let n = clients as u32;
    let bandwidth = BandwidthParams {
        client_in_per_user: CostFn::Constant((INPUT_MSG_BYTES + FRAME_OVERHEAD) as f64),
        client_out_per_user: CostFn::Linear {
            c0: (SNAPSHOT_OVERHEAD_BYTES + FRAME_OVERHEAD) as f64,
            c1: ENTITY_STATE_BYTES as f64,
        },
        peer_out_per_active: CostFn::Constant(0.0),
    };
    let load = ZoneLoad {
        replicas: 1,
        users: n,
        npcs: 0,
    };
    let predicted = bandwidth.bytes_out_per_tick(load);
    let measured = window.bytes_out as f64 / ticks as f64;
    let rel_err = (measured - predicted).abs() / predicted;
    // How many users a 100 Mbit/s egress link would admit at this tick
    // rate, per Eq. (1)'s bandwidth cap — the wire-level n_max.
    let cap_bytes_per_tick = 100e6 / 8.0 * (tick_ms as f64 / 1e3);
    let n_max_bw = bandwidth.n_max_bandwidth(1, cap_bytes_per_tick);

    let (inputs_applied, snapshots_sent, keyframes_sent, snapshot_skips) = window_server_stats;
    let mut desyncs = 0u64;
    let mut corrections = 0u64;
    let mut unclean_exits = 0u64;
    for o in &outcomes {
        desyncs += o.stats.desyncs;
        corrections += o.stats.corrections;
        if !o.clean_exit {
            unclean_exits += 1;
        }
    }
    let bots_reporting = outcomes.len() as u64;
    let bad_frames = server.stats().bad_frames;
    let violations = desyncs + unclean_exits + bad_frames + (clients - bots_reporting);

    let egress_snap = metrics
        .histogram(egress_key)
        .map(|h| h.snapshot())
        .unwrap_or_default();
    println!("measurement window: {ticks} ticks in {window_secs:.2}s");
    println!(
        "server egress: measured {measured:.0} B/tick vs predicted {predicted:.0} B/tick \
         (error {:.1}%)",
        rel_err * 1e2
    );
    println!(
        "egress/tick histogram: p50={} p90={} p99={} max={}",
        egress_snap.p50, egress_snap.p90, egress_snap.p99, egress_snap.max
    );
    println!(
        "window: {inputs_applied} inputs applied, {snapshots_sent} snapshots \
         ({keyframes_sent} keyframes, {snapshot_skips} backpressure skips)"
    );
    println!(
        "clients: {bots_reporting}/{clients} reported, {corrections} reconcile corrections, \
         {desyncs} desyncs, {unclean_exits} unclean exits, {bad_frames} bad frames"
    );
    println!(
        "eq1 bandwidth cap: 100 Mbit/s egress admits n_max={n_max_bw} users at {tick_ms}ms ticks \
         (running {n})"
    );
    println!("invariant_violations: {violations}");

    let within = rel_err <= tolerance_pct as f64 / 1e2;
    let doc = json::object(&[
        ("experiment", json::string("netdemo")),
        ("transport", json::string("tcp")),
        ("clients", json::uint(clients)),
        ("ticks", json::uint(ticks)),
        ("tick_ms", json::uint(tick_ms)),
        ("seed", json::uint(seed)),
        ("measured_bytes_per_tick", json::num(measured)),
        ("predicted_bytes_per_tick", json::num(predicted)),
        ("relative_error", json::num(rel_err)),
        ("tolerance", json::num(tolerance_pct as f64 / 1e2)),
        (
            "within_tolerance",
            json::string(if within { "true" } else { "false" }),
        ),
        ("egress_p50", json::uint(egress_snap.p50)),
        ("egress_p90", json::uint(egress_snap.p90)),
        ("egress_p99", json::uint(egress_snap.p99)),
        ("egress_max", json::uint(egress_snap.max)),
        ("bytes_in_total", json::uint(window.bytes_in)),
        ("bytes_out_total", json::uint(window.bytes_out)),
        ("frames_out_total", json::uint(window.frames_out)),
        ("inputs_applied", json::uint(inputs_applied)),
        ("snapshots_sent", json::uint(snapshots_sent)),
        ("keyframes_sent", json::uint(keyframes_sent)),
        ("backpressure_skips", json::uint(snapshot_skips)),
        ("reconcile_corrections", json::uint(corrections)),
        ("desyncs", json::uint(desyncs)),
        ("cap_bytes_per_tick", json::num(cap_bytes_per_tick)),
        ("n_max_bandwidth", json::uint(u64::from(n_max_bw))),
        ("invariant_violations", json::uint(violations)),
    ]);
    cli::write_json_doc(args.json.as_deref(), Some("BENCH_transport.json"), &doc);
    cli::write_metrics(args.metrics.as_deref(), &metrics);

    if violations > 0 {
        eprintln!("FAIL: {violations} invariant violation(s)");
        std::process::exit(1);
    }
    if !within {
        eprintln!(
            "FAIL: measured egress off by {:.1}% (> {tolerance_pct}%)",
            rel_err * 1e2
        );
        std::process::exit(1);
    }
    println!("netdemo OK: wire-level egress matches Eq. (1) within {tolerance_pct}%");
}
