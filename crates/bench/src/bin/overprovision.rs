//! Overprovisioning vs model-driven management — the paper's motivation,
//! quantified: "the automatic load balancing at runtime based on our
//! prediction model is a promising alternative to the current practice of
//! overprovisioning computing resources [...] permanent and static
//! overprovisioning of computing resources is not efficient and makes it
//! difficult for small companies to enter the market" (§VI).
//!
//! Runs the §V-B session three ways: statically provisioned for the peak
//! (what a cautious provider does), statically provisioned for the average
//! (what a cheap provider does), and managed by the model-driven RTF-RMS.
//!
//! Usage: `overprovision [--seed N] [--ticks N] [--json PATH]`.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_sim::{drive, run_session, Cluster, ClusterConfig, PaperSession, SessionConfig};
use rtf_rms::{ModelDriven, ModelDrivenConfig};

fn main() {
    let args = cli::parse();
    let (_cal, model) = calibrated_model(&default_campaign());
    let workload = PaperSession::default(); // peak 300, 5 minutes
    let ticks = args
        .ticks
        .unwrap_or_else(|| (workload.duration_secs() / 0.040).ceil() as u64);

    // How many servers does the peak need? Provision like a cautious
    // provider: the peak must sit below the 80 % comfort line (the same
    // headroom RTF-RMS keeps), so solve trigger(l) >= peak.
    let limit = model.max_replicas(0);
    let servers_for = |users: u32| {
        limit
            .capacity_per_replica
            .iter()
            .position(|&cap| (cap as f64 * 0.8) as u32 >= users)
            .map(|i| i as u32 + 1)
            .unwrap_or(limit.l_max)
    };
    let peak_servers = servers_for(300);
    let avg_servers = servers_for(150); // the session's mean population

    // Static provisioning runs: fixed servers, no controller.
    let mut static_runs = Vec::new();
    for (label, servers) in [("static@peak", peak_servers), ("static@avg", avg_servers)] {
        let cluster_config = ClusterConfig {
            seed: args.seed.unwrap_or(42),
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(cluster_config, servers.max(1));
        for _ in 0..ticks {
            drive(&mut cluster, &workload, 0.040, 2);
            cluster.step();
        }
        static_runs.push((label, servers, cluster.violations(), cluster.total_cost()));
    }

    // Managed run.
    let config = SessionConfig {
        ticks,
        max_churn_per_tick: 2,
        cluster: ClusterConfig {
            seed: args.seed.unwrap_or(42),
            ..ClusterConfig::default()
        },
        ..SessionConfig::default()
    };
    let policy = Box::new(ModelDriven::new(model, ModelDrivenConfig::default()));
    let managed = run_session(config, policy, &workload);

    println!("=== Overprovisioning vs RTF-RMS on the §V-B session (peak 300 users) ===\n");
    println!(
        "{:<14} {:>8} {:>11} {:>10} {:>14}",
        "strategy", "servers", "violations", "cost", "cost_vs_managed"
    );
    for (label, servers, violations, cost) in &static_runs {
        println!(
            "{:<14} {:>8} {:>11} {:>10.3} {:>13.1}x",
            label,
            servers,
            violations,
            cost,
            cost / managed.total_cost
        );
    }
    println!(
        "{:<14} {:>8} {:>11} {:>10.3} {:>13.1}x",
        "model-driven",
        format!("1..{}", managed.peak_servers),
        managed.violations,
        managed.total_cost,
        1.0
    );
    println!();
    println!(
        "static@peak never violates but pays {:.0} % more than the managed run;",
        (static_runs[0].3 / managed.total_cost - 1.0) * 100.0
    );
    println!("static@avg is cheaper but violates whenever the crowd exceeds its fixed");
    println!("capacity. The model-driven controller gets the best of both.");

    let mut rows: Vec<String> = static_runs
        .iter()
        .map(|(label, servers, violations, cost)| {
            json::object(&[
                ("strategy", json::string(label)),
                ("servers", json::uint(*servers as u64)),
                ("violations", json::uint(*violations)),
                ("total_cost", json::num(*cost)),
                ("cost_vs_managed", json::num(cost / managed.total_cost)),
            ])
        })
        .collect();
    rows.push(json::object(&[
        ("strategy", json::string("model-driven")),
        ("servers", json::uint(managed.peak_servers as u64)),
        ("violations", json::uint(managed.violations)),
        ("total_cost", json::num(managed.total_cost)),
        ("cost_vs_managed", json::num(1.0)),
    ]));
    let doc = json::object(&[
        ("experiment", json::string("overprovision")),
        ("seed", json::uint(args.seed.unwrap_or(42))),
        ("strategies", json::array(&rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
