//! Policy comparison — the §IV/§VI argument, quantified.
//!
//! Runs the same §V-B session (ramp to 300 users and back) under all four
//! load-balancing policies and prints a comparison table: threshold
//! violations, migration volume, scaling actions and cloud cost. The
//! paper's qualitative claims to check:
//!
//! * the static-interval strategy ("initial RTF-RMS") migrates far more and
//!   pays for it with violations,
//! * static user-count thresholds (Duong & Zhou) ignore the actual
//!   workload,
//! * the model-driven policy keeps the tick duration under U throughout.

//!
//! Usage: `policy_compare [--seed N] [--ticks N] [--json PATH]` — the
//! seed and length apply identically to every arm so the comparison
//! stays paired.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_sim::{run_session, ClusterConfig, PaperSession, SessionConfig, SessionReport};
use rtf_rms::{
    BandwidthProportional, ModelDriven, ModelDrivenConfig, Policy, StaticInterval, StaticThreshold,
};

fn session(policy: Box<dyn Policy>, args: &cli::CommonArgs) -> SessionReport {
    let workload = PaperSession::default();
    let ticks = args
        .ticks
        .unwrap_or_else(|| (workload.duration_secs() / 0.040).ceil() as u64);
    let config = SessionConfig {
        ticks,
        max_churn_per_tick: 2,
        cluster: ClusterConfig {
            seed: args.seed.unwrap_or(42),
            ..ClusterConfig::default()
        },
        ..SessionConfig::default()
    };
    run_session(config, policy, &workload)
}

fn main() {
    let args = cli::parse();
    let (_cal, model) = calibrated_model(&default_campaign());
    let n1 = model.max_users(1, 0);

    let reports: Vec<SessionReport> = vec![
        session(
            Box::new(ModelDriven::new(
                model.clone(),
                ModelDrivenConfig::default(),
            )),
            &args,
        ),
        session(Box::new(StaticInterval::new(1, n1)), &args),
        session(Box::new(StaticThreshold::new(n1)), &args),
        session(Box::new(BandwidthProportional::new(2, n1)), &args),
    ];

    println!("=== Policy comparison on the §V-B session (peak 300 users, 5 min) ===\n");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "policy",
        "violations",
        "viol_rate%",
        "migrations",
        "adds",
        "removes",
        "subst",
        "peak_srv",
        "cost"
    );
    for r in &reports {
        println!(
            "{:<24} {:>10} {:>10.2} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10.3}",
            r.policy,
            r.violations,
            r.violation_rate() * 100.0,
            r.migrations,
            r.replicas_added,
            r.replicas_removed,
            r.substitutions,
            r.peak_servers,
            r.total_cost
        );
    }

    let model_driven = &reports[0];
    let static_interval = &reports[1];
    println!();
    println!(
        "model-driven migrates {}x fewer users than the static-interval baseline ({} vs {})",
        if model_driven.migrations > 0 {
            static_interval.migrations / model_driven.migrations.max(1)
        } else {
            static_interval.migrations
        },
        model_driven.migrations,
        static_interval.migrations
    );
    println!(
        "model-driven violations: {} (paper: none during the managed session)",
        model_driven.violations
    );

    let rows: Vec<String> = reports
        .iter()
        .map(|r| {
            json::object(&[
                ("policy", json::string(r.policy)),
                ("violations", json::uint(r.violations)),
                ("violation_rate", json::num(r.violation_rate())),
                ("migrations", json::uint(r.migrations)),
                ("replicas_added", json::uint(r.replicas_added as u64)),
                ("replicas_removed", json::uint(r.replicas_removed as u64)),
                ("substitutions", json::uint(r.substitutions as u64)),
                ("peak_servers", json::uint(r.peak_servers as u64)),
                ("total_cost", json::num(r.total_cost)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("policy_compare")),
        ("seed", json::uint(args.seed.unwrap_or(42))),
        ("policies", json::array(&rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
