//! Recalibration study — static vs online calibration under a regime
//! shift.
//!
//! Runs the same drifting-workload session twice with identical seeds: a
//! population ramp that holds while, mid-session, the workload regime
//! shifts (attack frequency doubles, an NPC surge lands). The *frozen*
//! arm keeps the offline §V-A calibration for the whole session; the
//! *online* arm streams tick records into an `roia-autocal` calibrator
//! whose versioned registry the model-driven policy consults live.
//! Prints the prediction-error-over-time comparison and writes the
//! machine-readable summary to `BENCH_recalibration.json`.
//!
//! Usage: `recalibration [--seed N] [--ticks N] [--shift-tick N]
//! [--npcs N] [--users N] [--json PATH] [--trace PATH] [--metrics PATH]`
//! — trace/metrics capture the *online* arm's session.

use roia_autocal::CalibratorConfig;
use roia_bench::{calibrated_model, cli, default_campaign, json, U_THRESHOLD};
use roia_sim::{
    run_drift_session, table, CalibrationMode, DriftReport, DriftSessionConfig, Ramp, RegimeShift,
    Series,
};

struct Args {
    common: cli::CommonArgs,
    seed: u64,
    ticks: u64,
    shift_tick: u64,
    npcs: u32,
    users: u32,
}

fn parse_args() -> Args {
    let mut shift_tick = 3_000u64;
    let mut npcs = 150u32;
    let mut users = 200u32;
    let common = cli::parse_with(|flag, value| {
        let number = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} needs a numeric value"))
        };
        match flag {
            "--shift-tick" => shift_tick = number("--shift-tick", value("--shift-tick")),
            "--npcs" => npcs = number("--npcs", value("--npcs")) as u32,
            "--users" => users = number("--users", value("--users")) as u32,
            _ => return false,
        }
        true
    });
    let args = Args {
        seed: common.seed.unwrap_or(42),
        ticks: common.ticks.unwrap_or(7_500),
        shift_tick,
        npcs,
        users,
        common,
    };
    assert!(
        args.shift_tick < args.ticks,
        "the shift must land inside the session"
    );
    args
}

fn arm_summary(label: &str, report: &DriftReport, shift: u64, settle: u64) -> String {
    json::object(&[
        ("mode", json::string(label)),
        (
            "mean_err_pre_shift",
            json::num(report.mean_prediction_error(0, shift)),
        ),
        (
            "mean_err_post_shift",
            json::num(report.mean_prediction_error(shift + settle, u64::MAX)),
        ),
        (
            "max_tick_post_shift_ms",
            json::num(report.max_tick_from(shift + settle) * 1e3),
        ),
        ("violations", json::num(report.violations as f64)),
        (
            "final_model_version",
            json::num(report.final_model_version as f64),
        ),
        (
            "published_refits",
            json::num(report.published_refits() as f64),
        ),
        ("peak_servers", json::num(report.peak_servers as f64)),
        ("total_cost", json::num(report.total_cost)),
    ])
}

fn main() {
    let args = parse_args();
    let (_cal, model) = calibrated_model(&default_campaign());
    println!(
        "seed model: n_max(1) = {}, trigger = {}\n",
        model.max_users(1, 0),
        model.replication_trigger(1, 0)
    );

    let workload = Ramp {
        from: 0,
        to: args.users,
        duration_secs: 60.0,
    };
    let shift = RegimeShift::attack_surge(args.shift_tick, args.npcs);
    let make_config = |mode: CalibrationMode| {
        let mut config = DriftSessionConfig::new(model.clone(), shift, mode);
        config.ticks = args.ticks;
        config.cluster.seed = args.seed;
        config
    };

    println!("running frozen arm ({} ticks)...", args.ticks);
    let frozen = run_drift_session(make_config(CalibrationMode::Frozen), &workload);
    println!("running online arm ({} ticks)...", args.ticks);
    let mut online_config = make_config(CalibrationMode::Online(CalibratorConfig::default()));
    online_config.tracer = cli::tracer(args.common.trace.as_deref());
    let online = run_drift_session(online_config, &workload);
    if let Some(path) = &args.common.trace {
        println!("wrote {}", path.display());
    }
    cli::write_metrics(args.common.metrics.as_deref(), &online.metrics);

    // Prediction error over time, averaged per ~10 s bucket.
    let bucket = 250usize;
    let mut frozen_err = Series::new("frozen_err_%");
    let mut online_err = Series::new("online_err_%");
    let mut version = Series::new("model_version");
    let buckets = (args.ticks as usize).div_ceil(bucket);
    let mut series_rows: Vec<String> = Vec::new();
    for b in 0..buckets {
        let lo = (b * bucket) as u64;
        let hi = lo + bucket as u64;
        let t = lo as f64 * 0.040;
        let fe = frozen.mean_prediction_error(lo, hi);
        let oe = online.mean_prediction_error(lo, hi);
        let ver = online
            .history
            .iter()
            .filter(|h| h.tick >= lo && h.tick < hi)
            .map(|h| h.model_version)
            .max()
            .unwrap_or(0);
        frozen_err.push(t, fe * 100.0);
        online_err.push(t, oe * 100.0);
        version.push(t, ver as f64);
        series_rows.push(json::object(&[
            ("tick", json::num(lo as f64)),
            ("t_secs", json::num(t)),
            ("frozen_err", json::num(fe)),
            ("online_err", json::num(oe)),
            ("online_version", json::num(ver as f64)),
        ]));
    }

    println!("\n=== prediction error over time (relative, %) ===\n");
    println!("{}", table("t_secs", &[&frozen_err, &online_err, &version]));
    println!(
        "(regime shift at t = {:.0} s: attack frequency x2, {} NPCs spawn, costs x1.5)\n",
        args.shift_tick as f64 * 0.040,
        args.npcs
    );

    let settle = 500u64; // 20 s for refits/boots to land before judging
    for (label, report) in [("frozen", &frozen), ("online", &online)] {
        println!(
            "{label:>7}: err pre {:.1} % -> post {:.1} %, worst post-shift tick {:.2} ms, \
             violations {}, refits published {}, final version {}",
            report.mean_prediction_error(0, args.shift_tick) * 100.0,
            report.mean_prediction_error(args.shift_tick + settle, u64::MAX) * 100.0,
            report.max_tick_from(args.shift_tick + settle) * 1e3,
            report.violations,
            report.published_refits(),
            report.final_model_version
        );
    }
    println!(
        "\nthe online arm's controller {} the {:.0} ms threshold after the shift",
        if online.max_tick_from(args.shift_tick + settle) <= U_THRESHOLD {
            "held"
        } else {
            "VIOLATED"
        },
        U_THRESHOLD * 1e3
    );

    let doc = json::object(&[
        ("experiment", json::string("recalibration")),
        ("seed", json::num(args.seed as f64)),
        ("ticks", json::num(args.ticks as f64)),
        ("shift_tick", json::num(args.shift_tick as f64)),
        ("npcs_after", json::num(args.npcs as f64)),
        ("users", json::num(args.users as f64)),
        ("u_threshold_ms", json::num(U_THRESHOLD * 1e3)),
        ("settle_ticks", json::num(settle as f64)),
        (
            "arms",
            json::array(&[
                arm_summary("frozen", &frozen, args.shift_tick, settle),
                arm_summary("online", &online, args.shift_tick, settle),
            ]),
        ),
        ("series", json::array(&series_rows)),
    ]);
    cli::write_json_doc(
        args.common.json.as_deref(),
        Some("BENCH_recalibration.json"),
        &doc,
    );
}
