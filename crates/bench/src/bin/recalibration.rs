//! Recalibration study — static vs online calibration under a regime
//! shift.
//!
//! Runs the same drifting-workload session twice with identical seeds: a
//! population ramp that holds while, mid-session, the workload regime
//! shifts (attack frequency doubles, an NPC surge lands). The *frozen*
//! arm keeps the offline §V-A calibration for the whole session; the
//! *online* arm streams tick records into an `roia-autocal` calibrator
//! whose versioned registry the model-driven policy consults live.
//! Prints the prediction-error-over-time comparison and writes the
//! machine-readable summary to `BENCH_recalibration.json`.
//!
//! Usage: `recalibration [--seed N] [--ticks N] [--shift-tick N]
//! [--npcs N] [--users N]`

use roia_autocal::CalibratorConfig;
use roia_bench::{calibrated_model, default_campaign, json, U_THRESHOLD};
use roia_sim::{
    run_drift_session, table, CalibrationMode, DriftReport, DriftSessionConfig, Ramp, RegimeShift,
    Series,
};

struct Args {
    seed: u64,
    ticks: u64,
    shift_tick: u64,
    npcs: u32,
    users: u32,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        ticks: 7_500,
        shift_tick: 3_000,
        npcs: 150,
        users: 200,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed"),
            "--ticks" => args.ticks = value("--ticks"),
            "--shift-tick" => args.shift_tick = value("--shift-tick"),
            "--npcs" => args.npcs = value("--npcs") as u32,
            "--users" => args.users = value("--users") as u32,
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        args.shift_tick < args.ticks,
        "the shift must land inside the session"
    );
    args
}

fn arm_summary(label: &str, report: &DriftReport, shift: u64, settle: u64) -> String {
    json::object(&[
        ("mode", json::string(label)),
        (
            "mean_err_pre_shift",
            json::num(report.mean_prediction_error(0, shift)),
        ),
        (
            "mean_err_post_shift",
            json::num(report.mean_prediction_error(shift + settle, u64::MAX)),
        ),
        (
            "max_tick_post_shift_ms",
            json::num(report.max_tick_from(shift + settle) * 1e3),
        ),
        ("violations", json::num(report.violations as f64)),
        (
            "final_model_version",
            json::num(report.final_model_version as f64),
        ),
        (
            "published_refits",
            json::num(report.published_refits() as f64),
        ),
        ("peak_servers", json::num(report.peak_servers as f64)),
        ("total_cost", json::num(report.total_cost)),
    ])
}

fn main() {
    let args = parse_args();
    let (_cal, model) = calibrated_model(&default_campaign());
    println!(
        "seed model: n_max(1) = {}, trigger = {}\n",
        model.max_users(1, 0),
        model.replication_trigger(1, 0)
    );

    let workload = Ramp {
        from: 0,
        to: args.users,
        duration_secs: 60.0,
    };
    let shift = RegimeShift::attack_surge(args.shift_tick, args.npcs);
    let make_config = |mode: CalibrationMode| {
        let mut config = DriftSessionConfig::new(model.clone(), shift, mode);
        config.ticks = args.ticks;
        config.cluster.seed = args.seed;
        config
    };

    println!("running frozen arm ({} ticks)...", args.ticks);
    let frozen = run_drift_session(make_config(CalibrationMode::Frozen), &workload);
    println!("running online arm ({} ticks)...", args.ticks);
    let online = run_drift_session(
        make_config(CalibrationMode::Online(CalibratorConfig::default())),
        &workload,
    );

    // Prediction error over time, averaged per ~10 s bucket.
    let bucket = 250usize;
    let mut frozen_err = Series::new("frozen_err_%");
    let mut online_err = Series::new("online_err_%");
    let mut version = Series::new("model_version");
    let buckets = (args.ticks as usize).div_ceil(bucket);
    let mut series_rows: Vec<String> = Vec::new();
    for b in 0..buckets {
        let lo = (b * bucket) as u64;
        let hi = lo + bucket as u64;
        let t = lo as f64 * 0.040;
        let fe = frozen.mean_prediction_error(lo, hi);
        let oe = online.mean_prediction_error(lo, hi);
        let ver = online
            .history
            .iter()
            .filter(|h| h.tick >= lo && h.tick < hi)
            .map(|h| h.model_version)
            .max()
            .unwrap_or(0);
        frozen_err.push(t, fe * 100.0);
        online_err.push(t, oe * 100.0);
        version.push(t, ver as f64);
        series_rows.push(json::object(&[
            ("tick", json::num(lo as f64)),
            ("t_secs", json::num(t)),
            ("frozen_err", json::num(fe)),
            ("online_err", json::num(oe)),
            ("online_version", json::num(ver as f64)),
        ]));
    }

    println!("\n=== prediction error over time (relative, %) ===\n");
    println!("{}", table("t_secs", &[&frozen_err, &online_err, &version]));
    println!(
        "(regime shift at t = {:.0} s: attack frequency x2, {} NPCs spawn, costs x1.5)\n",
        args.shift_tick as f64 * 0.040,
        args.npcs
    );

    let settle = 500u64; // 20 s for refits/boots to land before judging
    for (label, report) in [("frozen", &frozen), ("online", &online)] {
        println!(
            "{label:>7}: err pre {:.1} % -> post {:.1} %, worst post-shift tick {:.2} ms, \
             violations {}, refits published {}, final version {}",
            report.mean_prediction_error(0, args.shift_tick) * 100.0,
            report.mean_prediction_error(args.shift_tick + settle, u64::MAX) * 100.0,
            report.max_tick_from(args.shift_tick + settle) * 1e3,
            report.violations,
            report.published_refits(),
            report.final_model_version
        );
    }
    println!(
        "\nthe online arm's controller {} the {:.0} ms threshold after the shift",
        if online.max_tick_from(args.shift_tick + settle) <= U_THRESHOLD {
            "held"
        } else {
            "VIOLATED"
        },
        U_THRESHOLD * 1e3
    );

    let doc = json::object(&[
        ("experiment", json::string("recalibration")),
        ("seed", json::num(args.seed as f64)),
        ("ticks", json::num(args.ticks as f64)),
        ("shift_tick", json::num(args.shift_tick as f64)),
        ("npcs_after", json::num(args.npcs as f64)),
        ("users", json::num(args.users as f64)),
        ("u_threshold_ms", json::num(U_THRESHOLD * 1e3)),
        ("settle_ticks", json::num(settle as f64)),
        (
            "arms",
            json::array(&[
                arm_summary("frozen", &frozen, args.shift_tick, settle),
                arm_summary("online", &online, args.shift_tick, settle),
            ]),
        ),
        ("series", json::array(&series_rows)),
    ]);
    std::fs::write("BENCH_recalibration.json", doc + "\n").expect("write BENCH_recalibration.json");
    println!("wrote BENCH_recalibration.json");
}
