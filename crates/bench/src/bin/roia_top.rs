//! `roia-top` — live operations console for a running (or recorded)
//! deployment.
//!
//! Tails the JSONL telemetry trace a session writes (`chaos_session
//! --trace`, `fig8 --trace`, any `Tracer::jsonl` sink) and renders a
//! terminal dashboard: tick-latency percentiles against the paper's `U`
//! budget, per-server load, degraded-mode and join-queue state, SLO
//! burn-rate gauges (the trace's own `slo_burn` events *and* an
//! independent replay of the standard objectives over the observed tick
//! spans), and per-term attribution bars showing which Eq. (1) task the
//! time actually went to.
//!
//! Usage:
//!   roia-top TRACE.jsonl                  one-shot render of the trace
//!   roia-top TRACE.jsonl --follow         live: poll for appended lines
//!   roia-top TRACE.jsonl --headless --snapshot OUT.json
//!                                         no TTY output; write a
//!                                         deterministic JSON snapshot
//!   --u-ms MS       tick budget U in milliseconds (default 40)
//!   --refresh MS    redraw interval under --follow (default 500)
//!
//! The snapshot is byte-deterministic for a given trace file, so CI can
//! gate on it (see the `obs-console-smoke` job).

use roia_obs::export::{self, JsonValue};
use roia_obs::slo::{SLO_INVARIANTS, SLO_JOIN_SHED, SLO_TICK_BUDGET, SLO_TICK_P99};
use roia_obs::{Histogram, SloEngine, TraceEvent, TERM_COUNT, TERM_SYMBOLS};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Read, Seek, Write};

const USAGE: &str = "usage: roia-top TRACE.jsonl [--follow] [--headless] \
[--snapshot OUT.json] [--u-ms MS] [--refresh MS]";

/// Task slots in a `TickSpan` (`TaskKind::ALL` order: the nine modeled
/// terms, then `t_other`).
const TASK_SLOTS: usize = 10;

/// One sim tick's worth of spans, closed once a later tick appears.
#[derive(Default)]
struct TickFeed {
    spans: u64,
    over_budget: u64,
    near_budget: u64,
    users: u64,
    shed: u64,
    throttles: u64,
}

struct ServerStat {
    hist: Histogram,
    last_ms: f64,
    active_users: u32,
    last_tick: u64,
    alive: bool,
}

/// The console's whole state; fed events one at a time, renders from
/// aggregates only (the trace itself is never retained).
struct Top {
    u_threshold: f64,
    slo: SloEngine,
    servers: BTreeMap<u32, ServerStat>,
    pending: BTreeMap<u64, TickFeed>,
    fed_ticks: u64,
    spans: u64,
    events: u64,
    malformed: u64,
    last_tick: u64,
    users: u64,
    worst: Option<(u64, u32, f64)>,
    /// Observed seconds per task slot, summed over every span.
    task_seconds: [f64; TASK_SLOTS],
    duration_seconds: f64,
    degraded: bool,
    degraded_since: u64,
    queued: u64,
    congested_peers: BTreeSet<u64>,
    trace_burns: u64,
    trace_recoveries: u64,
    postmortems: u64,
    replay_burns: BTreeMap<&'static str, u64>,
    replay_recoveries: u64,
    recent: Vec<String>,
}

impl Top {
    fn new(u_threshold: f64) -> Self {
        Self {
            u_threshold,
            slo: SloEngine::standard(),
            servers: BTreeMap::new(),
            pending: BTreeMap::new(),
            fed_ticks: 0,
            spans: 0,
            events: 0,
            malformed: 0,
            last_tick: 0,
            users: 0,
            worst: None,
            task_seconds: [0.0; TASK_SLOTS],
            duration_seconds: 0.0,
            degraded: false,
            degraded_since: 0,
            queued: 0,
            congested_peers: BTreeSet::new(),
            trace_burns: 0,
            trace_recoveries: 0,
            postmortems: 0,
            replay_burns: BTreeMap::new(),
            replay_recoveries: 0,
            recent: Vec::new(),
        }
    }

    fn note(&mut self, line: String) {
        self.recent.push(line);
        if self.recent.len() > 8 {
            self.recent.remove(0);
        }
    }

    fn ingest_line(&mut self, line: &str) {
        if line.trim().is_empty() {
            return;
        }
        let Some(ev) = TraceEvent::from_json(line) else {
            self.malformed += 1;
            return;
        };
        self.events += 1;
        let tick = ev.tick();
        self.last_tick = self.last_tick.max(tick);
        // Close every pending sim tick strictly before this event's: the
        // stream is emitted in tick order, so an event at T means ticks
        // < T are complete and can feed the SLO replay.
        let done: Vec<u64> = self.pending.range(..tick).map(|(t, _)| *t).collect();
        for t in done {
            if let Some(feed) = self.pending.remove(&t) {
                self.feed_slo(t, &feed);
            }
        }
        match ev {
            TraceEvent::TickSpan {
                tick,
                server,
                duration_s,
                per_task,
                active_users,
                ..
            } => {
                self.spans += 1;
                self.duration_seconds += duration_s;
                for (slot, s) in per_task.iter().enumerate() {
                    self.task_seconds[slot] += s;
                }
                let stat = self.servers.entry(server).or_insert_with(|| ServerStat {
                    hist: Histogram::new(),
                    last_ms: 0.0,
                    active_users: 0,
                    last_tick: 0,
                    alive: true,
                });
                stat.hist.record(roia_obs::secs_to_micros(duration_s));
                stat.last_ms = duration_s * 1e3;
                stat.active_users = active_users;
                stat.last_tick = tick;
                stat.alive = true;
                if self.worst.is_none_or(|(_, _, d)| duration_s > d) {
                    self.worst = Some((tick, server, duration_s));
                }
                let feed = self.pending.entry(tick).or_default();
                feed.spans += 1;
                feed.users += u64::from(active_users);
                if duration_s >= self.u_threshold {
                    feed.over_budget += 1;
                }
                if duration_s >= 0.9 * self.u_threshold {
                    feed.near_budget += 1;
                }
            }
            TraceEvent::ServerCrashed { tick, server } => {
                if let Some(stat) = self.servers.get_mut(&server) {
                    stat.alive = false;
                }
                self.note(format!("t={tick} server s{server} CRASHED"));
            }
            TraceEvent::ServerRemoved { tick, server } => {
                if let Some(stat) = self.servers.get_mut(&server) {
                    stat.alive = false;
                }
                self.note(format!("t={tick} server s{server} removed"));
            }
            TraceEvent::ServerBooted { tick, server, .. } => {
                self.note(format!("t={tick} server s{server} booted"));
            }
            TraceEvent::DegradedEnter { tick, reason, .. } => {
                self.degraded = true;
                self.degraded_since = tick;
                self.note(format!("t={tick} DEGRADED enter ({reason})"));
            }
            TraceEvent::DegradedExit {
                tick, queued, shed, ..
            } => {
                self.degraded = false;
                self.note(format!(
                    "t={tick} degraded exit ({queued} queued, {shed} shed)"
                ));
            }
            TraceEvent::JoinThrottled { tick, verdict, .. } => {
                let feed = self.pending.entry(tick).or_default();
                feed.throttles += 1;
                match verdict {
                    "shed" => feed.shed += 1,
                    "queue" => self.queued += 1,
                    _ => {}
                }
            }
            TraceEvent::Backpressure { peer, state, .. } => {
                if state == "onset" {
                    self.congested_peers.insert(peer);
                } else {
                    self.congested_peers.remove(&peer);
                }
            }
            TraceEvent::SloBurn {
                tick,
                slo,
                severity,
                ..
            } => {
                self.trace_burns += 1;
                self.note(format!("t={tick} SLO BURN {slo} [{severity}]"));
            }
            TraceEvent::SloRecovered { tick, slo, .. } => {
                self.trace_recoveries += 1;
                self.note(format!("t={tick} slo recovered {slo}"));
            }
            TraceEvent::PostmortemDumped {
                tick, reason, seq, ..
            } => {
                self.postmortems += 1;
                self.note(format!("t={tick} POSTMORTEM #{seq} ({reason})"));
            }
            TraceEvent::FaultInjected { tick, fault, .. } => {
                self.note(format!("t={tick} FAULT {fault}"));
            }
            _ => {}
        }
    }

    /// Feeds one completed sim tick into the replayed SLO engine.
    fn feed_slo(&mut self, tick: u64, feed: &TickFeed) {
        self.fed_ticks += 1;
        self.slo
            .observe(SLO_TICK_BUDGET, feed.over_budget, feed.spans);
        self.slo.observe(SLO_TICK_P99, feed.near_budget, feed.spans);
        self.slo.observe(SLO_INVARIANTS, 0, 1);
        self.slo.observe(SLO_JOIN_SHED, feed.shed, feed.throttles);
        if feed.spans > 0 {
            self.users = feed.users;
        }
        for transition in self.slo.end_tick(tick) {
            match transition {
                roia_obs::SloTransition::Burn { slo, .. } => {
                    *self.replay_burns.entry(slo).or_insert(0) += 1;
                }
                roia_obs::SloTransition::Recovered { .. } => {
                    self.replay_recoveries += 1;
                }
            }
        }
    }

    /// Closes every still-pending tick (end of trace in one-shot mode).
    fn finish(&mut self) {
        let done: Vec<u64> = self.pending.keys().copied().collect();
        for t in done {
            if let Some(feed) = self.pending.remove(&t) {
                self.feed_slo(t, &feed);
            }
        }
    }

    /// All servers' latency histograms merged (the whole-deployment view).
    fn merged_hist(&self) -> Histogram {
        let mut merged = Histogram::new();
        for stat in self.servers.values() {
            merged.merge(&stat.hist);
        }
        merged
    }

    /// Fraction of total tick time the task slots account for (should be
    /// ~1.0: `TickSpan.per_task` partitions `duration_s`).
    fn coverage(&self) -> f64 {
        if self.duration_seconds <= 0.0 {
            return 1.0;
        }
        self.task_seconds.iter().sum::<f64>() / self.duration_seconds
    }

    fn render(&self, path: &str) -> String {
        let mut out = String::new();
        let u_ms = self.u_threshold * 1e3;
        let merged = self.merged_hist();
        out.push_str(&format!(
            "roia-top — {path}   tick {} ({:.1}s)   U = {u_ms:.1} ms\n",
            self.last_tick,
            self.last_tick as f64 * 0.040
        ));
        let alive = self.servers.values().filter(|s| s.alive).count();
        out.push_str(&format!(
            "users {}   servers {}   degraded {}   queued joins {}\n\n",
            self.users,
            alive,
            if self.degraded {
                format!("YES (since t={})", self.degraded_since)
            } else {
                "no".to_string()
            },
            self.queued
        ));
        out.push_str(&format!(
            "tick latency   p50 {:>7.2} ms   p99 {:>7.2} ms",
            merged.percentile(0.50) as f64 / 1e3,
            merged.percentile(0.99) as f64 / 1e3,
        ));
        if let Some((t, server, d)) = self.worst {
            out.push_str(&format!("   worst {:.2} ms (s{server} @ t={t})", d * 1e3));
        }
        out.push('\n');
        for (id, stat) in &self.servers {
            if !stat.alive {
                continue;
            }
            out.push_str(&format!(
                "  s{id:<3} {} {:>7.2} ms   a={:<5} p99 {:>7.2} ms\n",
                bar(stat.last_ms / u_ms, 12),
                stat.last_ms,
                stat.active_users,
                stat.hist.percentile(0.99) as f64 / 1e3,
            ));
        }
        out.push_str("\nSLO            fast      slow      state\n");
        for gauge in self.slo.gauges() {
            let state = if gauge.burning { "BURNING" } else { "ok" };
            let burns = self.replay_burns.get(gauge.slo).copied().unwrap_or(0);
            out.push_str(&format!(
                "  {:<20} {:>7.1}x {:>7.1}x  {state} ({burns} burn(s))\n",
                gauge.slo,
                gauge.fast_burn_pm as f64 / 1e3,
                gauge.slow_burn_pm as f64 / 1e3,
            ));
        }
        out.push_str(&format!(
            "\nattribution (coverage {:.1}%)\n",
            self.coverage() * 1e2
        ));
        let total: f64 = self.task_seconds.iter().sum::<f64>().max(1e-12);
        for (slot, seconds) in self.task_seconds.iter().enumerate() {
            let symbol = if slot < TERM_COUNT {
                TERM_SYMBOLS[slot]
            } else {
                "t_other"
            };
            out.push_str(&format!(
                "  {:<10} {} {:>5.1}%  {:.3}s\n",
                symbol,
                bar(seconds / total, 20),
                seconds / total * 1e2,
                seconds
            ));
        }
        out.push_str(&format!(
            "\nevents {}   spans {}   trace burns {}   recoveries {}   postmortems {}\n",
            self.events, self.spans, self.trace_burns, self.trace_recoveries, self.postmortems
        ));
        if !self.recent.is_empty() {
            out.push_str("recent:\n");
            for line in &self.recent {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }

    /// Deterministic JSON snapshot for `--headless --snapshot`.
    fn snapshot(&self, path: &str) -> String {
        let merged = self.merged_hist();
        let slo_rows: Vec<String> = self
            .slo
            .gauges()
            .iter()
            .map(|g| {
                export::object(&[
                    ("slo", export::string(g.slo)),
                    ("fast_burn_pm", export::uint(g.fast_burn_pm)),
                    ("slow_burn_pm", export::uint(g.slow_burn_pm)),
                    (
                        "burning",
                        String::from(if g.burning { "true" } else { "false" }),
                    ),
                    (
                        "burns",
                        export::uint(self.replay_burns.get(g.slo).copied().unwrap_or(0)),
                    ),
                ])
            })
            .collect();
        let total: f64 = self.task_seconds.iter().sum::<f64>().max(1e-12);
        let attrib_rows: Vec<String> = self
            .task_seconds
            .iter()
            .enumerate()
            .map(|(slot, seconds)| {
                let symbol = if slot < TERM_COUNT {
                    TERM_SYMBOLS[slot]
                } else {
                    "t_other"
                };
                export::object(&[
                    ("symbol", export::string(symbol)),
                    ("seconds", export::num(*seconds)),
                    ("share", export::num(*seconds / total)),
                ])
            })
            .collect();
        let (worst_tick, worst_server, worst_s) = self.worst.unwrap_or((0, 0, 0.0));
        export::object(&[
            ("trace", export::string(path)),
            ("events", export::uint(self.events)),
            ("malformed", export::uint(self.malformed)),
            ("spans", export::uint(self.spans)),
            ("ticks", export::uint(self.fed_ticks)),
            ("last_tick", export::uint(self.last_tick)),
            ("u_ms", export::num(self.u_threshold * 1e3)),
            ("users", export::uint(self.users)),
            (
                "servers",
                export::uint(self.servers.values().filter(|s| s.alive).count() as u64),
            ),
            ("p50_us", export::uint(merged.percentile(0.50))),
            ("p99_us", export::uint(merged.percentile(0.99))),
            ("worst_us", export::uint(roia_obs::secs_to_micros(worst_s))),
            ("worst_server", export::uint(u64::from(worst_server))),
            ("worst_tick", export::uint(worst_tick)),
            ("coverage", export::num(self.coverage())),
            ("slo", export::array(&slo_rows)),
            ("attribution", export::array(&attrib_rows)),
            ("trace_burns", export::uint(self.trace_burns)),
            ("trace_recoveries", export::uint(self.trace_recoveries)),
            ("replay_recoveries", export::uint(self.replay_recoveries)),
            ("postmortems", export::uint(self.postmortems)),
            (
                "degraded",
                String::from(if self.degraded { "true" } else { "false" }),
            ),
        ])
    }
}

/// A 0..=1 fill rendered as a fixed-width unicode bar.
fn bar(fraction: f64, width: usize) -> String {
    let clamped = fraction.clamp(0.0, 1.0);
    let filled = (clamped * width as f64).round() as usize;
    let mut out = String::from("▕");
    for i in 0..width {
        out.push(if i < filled { '█' } else { '░' });
    }
    out.push('▏');
    out
}

fn main() {
    let mut path: Option<String> = None;
    let mut follow = false;
    let mut headless = false;
    let mut snapshot_path: Option<String> = None;
    let mut u_ms = 40.0f64;
    let mut refresh_ms = 500u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--follow" => follow = true,
            "--headless" => headless = true,
            "--snapshot" => {
                snapshot_path = Some(it.next().expect("--snapshot needs a path"));
            }
            "--u-ms" => {
                u_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--u-ms needs a numeric value");
            }
            "--refresh" => {
                refresh_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--refresh needs a numeric value");
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if !other.starts_with("--") => path = Some(other.to_string()),
            other => panic!("unknown flag {other}\n{USAGE}"),
        }
    }
    let path = path.unwrap_or_else(|| panic!("no trace given\n{USAGE}"));
    let mut top = Top::new(u_ms / 1e3);

    if follow && !headless {
        follow_loop(&mut top, &path, refresh_ms);
        return;
    }

    let file = std::fs::File::open(&path).unwrap_or_else(|e| panic!("open {path}: {e}"));
    for line in BufReader::new(file).lines() {
        let line = line.unwrap_or_else(|e| panic!("read {path}: {e}"));
        top.ingest_line(&line);
    }
    top.finish();

    if headless {
        let snapshot = top.snapshot(&path);
        match snapshot_path {
            Some(out) => {
                std::fs::write(&out, snapshot.as_bytes())
                    .unwrap_or_else(|e| panic!("write {out}: {e}"));
                eprintln!("snapshot written to {out}");
            }
            None => println!("{snapshot}"),
        }
        // Self-check so CI can gate on the exit code alone.
        let parsed = export::parse_object(&top.snapshot(&path)).expect("snapshot must parse back");
        assert!(
            parsed.contains_key("slo") && parsed.contains_key("attribution"),
            "snapshot missing slo/attribution sections"
        );
        let coverage = parsed
            .get("coverage")
            .and_then(JsonValue::as_f64)
            .expect("snapshot carries coverage");
        assert!(
            (coverage - 1.0).abs() <= 0.01,
            "per-task seconds must match tick durations within 1% (got {coverage})"
        );
    } else {
        print!("{}", top.render(&path));
    }
}

/// Live mode: poll the file for appended lines, redraw on a cadence.
fn follow_loop(top: &mut Top, path: &str, refresh_ms: u64) {
    let mut offset = 0u64;
    let mut carry = String::new();
    loop {
        if let Ok(mut file) = std::fs::File::open(path) {
            let len = file.metadata().map(|m| m.len()).unwrap_or(0);
            if len < offset {
                offset = 0; // truncated/rotated: start over
                *top = Top::new(top.u_threshold);
                carry.clear();
            }
            if len > offset && file.seek(std::io::SeekFrom::Start(offset)).is_ok() {
                let mut chunk = String::new();
                if file.read_to_string(&mut chunk).is_ok() {
                    offset = len;
                    carry.push_str(&chunk);
                    while let Some(nl) = carry.find('\n') {
                        let line: String = carry.drain(..=nl).collect();
                        top.ingest_line(line.trim_end());
                    }
                }
            }
        }
        // ANSI: clear screen, home cursor, render.
        let frame = top.render(path);
        print!("\x1b[2J\x1b[H{frame}");
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps_and_fills() {
        assert_eq!(bar(0.0, 4), "▕░░░░▏");
        assert_eq!(bar(1.0, 4), "▕████▏");
        assert_eq!(bar(2.0, 4), "▕████▏");
        assert_eq!(bar(0.5, 4), "▕██░░▏");
    }

    fn span(tick: u64, server: u32, duration_s: f64) -> TraceEvent {
        let mut per_task = [0.0; TASK_SLOTS];
        per_task[1] = duration_s * 0.6; // t_ua
        per_task[5] = duration_s * 0.4; // t_aoi
        TraceEvent::TickSpan {
            tick,
            server,
            zone: 1,
            duration_s,
            per_task,
            active_users: 10,
            shadow_users: 5,
            npcs: 0,
            migrations_initiated: 0,
            migrations_received: 0,
        }
    }

    #[test]
    fn ingest_builds_state_and_snapshot_parses() {
        let mut top = Top::new(0.040);
        for tick in 0..20u64 {
            top.ingest_line(&span(tick, 1, 0.010).to_json());
            top.ingest_line(&span(tick, 2, 0.050).to_json());
        }
        top.ingest_line(
            &TraceEvent::SloBurn {
                tick: 19,
                cause: 3,
                slo: "tick_budget",
                severity: "page",
                fast_burn_pm: 500_000,
                slow_burn_pm: 2_000,
            }
            .to_json(),
        );
        top.finish();
        assert_eq!(top.spans, 40);
        assert_eq!(top.trace_burns, 1);
        assert_eq!(top.fed_ticks, 20);
        assert!((top.coverage() - 1.0).abs() < 1e-9);
        let snap = top.snapshot("sample");
        let parsed = export::parse_object(&snap).expect("snapshot parses");
        assert!(parsed.contains_key("slo"));
        assert!(parsed.contains_key("attribution"));
        assert_eq!(
            parsed.get("spans").and_then(JsonValue::as_u64),
            Some(40),
            "{snap}"
        );
        // The render path shouldn't panic on live state either.
        assert!(top.render("sample").contains("tick_budget"));
    }
}
