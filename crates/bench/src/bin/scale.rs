//! `scale` — large-session throughput of the parallel deterministic tick
//! engine.
//!
//! Sweeps session size × worker threads (and, at 10 k users, the
//! quadratic-vs-grid interest-management backends) over the same
//! simulated deployment, reporting wall-clock throughput and the trace
//! digest of every run. Because the engine is deterministic by
//! construction, every run of one configuration — any thread count,
//! either AoI backend — must produce the same digest; the digests are in
//! the JSON so CI can assert it.
//!
//! Modes:
//! * sweep (default): users ∈ {1 k, 10 k, 100 k} × threads ∈ {1, N},
//!   writing `BENCH_scale.json`;
//! * single run (`--users N`): one session, digest on stdout — the CI
//!   `perf-smoke` job runs this twice (1 and N threads) and diffs.
//!
//! Flags: `--seed`, `--ticks`, `--json` (shared), plus `--users N`,
//! `--threads N`, `--aoi quad|grid`.
//!
//! The deployment scales with the session: the arena side grows as
//! `1000·√(users/300)` so avatar density (and therefore AoI overlap)
//! matches the paper's 300-user testbed, servers are provisioned at
//! ~2 000 users each, and the per-unit cost rates are scaled down so a
//! server at that occupancy sits below the 40 ms deadline — the virtual
//! capacity model stays exercised without drowning the run in
//! migration churn.

use roia_bench::{cli, json};
use roia_obs::Tracer;
use roia_sim::{Cluster, ClusterConfig};
use rtf_core::entity::Rect;
use rtf_rms::ResourcePool;
use rtfdemo::{AoiBackend, CostRates, World};
use std::time::Instant;

/// Users per provisioned server at session start.
const USERS_PER_SERVER: u64 = 2_000;
/// Headroom factor for the cost-rate scaling: a full server runs at
/// ~1/1.4 ≈ 70 % of the virtual deadline.
const CAPACITY_HEADROOM: f64 = 1.4;

struct RunConfig {
    seed: u64,
    users: u64,
    ticks: u64,
    threads: usize,
    aoi: AoiBackend,
}

struct RunResult {
    users: u64,
    ticks: u64,
    threads: usize,
    aoi: &'static str,
    servers_start: u32,
    servers_end: u32,
    wall_s: f64,
    ticks_per_s: f64,
    user_ticks_per_s: f64,
    violations: u64,
    digest: u64,
    trace_events: u64,
}

fn aoi_name(aoi: AoiBackend) -> &'static str {
    match aoi {
        AoiBackend::Quadratic => "quad",
        AoiBackend::Grid => "grid",
    }
}

fn run_once(rc: &RunConfig) -> RunResult {
    let servers = (rc.users / USERS_PER_SERVER).clamp(1, 48) as u32;
    let per_server = rc.users as f64 / servers as f64;
    // Density-constant arena: same avatars-per-AoI as the 300-user,
    // 1000×1000 testbed.
    let side = 1000.0 * ((rc.users.max(300) as f32) / 300.0).sqrt();
    // Rate scaling: t_aoi is quadratic in per-server occupancy, so
    // dividing every rate by (headroom·n/300)² puts a full server below
    // the deadline by the headroom factor.
    let rate_scale = (300.0 / (CAPACITY_HEADROOM * per_server)).powi(2);
    let config = ClusterConfig {
        seed: rc.seed,
        threads: rc.threads,
        aoi_backend: rc.aoi,
        world: World {
            bounds: Rect::square(side),
            ..World::default()
        },
        rates: CostRates::default().scaled(rate_scale),
        pool: ResourcePool::new(servers * 2, 2, 50, 90_000),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config, servers);
    let (tracer, hasher) = Tracer::hashing();
    cluster.set_tracer(tracer);
    for _ in 0..rc.users {
        cluster
            .add_user()
            .expect("initial servers accept every user");
    }
    let started = Instant::now();
    for _ in 0..rc.ticks {
        cluster.step();
    }
    let wall_s = started.elapsed().as_secs_f64();
    let hasher = hasher.lock().expect("tracer lock");
    RunResult {
        users: rc.users,
        ticks: rc.ticks,
        threads: rc.threads,
        aoi: aoi_name(rc.aoi),
        servers_start: servers,
        servers_end: cluster.server_count(),
        wall_s,
        ticks_per_s: rc.ticks as f64 / wall_s,
        user_ticks_per_s: (rc.users * rc.ticks) as f64 / wall_s,
        violations: cluster.violations(),
        digest: hasher.hash(),
        trace_events: hasher.events(),
    }
}

fn result_json(r: &RunResult) -> String {
    json::object(&[
        ("users", json::uint(r.users)),
        ("ticks", json::uint(r.ticks)),
        ("threads", json::uint(r.threads as u64)),
        ("aoi", json::string(r.aoi)),
        ("servers_start", json::uint(r.servers_start as u64)),
        ("servers_end", json::uint(r.servers_end as u64)),
        ("wall_s", json::num(r.wall_s)),
        ("ticks_per_s", json::num(r.ticks_per_s)),
        ("user_ticks_per_s", json::num(r.user_ticks_per_s)),
        ("violations", json::uint(r.violations)),
        ("trace_digest", json::string(&format!("{:016x}", r.digest))),
        ("trace_events", json::uint(r.trace_events)),
    ])
}

fn print_run(r: &RunResult) {
    println!(
        "users={} threads={} aoi={} ticks={} wall={:.2}s ticks/s={:.2} \
         user·ticks/s={:.0} servers={}→{} digest={:016x}",
        r.users,
        r.threads,
        r.aoi,
        r.ticks,
        r.wall_s,
        r.ticks_per_s,
        r.user_ticks_per_s,
        r.servers_start,
        r.servers_end,
        r.digest,
    );
}

fn main() {
    let mut users: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut aoi: Option<AoiBackend> = None;
    let args = cli::parse_with(|flag, value| match flag {
        "--users" => {
            users = Some(
                value("--users")
                    .parse()
                    .expect("--users needs a numeric value"),
            );
            true
        }
        "--threads" => {
            threads = Some(
                value("--threads")
                    .parse()
                    .expect("--threads needs a numeric value"),
            );
            true
        }
        "--aoi" => {
            aoi = Some(match value("--aoi").as_str() {
                "quad" => AoiBackend::Quadratic,
                "grid" => AoiBackend::Grid,
                other => panic!("--aoi must be quad or grid, got {other}"),
            });
            true
        }
        _ => false,
    });
    let seed = args.seed.unwrap_or(42);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fan_out = threads.unwrap_or_else(|| host_cores.max(4));

    if let Some(users) = users {
        // Single-run mode (CI smoke): one configuration, digest on stdout.
        let rc = RunConfig {
            seed,
            users,
            ticks: args.ticks.unwrap_or(100),
            threads: threads.unwrap_or(1),
            aoi: aoi.unwrap_or(AoiBackend::Grid),
        };
        let r = run_once(&rc);
        print_run(&r);
        let doc = json::object(&[
            ("experiment", json::string("scale")),
            ("mode", json::string("single")),
            ("host_cores", json::uint(host_cores as u64)),
            ("run", result_json(&r)),
        ]);
        cli::write_json_doc(args.json.as_deref(), None, &doc);
        return;
    }

    // Sweep mode: session size × thread count, plus the AoI-backend
    // comparison at 10 k users.
    let mut plan: Vec<RunConfig> = Vec::new();
    for threads in [1, fan_out] {
        plan.push(RunConfig {
            seed,
            users: 1_000,
            ticks: args.ticks.unwrap_or(120),
            threads,
            aoi: AoiBackend::Quadratic,
        });
    }
    for aoi in [AoiBackend::Quadratic, AoiBackend::Grid] {
        for threads in [1, fan_out] {
            plan.push(RunConfig {
                seed,
                users: 10_000,
                ticks: args.ticks.unwrap_or(30),
                threads,
                aoi,
            });
        }
    }
    for threads in [1, fan_out] {
        plan.push(RunConfig {
            seed,
            users: 100_000,
            ticks: args.ticks.unwrap_or(10),
            threads,
            aoi: AoiBackend::Grid,
        });
    }

    let mut results: Vec<RunResult> = Vec::new();
    for rc in &plan {
        let r = run_once(rc);
        print_run(&r);
        results.push(r);
    }

    // Derived headline numbers.
    let find = |users: u64, threads: usize, aoi: &str| {
        results
            .iter()
            .find(|r| r.users == users && r.threads == threads && r.aoi == aoi)
    };
    let speedup = |users: u64, aoi: &str| -> Option<f64> {
        let serial = find(users, 1, aoi)?;
        let fanned = find(users, fan_out, aoi)?;
        Some(serial.wall_s / fanned.wall_s)
    };
    let grid_vs_quad_10k = match (find(10_000, 1, "quad"), find(10_000, 1, "grid")) {
        (Some(q), Some(g)) => Some(q.wall_s / g.wall_s),
        _ => None,
    };
    for (users, aoi) in [(10_000, "quad"), (10_000, "grid"), (100_000, "grid")] {
        if let (Some(serial), Some(fanned)) = (find(users, 1, aoi), find(users, fan_out, aoi)) {
            assert_eq!(
                serial.digest, fanned.digest,
                "serial and {}-thread traces diverged at {} users ({})",
                fan_out, users, aoi
            );
        }
    }

    let runs: Vec<String> = results.iter().map(result_json).collect();
    let doc = json::object(&[
        ("experiment", json::string("scale")),
        ("mode", json::string("sweep")),
        ("seed", json::uint(seed)),
        ("host_cores", json::uint(host_cores as u64)),
        ("fan_out_threads", json::uint(fan_out as u64)),
        ("runs", format!("[{}]", runs.join(", "))),
        (
            "speedup_10k_quad",
            speedup(10_000, "quad").map_or("null".into(), json::num),
        ),
        (
            "speedup_100k_grid",
            speedup(100_000, "grid").map_or("null".into(), json::num),
        ),
        (
            "grid_vs_quad_10k",
            grid_vs_quad_10k.map_or("null".into(), json::num),
        ),
    ]);
    cli::write_json_doc(args.json.as_deref(), Some("BENCH_scale.json"), &doc);
}
