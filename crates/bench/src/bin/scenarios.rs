//! Scenario campaign — the adversarial robustness leaderboard.
//!
//! Runs every scenario in [`roia_sim::catalogue`] (flash crowd, diurnal
//! regime shift, spot revocation wave, replication oscillation) under
//! three policies — the Eq. 1–5 `model-driven` controller, the
//! `simultaneous` vertical+horizontal variant and the `static-threshold`
//! baseline — across several seeds, and scores every (scenario, policy)
//! cell on threshold violations, cloud cost, migration churn, shed and
//! queued joins and tick-duration tail percentiles. Each scenario's
//! model-driven cell is executed twice at the first seed and the run
//! aborts if the telemetry digests differ — adversarial runs must stay
//! exactly as reproducible as calm ones.
//!
//! Build with `--features strict-invariants` to consult the runtime
//! invariant oracle every tick (CI smoke does): a panic here means user
//! conservation or migration safety broke under overload.
//!
//! Usage: `scenarios [--ticks N] [--seed N] [--seeds K] [--json PATH]`
//! — defaults: 7500 ticks (5 min at 25 Hz), 2 seeds, summary written to
//! `BENCH_scenarios.json`.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_model::ScalabilityModel;
use roia_sim::{catalogue, run_scenario, Scenario, ScenarioOutcome};
use rtf_rms::{
    ModelDriven, ModelDrivenConfig, Policy, Simultaneous, SimultaneousConfig, StaticThreshold,
};

/// The policy roster of the campaign.
const POLICIES: &[&str] = &["model-driven", "simultaneous", "static-threshold"];

fn make_policy(name: &str, model: &ScalabilityModel) -> Box<dyn Policy> {
    match name {
        "model-driven" => Box::new(ModelDriven::new(
            model.clone(),
            ModelDrivenConfig::default(),
        )),
        "simultaneous" => Box::new(Simultaneous::new(
            model.clone(),
            SimultaneousConfig::default(),
        )),
        "static-threshold" => Box::new(StaticThreshold::new(model.max_users(1, 0))),
        other => panic!("unknown policy {other}"),
    }
}

fn outcome_doc(o: &ScenarioOutcome) -> String {
    json::object(&[
        ("scenario", json::string(o.scenario)),
        ("policy", json::string(o.policy)),
        ("seed", json::uint(o.seed)),
        ("ticks", json::uint(o.ticks)),
        ("violations", json::uint(o.violations)),
        ("violation_rate", json::num(o.violation_rate)),
        ("total_cost", json::num(o.total_cost)),
        ("migrations", json::uint(o.migrations)),
        ("shed", json::uint(o.shed)),
        ("queued", json::uint(o.queued)),
        ("degraded_entries", json::uint(o.degraded_entries)),
        ("degraded_ticks", json::uint(o.degraded_ticks)),
        ("p99_tick_us", json::uint(o.p99_tick_us)),
        ("p999_tick_us", json::uint(o.p999_tick_us)),
        ("peak_servers", json::uint(o.peak_servers as u64)),
        ("final_users", json::uint(o.final_users as u64)),
        ("final_queued", json::uint(o.final_queued as u64)),
        ("score", json::num(o.score())),
        ("trace_hash", json::uint(o.trace_hash)),
        ("trace_events", json::uint(o.trace_events)),
    ])
}

fn main() {
    let mut seeds_flag: Option<u64> = None;
    let args = cli::parse_with(|flag, value| match flag {
        "--seeds" => {
            seeds_flag = Some(
                value("--seeds")
                    .parse()
                    .expect("--seeds needs a numeric value"),
            );
            true
        }
        _ => false,
    });
    let ticks = args.ticks.unwrap_or(7500);
    let base_seed = args.seed.unwrap_or(0x5CE4);
    let seed_count = seeds_flag.unwrap_or(2).max(1);

    let (_cal, model) = calibrated_model(&default_campaign());
    let scenarios: Vec<Scenario> = catalogue(ticks);

    println!(
        "=== scenario campaign: {} scenarios x {} policies x {} seed(s), {} ticks ===\n",
        scenarios.len(),
        POLICIES.len(),
        seed_count,
        ticks
    );

    let mut cell_docs: Vec<String> = Vec::new();
    let mut leaderboard_docs: Vec<String> = Vec::new();

    for scenario in &scenarios {
        println!("--- {} ---", scenario.name);
        println!("    {}", scenario.summary);

        // Rerun-stability gate: the same cell twice must hash identically.
        let probe_a = run_scenario(scenario, make_policy(POLICIES[0], &model), base_seed);
        let probe_b = run_scenario(scenario, make_policy(POLICIES[0], &model), base_seed);
        assert_eq!(
            (probe_a.trace_hash, probe_a.trace_events),
            (probe_b.trace_hash, probe_b.trace_events),
            "{}: rerun at seed {base_seed} diverged — determinism broke",
            scenario.name
        );

        // (policy, per-seed outcomes, mean score)
        let mut rows: Vec<(&str, Vec<ScenarioOutcome>, f64)> = Vec::new();
        for policy_name in POLICIES {
            let mut outcomes = Vec::new();
            for k in 0..seed_count {
                let seed = base_seed.wrapping_add(k);
                // Reuse the probe run instead of repeating it.
                let outcome = if *policy_name == POLICIES[0] && seed == base_seed {
                    probe_a.clone()
                } else {
                    run_scenario(scenario, make_policy(policy_name, &model), seed)
                };
                outcomes.push(outcome);
            }
            let mean_score =
                outcomes.iter().map(ScenarioOutcome::score).sum::<f64>() / outcomes.len() as f64;
            rows.push((policy_name, outcomes, mean_score));
        }
        rows.sort_by(|a, b| a.2.total_cmp(&b.2));

        println!(
            "    {:<18} {:>8} {:>7} {:>9} {:>7} {:>7} {:>9} {:>10} {:>8}",
            "policy", "score", "viol%", "cost", "shed", "queued", "migr", "p99_ms", "deg_tk"
        );
        for (policy_name, outcomes, mean_score) in &rows {
            let mean = |f: &dyn Fn(&ScenarioOutcome) -> f64| {
                outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
            };
            println!(
                "    {:<18} {:>8.1} {:>6.1}% {:>9.3} {:>7.0} {:>7.0} {:>9.0} {:>10.2} {:>8.0}",
                policy_name,
                mean_score,
                mean(&|o| o.violation_rate) * 100.0,
                mean(&|o| o.total_cost),
                mean(&|o| o.shed as f64),
                mean(&|o| o.queued as f64),
                mean(&|o| o.migrations as f64),
                mean(&|o| o.p99_tick_us as f64) / 1e3,
                mean(&|o| o.degraded_ticks as f64),
            );
            cell_docs.extend(outcomes.iter().map(outcome_doc));
        }
        let winner = rows.first().map(|(name, _, _)| *name).unwrap_or("-");
        println!("    winner: {winner}\n");

        leaderboard_docs.push(json::object(&[
            ("scenario", json::string(scenario.name)),
            ("winner", json::string(winner)),
            (
                "ranking",
                json::array(
                    &rows
                        .iter()
                        .map(|(name, _, score)| {
                            json::object(&[
                                ("policy", json::string(name)),
                                ("mean_score", json::num(*score)),
                            ])
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
        ]));
    }

    let doc = json::object(&[
        ("experiment", json::string("scenarios")),
        ("ticks", json::uint(ticks)),
        ("base_seed", json::uint(base_seed)),
        ("seeds", json::uint(seed_count)),
        (
            "strict_invariants",
            json::string(if cfg!(feature = "strict-invariants") {
                "on"
            } else {
                "off"
            }),
        ),
        ("leaderboard", json::array(&leaderboard_docs)),
        ("cells", json::array(&cell_docs)),
    ]);
    cli::write_json_doc(args.json.as_deref(), Some("BENCH_scenarios.json"), &doc);
}
