//! Schedule-permutation determinism harness.
//!
//! The parallel tick's contract says *any* worker schedule produces the
//! same observable history (see `roia_sim::parallel`). The unit tests
//! pin that for thread counts; this harness attacks the stronger claim:
//! it reruns one eventful seeded session — joins, chaos faults, leaves —
//! under N seed-permuted worker schedules (chunk spawn order, per-chunk
//! walk order and injected preemption points all perturbed, re-derived
//! every tick) and requires every trace digest to be byte-identical to
//! the natural schedule's. Any worker reading sibling state mid-fan-out,
//! any map iteration leaking into the trace, any arrival-order-sensitive
//! sink shows up as a digest mismatch and a nonzero exit.
//!
//! Usage: `schedule_stress [--seed N] [--ticks N] [--threads N]
//! [--permutations N] [--json PATH]` — defaults: seed 7, 120 ticks,
//! 4 threads, 8 permutations.

use roia_bench::{cli, json};
use roia_obs::Tracer;
use roia_sim::chaos::FaultPlan;
use roia_sim::{Cluster, ClusterConfig};
use std::process::ExitCode;

/// One session under a given schedule seed (0 = natural), returning the
/// trace digest and event count.
fn run(seed: u64, ticks: u64, threads: usize, schedule_seed: u64) -> (u64, u64) {
    let config = ClusterConfig {
        seed,
        cost_noise: 0.05,
        threads,
        schedule_seed,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(config, 3);
    let (tracer, sink) = Tracer::hashing();
    cluster.set_tracer(tracer);
    cluster.set_chaos(FaultPlan::random(seed ^ 0x9e37_79b9, 0.35, ticks));
    for _ in 0..40 {
        cluster.add_user();
    }
    cluster.run(ticks / 4);
    for _ in 0..20 {
        cluster.add_user();
    }
    cluster.run(ticks / 2);
    for _ in 0..10 {
        cluster.remove_user();
    }
    cluster.run(ticks / 4);
    let guard = sink.lock().unwrap_or_else(|e| e.into_inner());
    (guard.hash(), guard.events())
}

fn main() -> ExitCode {
    let mut threads: usize = 4;
    let mut permutations: u64 = 8;
    let args = cli::parse_with(|flag, value| match flag {
        "--threads" => {
            threads = value("--threads").parse().expect("--threads: number");
            true
        }
        "--permutations" => {
            permutations = value("--permutations")
                .parse()
                .expect("--permutations: number");
            true
        }
        _ => false,
    });
    let seed = args.seed.unwrap_or(7);
    let ticks = args.ticks.unwrap_or(120).max(8);

    let (natural_hash, natural_events) = run(seed, ticks, threads, 0);
    println!(
        "schedule natural      digest={natural_hash:016x} events={natural_events} \
         (seed {seed}, {ticks} ticks, {threads} threads)"
    );
    assert!(natural_events > 0, "the session must actually trace");

    let mut rows = vec![json::object(&[
        ("schedule_seed", json::uint(0)),
        ("digest", json::string(&format!("{natural_hash:016x}"))),
        ("events", json::uint(natural_events)),
    ])];
    let mut diverged = 0u64;
    for schedule_seed in 1..=permutations {
        let (hash, events) = run(seed, ticks, threads, schedule_seed);
        let verdict = if (hash, events) == (natural_hash, natural_events) {
            "ok"
        } else {
            diverged += 1;
            "DIVERGED"
        };
        println!(
            "schedule permuted#{schedule_seed:<3} digest={hash:016x} events={events} {verdict}"
        );
        rows.push(json::object(&[
            ("schedule_seed", json::uint(schedule_seed)),
            ("digest", json::string(&format!("{hash:016x}"))),
            ("events", json::uint(events)),
        ]));
    }

    let doc = json::object(&[
        ("bench", json::string("schedule_stress")),
        ("seed", json::uint(seed)),
        ("ticks", json::uint(ticks)),
        ("threads", json::uint(threads as u64)),
        ("permutations", json::uint(permutations)),
        ("diverged", json::uint(diverged)),
        ("runs", json::array(&rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);

    if diverged == 0 {
        println!("schedule_stress OK: {permutations} permuted schedules, all digests identical");
        ExitCode::SUCCESS
    } else {
        println!("schedule_stress FAILED: {diverged} of {permutations} schedules diverged");
        ExitCode::FAILURE
    }
}
