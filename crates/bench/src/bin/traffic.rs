//! Traffic analysis — the paper's §VI future work, executed.
//!
//! "In \[10\], a traffic analysis of online games was presented that revealed
//! an asymmetry between the bandwidth used for incoming and outgoing server
//! messages [...] the authors showed a strong relationship between the
//! number of users and bandwidth usage." This binary measures both effects
//! on the running RTFDemo deployment, fits the bandwidth model of
//! `roia_model::bandwidth`, and derives the bandwidth-constrained capacity
//! that complements Eq. (2).

//!
//! Usage: `traffic [--seed N] [--ticks N] [--json PATH]` — the seed
//! feeds the measurement campaign's cost noise; `--ticks` sets the
//! per-level sample window.

use roia_bench::{calibrated_model, cli, default_campaign, json};
use roia_model::{n_max_joint, ZoneLoad};
use roia_sim::{measure_bandwidth_params, table, Series};

fn main() {
    let args = cli::parse();
    let mut campaign = default_campaign();
    if let Some(seed) = args.seed {
        campaign.seed = seed;
    }
    if let Some(ticks) = args.ticks {
        campaign.sample_ticks = ticks;
    }
    println!(
        "measuring traffic rates ({}-bot campaign)...\n",
        campaign.max_users
    );
    let bw = measure_bandwidth_params(&campaign).expect("traffic fit succeeds");

    println!("fitted per-tick traffic rates (bytes):");
    println!(
        "  client in  per user:     {:?}",
        bw.client_in_per_user.coefficients()
    );
    println!(
        "  client out per user:     {:?}",
        bw.client_out_per_user.coefficients()
    );
    println!(
        "  peer out per active:     {:?}",
        bw.peer_out_per_active.coefficients()
    );
    println!();

    // The strong user-count/bandwidth relationship of [10], per replica
    // count, plus the out/in asymmetry.
    let mut out1 = Series::new("out_l1_KB/s");
    let mut out2 = Series::new("out_l2_KB/s");
    let mut asym = Series::new("out/in_ratio_l2");
    for n in (25..=300).step_by(25) {
        let l1 = ZoneLoad::new(1, n, 0);
        let l2 = ZoneLoad::new(2, n, 0);
        // 25 ticks per second.
        out1.push(n as f64, bw.bytes_out_per_tick(l1) * 25.0 / 1024.0);
        out2.push(n as f64, bw.bytes_out_per_tick(l2) * 25.0 / 1024.0);
        asym.push(n as f64, bw.asymmetry(l2));
    }
    println!("{}", table("users", &[&out1, &out2, &asym]));

    // The bandwidth-constrained capacity, joint with the CPU model.
    let (_cal, model) = calibrated_model(&campaign);
    println!("capacity under uplink caps (l = 1):");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "uplink", "n_max(bw)", "n_max(cpu)", "n_max(joint)"
    );
    for mbit in [2.0f64, 5.0, 10.0, 50.0] {
        // Mbit/s → bytes per 40 ms tick.
        let cap = mbit * 1e6 / 8.0 * 0.040;
        let nb = bw.n_max_bandwidth(1, cap);
        let nc = model.max_users(1, 0);
        let nj = n_max_joint(&model.params, &bw, 1, 0, model.u_threshold, cap);
        println!("{:>11} Mb/s {:>12} {:>12} {:>12}", mbit, nb, nc, nj);
    }
    println!();
    println!("paper [10]'s asymmetry (outgoing ≫ incoming server traffic): ratio at");
    println!(
        "300 users on 2 replicas = {:.1}x",
        bw.asymmetry(ZoneLoad::new(2, 300, 0))
    );

    let capacity_rows: Vec<String> = [2.0f64, 5.0, 10.0, 50.0]
        .iter()
        .map(|&mbit| {
            let cap = mbit * 1e6 / 8.0 * 0.040;
            json::object(&[
                ("uplink_mbit", json::num(mbit)),
                ("n_max_bw", json::uint(bw.n_max_bandwidth(1, cap) as u64)),
                ("n_max_cpu", json::uint(model.max_users(1, 0) as u64)),
                (
                    "n_max_joint",
                    json::uint(
                        n_max_joint(&model.params, &bw, 1, 0, model.u_threshold, cap) as u64,
                    ),
                ),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("experiment", json::string("traffic")),
        ("seed", json::uint(campaign.seed)),
        (
            "asymmetry_300_users_2_replicas",
            json::num(bw.asymmetry(ZoneLoad::new(2, 300, 0))),
        ),
        ("capacity_under_uplink_caps", json::array(&capacity_rows)),
    ]);
    cli::write_json_doc(args.json.as_deref(), None, &doc);
}
