//! # roia-bench — the figure-regeneration harness
//!
//! One binary per figure of the paper's evaluation (`fig2`, `fig4` … `fig8`,
//! `policy_compare`) plus Criterion microbenchmarks of the substrate and the
//! model. This library holds the helpers the binaries share.

#![warn(missing_docs)]

use roia_model::calibrate::Calibration;
use roia_model::ScalabilityModel;
use roia_sim::{calibrate_demo, MeasureConfig};

/// The paper's thresholds for RTFDemo: U = 40 ms (25 updates/s), c = 0.15,
/// replication trigger at 80 % of capacity.
pub const U_THRESHOLD: f64 = 0.040;
/// Eq. (3)'s minimum-improvement factor used in §V-A.
pub const IMPROVEMENT_FACTOR: f64 = 0.15;
/// The §V-A replication-trigger fraction.
pub const TRIGGER_FRACTION: f64 = 0.8;

/// Runs the full §V-A measurement campaign and returns both the raw
/// calibration (for fit-quality reporting) and the assembled model.
pub fn calibrated_model(config: &MeasureConfig) -> (Calibration, ScalabilityModel) {
    let calibration = calibrate_demo(config).expect("campaign covers all parameters");
    let model = ScalabilityModel::new(calibration.params.clone(), U_THRESHOLD)
        .with_improvement_factor(IMPROVEMENT_FACTOR)
        .with_trigger_fraction(TRIGGER_FRACTION);
    (calibration, model)
}

/// The default campaign of the figure binaries (the paper's 300 bots).
pub fn default_campaign() -> MeasureConfig {
    MeasureConfig::default()
}

/// Minimal hand-rolled JSON emitters.
///
/// The workspace deliberately carries no JSON dependency. Bench used to
/// keep its own emitters here; they now live in [`roia_obs::export`] so
/// traces, metric exports and figure outputs share one canonical
/// implementation. Re-exported under the historical name for the
/// binaries.
pub mod json {
    pub use roia_obs::export::{array, int, num, object, string, uint};

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn renders_flat_documents() {
            let doc = object(&[
                ("name", string("fig\"8\"")),
                ("worst", num(1.25)),
                ("bad", num(f64::NAN)),
                ("series", array(&[num(1.0), num(2.0)])),
            ]);
            assert_eq!(
                doc,
                "{\"name\": \"fig\\\"8\\\"\", \"worst\": 1.25, \"bad\": null, \"series\": [1, 2]}"
            );
        }

        #[test]
        fn emitted_documents_parse_back() {
            let doc = object(&[
                ("experiment", string("fig8")),
                ("violations", uint(3)),
                ("series", array(&[num(1.0), num(2.5)])),
            ]);
            let map = roia_obs::export::parse_object(&doc).expect("round-trips");
            assert_eq!(map["experiment"].as_str(), Some("fig8"));
            assert_eq!(map["violations"].as_u64(), Some(3));
            assert_eq!(map["series"].as_arr().map(|a| a.len()), Some(2));
        }
    }
}

/// Shared command-line handling for the figure binaries.
///
/// Every binary accepts the same core flags; binaries with extra knobs
/// (e.g. `recalibration --shift-tick`) pass a handler to
/// [`cli::parse_with`]:
///
/// * `--seed N` — RNG seed for the session/campaign,
/// * `--ticks N` — session length override,
/// * `--plan NAME` — named scenario selector (chaos plans),
/// * `--json PATH` — write the machine-readable summary here,
/// * `--trace PATH` — record a JSONL telemetry trace of the session
///   (replay with `explain`),
/// * `--metrics PATH` — write the Prometheus metrics snapshot here,
/// * `--flight DIR` — arm the flight recorder; postmortem bundles land
///   under DIR (`postmortem-NNN/`).
pub mod cli {
    use std::path::{Path, PathBuf};

    /// Flags every figure binary understands.
    #[derive(Debug, Default, Clone)]
    pub struct CommonArgs {
        /// `--seed N`: RNG seed override.
        pub seed: Option<u64>,
        /// `--ticks N`: session-length override.
        pub ticks: Option<u64>,
        /// `--plan NAME`: named scenario selector.
        pub plan: Option<String>,
        /// `--json PATH`: machine-readable summary destination.
        pub json: Option<PathBuf>,
        /// `--trace PATH`: JSONL telemetry trace destination.
        pub trace: Option<PathBuf>,
        /// `--metrics PATH`: Prometheus text snapshot destination.
        pub metrics: Option<PathBuf>,
        /// `--flight DIR`: flight-recorder postmortem bundle directory.
        pub flight: Option<PathBuf>,
    }

    /// Parses the process arguments. Flags not in [`CommonArgs`] are
    /// offered to `extra(flag, value)` — it pulls the flag's value
    /// through the callback as needed and returns `true` when it
    /// consumed the flag. Panics (with the offending flag) otherwise.
    pub fn parse_with(
        mut extra: impl FnMut(&str, &mut dyn FnMut(&str) -> String) -> bool,
    ) -> CommonArgs {
        let mut out = CommonArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("{name} needs a value"))
            };
            let number = |name: &str, v: String| -> u64 {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name} needs a numeric value"))
            };
            match flag.as_str() {
                "--seed" => out.seed = Some(number("--seed", value("--seed"))),
                "--ticks" => out.ticks = Some(number("--ticks", value("--ticks"))),
                "--plan" => out.plan = Some(value("--plan")),
                "--json" => out.json = Some(PathBuf::from(value("--json"))),
                "--trace" => out.trace = Some(PathBuf::from(value("--trace"))),
                "--metrics" => out.metrics = Some(PathBuf::from(value("--metrics"))),
                "--flight" => out.flight = Some(PathBuf::from(value("--flight"))),
                other => {
                    if !extra(other, &mut value) {
                        panic!("unknown flag {other}");
                    }
                }
            }
        }
        out
    }

    /// [`parse_with`] accepting only the common flags.
    pub fn parse() -> CommonArgs {
        parse_with(|_, _| false)
    }

    /// Writes a JSON document where the user asked (`--json`), or to the
    /// binary's historical default path, or nowhere when neither is
    /// given. Announces the written file on stdout.
    pub fn write_json_doc(flag: Option<&Path>, default_path: Option<&str>, doc: &str) {
        let path: Option<PathBuf> = flag
            .map(Path::to_path_buf)
            .or_else(|| default_path.map(PathBuf::from));
        if let Some(path) = path {
            let mut body = doc.to_string();
            body.push('\n');
            std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("wrote {}", path.display());
        }
    }

    /// Writes the Prometheus snapshot if `--metrics` was given.
    pub fn write_metrics(flag: Option<&Path>, registry: &roia_obs::MetricsRegistry) {
        if let Some(path) = flag {
            std::fs::write(path, registry.prometheus())
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("wrote {}", path.display());
        }
    }

    /// Builds a JSONL tracer if `--trace` was given (disabled otherwise).
    pub fn tracer(flag: Option<&Path>) -> roia_obs::Tracer {
        match flag {
            Some(path) => roia_obs::Tracer::jsonl(path)
                .unwrap_or_else(|e| panic!("open trace {}: {e}", path.display())),
            None => roia_obs::Tracer::disabled(),
        }
    }
}
