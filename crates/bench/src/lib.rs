//! # roia-bench — the figure-regeneration harness
//!
//! One binary per figure of the paper's evaluation (`fig2`, `fig4` … `fig8`,
//! `policy_compare`) plus Criterion microbenchmarks of the substrate and the
//! model. This library holds the helpers the binaries share.

#![warn(missing_docs)]

use roia_model::calibrate::Calibration;
use roia_model::ScalabilityModel;
use roia_sim::{calibrate_demo, MeasureConfig};

/// The paper's thresholds for RTFDemo: U = 40 ms (25 updates/s), c = 0.15,
/// replication trigger at 80 % of capacity.
pub const U_THRESHOLD: f64 = 0.040;
/// Eq. (3)'s minimum-improvement factor used in §V-A.
pub const IMPROVEMENT_FACTOR: f64 = 0.15;
/// The §V-A replication-trigger fraction.
pub const TRIGGER_FRACTION: f64 = 0.8;

/// Runs the full §V-A measurement campaign and returns both the raw
/// calibration (for fit-quality reporting) and the assembled model.
pub fn calibrated_model(config: &MeasureConfig) -> (Calibration, ScalabilityModel) {
    let calibration = calibrate_demo(config).expect("campaign covers all parameters");
    let model = ScalabilityModel::new(calibration.params.clone(), U_THRESHOLD)
        .with_improvement_factor(IMPROVEMENT_FACTOR)
        .with_trigger_fraction(TRIGGER_FRACTION);
    (calibration, model)
}

/// The default campaign of the figure binaries (the paper's 300 bots).
pub fn default_campaign() -> MeasureConfig {
    MeasureConfig::default()
}
