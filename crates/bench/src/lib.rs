//! # roia-bench — the figure-regeneration harness
//!
//! One binary per figure of the paper's evaluation (`fig2`, `fig4` … `fig8`,
//! `policy_compare`) plus Criterion microbenchmarks of the substrate and the
//! model. This library holds the helpers the binaries share.

#![warn(missing_docs)]

use roia_model::calibrate::Calibration;
use roia_model::ScalabilityModel;
use roia_sim::{calibrate_demo, MeasureConfig};

/// The paper's thresholds for RTFDemo: U = 40 ms (25 updates/s), c = 0.15,
/// replication trigger at 80 % of capacity.
pub const U_THRESHOLD: f64 = 0.040;
/// Eq. (3)'s minimum-improvement factor used in §V-A.
pub const IMPROVEMENT_FACTOR: f64 = 0.15;
/// The §V-A replication-trigger fraction.
pub const TRIGGER_FRACTION: f64 = 0.8;

/// Runs the full §V-A measurement campaign and returns both the raw
/// calibration (for fit-quality reporting) and the assembled model.
pub fn calibrated_model(config: &MeasureConfig) -> (Calibration, ScalabilityModel) {
    let calibration = calibrate_demo(config).expect("campaign covers all parameters");
    let model = ScalabilityModel::new(calibration.params.clone(), U_THRESHOLD)
        .with_improvement_factor(IMPROVEMENT_FACTOR)
        .with_trigger_fraction(TRIGGER_FRACTION);
    (calibration, model)
}

/// The default campaign of the figure binaries (the paper's 300 bots).
pub fn default_campaign() -> MeasureConfig {
    MeasureConfig::default()
}

/// Minimal hand-rolled JSON emitters.
///
/// The workspace deliberately carries no JSON dependency; bench outputs
/// are flat arrays/objects of numbers and short ASCII strings, so
/// rendering them by hand is simpler than gating a crate.
pub mod json {
    /// A JSON number (non-finite values render as `null`).
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// A JSON string with quote/backslash/control escaping.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// `{"k": v, ...}` from already-rendered values.
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}: {}", string(k), v))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// `[...]` from already-rendered values.
    pub fn array(items: &[String]) -> String {
        format!("[{}]", items.join(", "))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn renders_flat_documents() {
            let doc = object(&[
                ("name", string("fig\"8\"")),
                ("worst", num(1.25)),
                ("bad", num(f64::NAN)),
                ("series", array(&[num(1.0), num(2.0)])),
            ]);
            assert_eq!(
                doc,
                "{\"name\": \"fig\\\"8\\\"\", \"worst\": 1.25, \"bad\": null, \"series\": [1, 2]}"
            );
        }
    }
}
