//! Bandwidth analysis — the paper's stated future work, implemented.
//!
//! §VI: "While we still need to implement bandwidth analysis for our
//! scalability model, our model distinguishes between processing of
//! incoming events and outgoing state updates. Furthermore, the authors
//! \[of \[10\]\] showed a strong relationship between the number of users and
//! bandwidth usage, which implies that our approach of calculating a
//! maximum number of users for a given number of replicas is also suitable
//! for modelling network traffic in ROIA."
//!
//! This module carries that program out, mirroring the CPU model's
//! structure: per-user traffic rates fitted as functions of the zone
//! population, a per-tick traffic prediction analogous to Eq. (1), and a
//! bandwidth-constrained `n_max` that can be combined with the CPU-based
//! one.

use crate::costfn::CostFn;
use crate::params::ModelParams;
use crate::tick::ZoneLoad;
use serde::{Deserialize, Serialize};

/// Fitted per-tick traffic rates (bytes, as functions of the zone's total
/// user count `n` — traffic grows with `n` because denser populations mean
/// larger area-of-interest update payloads).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BandwidthParams {
    /// Bytes received from one connected user per tick (inputs).
    pub client_in_per_user: CostFn,
    /// Bytes sent to one connected user per tick (state updates).
    pub client_out_per_user: CostFn,
    /// Bytes sent to ONE peer replica per active entity per tick
    /// (replica updates + forwarded interactions).
    pub peer_out_per_active: CostFn,
}

impl BandwidthParams {
    /// Predicted bytes *sent* by one server per tick, under equal
    /// distribution: state updates to `n/l` clients plus replica updates
    /// for `n/l` active entities to each of the `l − 1` peers.
    pub fn bytes_out_per_tick(&self, load: ZoneLoad) -> f64 {
        let l = f64::from(load.replicas);
        let n = f64::from(load.users);
        let active = n / l;
        active * self.client_out_per_user.eval(n)
            + (l - 1.0) * active * self.peer_out_per_active.eval(n)
    }

    /// Predicted bytes *received* by one server per tick: inputs from its
    /// own `n/l` users plus replica updates for the `n − n/l` shadow
    /// entities.
    pub fn bytes_in_per_tick(&self, load: ZoneLoad) -> f64 {
        let l = f64::from(load.replicas);
        let n = f64::from(load.users);
        let active = n / l;
        active * self.client_in_per_user.eval(n) + (n - active) * self.peer_out_per_active.eval(n)
    }

    /// The out/in traffic asymmetry of a server — the MMORPG measurement
    /// of Kim et al. \[10\] found outgoing server traffic dominating, which
    /// must also hold for any AoI-filtered ROIA: one 20-byte input fans
    /// out into position updates for every observer.
    pub fn asymmetry(&self, load: ZoneLoad) -> f64 {
        let inb = self.bytes_in_per_tick(load);
        if inb <= 0.0 {
            return f64::INFINITY;
        }
        self.bytes_out_per_tick(load) / inb
    }

    /// The maximum users `n` such that a server's *outgoing* traffic stays
    /// below `cap_bytes_per_tick` on `l` replicas — the bandwidth analogue
    /// of Eq. (2). Returns [`crate::capacity::N_SEARCH_CAP`] if the cap is
    /// never reached.
    pub fn n_max_bandwidth(&self, l: u32, cap_bytes_per_tick: f64) -> u32 {
        assert!(l >= 1);
        assert!(cap_bytes_per_tick > 0.0);
        let over = |n: u32| {
            self.bytes_out_per_tick(ZoneLoad {
                replicas: l,
                users: n,
                npcs: 0,
            }) >= cap_bytes_per_tick
        };
        if over(1) {
            return 0;
        }
        let mut hi = 2u32;
        while hi < crate::capacity::N_SEARCH_CAP && !over(hi) {
            hi = hi.saturating_mul(2);
        }
        if hi >= crate::capacity::N_SEARCH_CAP && !over(crate::capacity::N_SEARCH_CAP) {
            return crate::capacity::N_SEARCH_CAP;
        }
        let mut lo = hi / 2;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if over(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    }
}

/// The joint capacity of a server bound by BOTH the CPU model (Eq. (2))
/// and the outgoing-bandwidth cap: the binding constraint wins.
pub fn n_max_joint(
    params: &ModelParams,
    bandwidth: &BandwidthParams,
    l: u32,
    m: u32,
    u_threshold: f64,
    cap_bytes_per_tick: f64,
) -> u32 {
    crate::capacity::n_max(params, l, m, u_threshold)
        .min(bandwidth.n_max_bandwidth(l, cap_bytes_per_tick))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costfn::CostFn;

    /// RTFDemo-like traffic: small constant inputs, updates growing with
    /// the population (AoI payload), modest replica sync.
    fn demo_bw() -> BandwidthParams {
        BandwidthParams {
            client_in_per_user: CostFn::Linear { c0: 30.0, c1: 0.01 },
            client_out_per_user: CostFn::Linear { c0: 40.0, c1: 1.4 },
            peer_out_per_active: CostFn::Constant(21.0),
        }
    }

    #[test]
    fn outgoing_traffic_dominates() {
        // The Kim et al. [10] asymmetry: updates out ≫ inputs in.
        let bw = demo_bw();
        for l in [1u32, 2, 4] {
            let load = ZoneLoad::new(l, 200, 0);
            assert!(
                bw.asymmetry(load) > 2.0,
                "l = {l}: out/in = {}",
                bw.asymmetry(load)
            );
        }
    }

    #[test]
    fn single_replica_has_no_peer_traffic() {
        let bw = demo_bw();
        let load = ZoneLoad::new(1, 100, 0);
        let expected = 100.0 * bw.client_out_per_user.eval(100.0);
        assert!((bw.bytes_out_per_tick(load) - expected).abs() < 1e-9);
    }

    #[test]
    fn replication_adds_peer_traffic() {
        // Fixed n: more replicas means less client traffic per server but
        // inter-server sync appears.
        let bw = demo_bw();
        let one = bw.bytes_out_per_tick(ZoneLoad::new(1, 200, 0));
        let two = bw.bytes_out_per_tick(ZoneLoad::new(2, 200, 0));
        // Per-server client traffic halves; peer traffic partially
        // compensates but the total per server still drops for these rates.
        assert!(two < one);
        // Total across servers grows, though: replication costs bandwidth.
        assert!(2.0 * two > one);
    }

    #[test]
    fn n_max_bandwidth_is_boundary() {
        let bw = demo_bw();
        let cap = 50_000.0; // bytes per tick
        let n = bw.n_max_bandwidth(1, cap);
        assert!(n > 0);
        assert!(bw.bytes_out_per_tick(ZoneLoad::new(1, n, 0)) < cap);
        assert!(bw.bytes_out_per_tick(ZoneLoad::new(1, n + 1, 0)) >= cap);
    }

    #[test]
    fn n_max_bandwidth_monotone_in_cap() {
        let bw = demo_bw();
        let a = bw.n_max_bandwidth(1, 10_000.0);
        let b = bw.n_max_bandwidth(1, 100_000.0);
        assert!(b > a);
    }

    #[test]
    fn tiny_cap_yields_zero() {
        let bw = demo_bw();
        assert_eq!(bw.n_max_bandwidth(1, 1.0), 0);
    }

    #[test]
    fn unlimited_cap_hits_search_limit() {
        let bw = BandwidthParams::default(); // zero traffic
        assert_eq!(bw.n_max_bandwidth(1, 1e9), crate::capacity::N_SEARCH_CAP);
    }

    #[test]
    fn joint_capacity_takes_the_binding_constraint() {
        let bw = demo_bw();
        let params = ModelParams {
            t_ua: CostFn::Constant(1e-4),
            ..ModelParams::default()
        };
        // CPU-bound capacity: 399. Bandwidth with a generous cap: larger.
        let generous = n_max_joint(&params, &bw, 1, 0, 0.040, 10_000_000.0);
        assert_eq!(generous, 399, "CPU is the binding constraint");
        // Starved uplink: bandwidth becomes binding.
        let starved = n_max_joint(&params, &bw, 1, 0, 0.040, 10_000.0);
        assert!(starved < 399);
        assert_eq!(starved, bw.n_max_bandwidth(1, 10_000.0));
    }

    #[test]
    fn asymmetry_infinite_without_input_traffic() {
        let bw = BandwidthParams {
            client_out_per_user: CostFn::Constant(10.0),
            ..BandwidthParams::default()
        };
        assert!(bw.asymmetry(ZoneLoad::new(1, 10, 0)).is_infinite());
    }
}
