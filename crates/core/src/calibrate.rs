//! Model calibration from runtime measurements — §III-C / §V-A.
//!
//! "In order to apply the scalability model for a particular ROIA, the
//! application-specific values of parameters t_ua_dser, t_ua, … have to be
//! determined" by measuring CPU times during a test execution and fitting
//! approximation functions with the Levenberg–Marquardt algorithm. This
//! module takes the raw `(user count, seconds)` samples produced by the
//! measurement hooks of `rtf-core` and produces a [`ModelParams`].

use crate::costfn::CostFn;
use crate::params::{ModelParams, ParamKind};
use roia_fit::lm::{fit, FitError, FitResult, LmConfig};
use roia_fit::model::Polynomial;
use std::collections::BTreeMap;
use std::fmt;

/// Raw measurement series for one model parameter: CPU seconds observed at
/// various user counts. The series is capacity-bounded: past the cap the
/// oldest observations are evicted, so long-running collectors (online
/// calibration streams every tick) hold a sliding window instead of
/// growing without bound. The default capacity is effectively unlimited —
/// offline campaigns keep everything.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSamples {
    /// User counts at which the parameter was sampled.
    pub user_counts: Vec<f64>,
    /// Observed CPU time (seconds) per entity/migration at that user count.
    pub seconds: Vec<f64>,
    capacity: usize,
}

impl Default for ParamSamples {
    fn default() -> Self {
        Self::with_capacity(usize::MAX)
    }
}

impl ParamSamples {
    /// An empty series keeping at most `capacity` observations.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "a sample series needs room for one sample");
        Self {
            user_counts: Vec::new(),
            seconds: Vec::new(),
            capacity,
        }
    }

    /// Maximum observations retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one observation, evicting the oldest past capacity.
    pub fn push(&mut self, users: f64, seconds: f64) {
        if self.user_counts.len() == self.capacity {
            self.user_counts.remove(0);
            self.seconds.remove(0);
        }
        self.user_counts.push(users);
        self.seconds.push(seconds);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.user_counts.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.user_counts.is_empty()
    }

    /// Merges another series into this one, respecting *this* series'
    /// capacity (the newest observations win).
    pub fn extend(&mut self, other: &ParamSamples) {
        for (&users, &seconds) in other.user_counts.iter().zip(&other.seconds) {
            self.push(users, seconds);
        }
    }
}

/// A full measurement campaign: samples per parameter. Series created by
/// [`Measurements::record`] inherit the campaign's per-parameter capacity
/// ([`Measurements::with_capacity`]; unbounded by default).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurements {
    series: BTreeMap<ParamKind, ParamSamples>,
    per_param_capacity: usize,
}

impl Default for Measurements {
    fn default() -> Self {
        Self::with_capacity(usize::MAX)
    }
}

impl Measurements {
    /// Creates an empty campaign retaining every observation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty campaign whose series each keep at most
    /// `per_param_capacity` observations (oldest evicted first).
    pub fn with_capacity(per_param_capacity: usize) -> Self {
        assert!(per_param_capacity >= 1);
        Self {
            series: BTreeMap::new(),
            per_param_capacity,
        }
    }

    /// The per-parameter retention cap.
    pub fn per_param_capacity(&self) -> usize {
        self.per_param_capacity
    }

    /// Appends an observation for `kind`.
    pub fn record(&mut self, kind: ParamKind, users: f64, seconds: f64) {
        let capacity = self.per_param_capacity;
        self.series
            .entry(kind)
            .or_insert_with(|| ParamSamples::with_capacity(capacity))
            .push(users, seconds);
    }

    /// The samples recorded for `kind`, if any.
    pub fn samples(&self, kind: ParamKind) -> Option<&ParamSamples> {
        self.series.get(&kind)
    }

    /// Parameters with at least one sample.
    pub fn kinds(&self) -> impl Iterator<Item = ParamKind> + '_ {
        self.series.keys().copied()
    }

    /// Merges another campaign into this one (this campaign's retention
    /// caps apply).
    pub fn merge(&mut self, other: &Measurements) {
        let capacity = self.per_param_capacity;
        for (kind, samples) in &other.series {
            self.series
                .entry(*kind)
                .or_insert_with(|| ParamSamples::with_capacity(capacity))
                .extend(samples);
        }
    }

    /// Total number of observations across all parameters.
    pub fn total_samples(&self) -> usize {
        self.series.values().map(ParamSamples::len).sum()
    }
}

/// Error from [`calibrate`].
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// A required parameter has no samples at all.
    MissingSamples(ParamKind),
    /// The underlying least-squares fit failed.
    Fit(ParamKind, FitError),
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::MissingSamples(k) => {
                write!(f, "no samples recorded for {}", k.symbol())
            }
            CalibrationError::Fit(k, e) => write!(f, "fit failed for {}: {e}", k.symbol()),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Outcome of calibrating one parameter.
#[derive(Debug, Clone)]
pub struct ParamFit {
    /// Which parameter was fitted.
    pub kind: ParamKind,
    /// The fitted approximation function.
    pub cost_fn: CostFn,
    /// Diagnostics from the Levenberg–Marquardt run.
    pub fit: FitResult,
}

/// Outcome of a full calibration.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The calibrated model parameters, ready for the threshold functions.
    pub params: ModelParams,
    /// Per-parameter fit diagnostics, in [`ParamKind::ALL`] order for the
    /// parameters that had samples.
    pub fits: Vec<ParamFit>,
}

impl Calibration {
    /// Fit diagnostics for one parameter, if it was calibrated.
    pub fn fit_for(&self, kind: ParamKind) -> Option<&ParamFit> {
        self.fits.iter().find(|f| f.kind == kind)
    }

    /// The worst R² across all fitted parameters (1.0 if none).
    pub fn worst_r_squared(&self) -> f64 {
        self.fits
            .iter()
            .map(|f| f.fit.r_squared)
            .fold(1.0, f64::min)
    }
}

/// Fits every sampled parameter with the polynomial degree §V-A prescribes
/// (quadratic for `t_ua`/`t_aoi`, linear otherwise) and assembles a
/// [`ModelParams`]. Parameters without samples default to zero cost — the
/// paper itself neglects `t_npc` "for brevity", so an absent series is not
/// an error; use [`calibrate_strict`] to require all nine.
pub fn calibrate(measurements: &Measurements) -> Result<Calibration, CalibrationError> {
    let mut params = ModelParams::default();
    let mut fits = Vec::new();
    for kind in ParamKind::ALL {
        let Some(samples) = measurements.samples(kind) else {
            continue;
        };
        if samples.is_empty() {
            continue;
        }
        let model = Polynomial::new(kind.fit_degree());
        let result = fit(
            &model,
            &samples.user_counts,
            &samples.seconds,
            None,
            &LmConfig::default(),
        )
        .map_err(|e| CalibrationError::Fit(kind, e))?;
        let cost_fn = CostFn::from_coefficients(&result.beta);
        params.set(kind, cost_fn.clone());
        fits.push(ParamFit {
            kind,
            cost_fn,
            fit: result,
        });
    }
    Ok(Calibration { params, fits })
}

/// Like [`calibrate`], but errors if any of the nine parameters lacks
/// samples.
pub fn calibrate_strict(measurements: &Measurements) -> Result<Calibration, CalibrationError> {
    for kind in ParamKind::ALL {
        if measurements
            .samples(kind)
            .is_none_or(ParamSamples::is_empty)
        {
            return Err(CalibrationError::MissingSamples(kind));
        }
    }
    calibrate(measurements)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates noiseless samples from a ground-truth polynomial.
    fn synth(kind: ParamKind, coeffs: &[f64], meas: &mut Measurements) {
        let truth = CostFn::from_coefficients(coeffs);
        for n in (10..=300).step_by(10) {
            meas.record(kind, n as f64, truth.eval_raw(n as f64));
        }
    }

    #[test]
    fn recovers_ground_truth_parameters() {
        let mut meas = Measurements::new();
        synth(ParamKind::UaDser, &[1e-5, 2e-8], &mut meas);
        synth(ParamKind::Ua, &[2e-5, 1e-7, 3e-10], &mut meas);
        synth(ParamKind::Aoi, &[1e-5, 2e-7, 5e-11], &mut meas);
        synth(ParamKind::Su, &[3e-5, 5e-8], &mut meas);

        let cal = calibrate(&meas).unwrap();
        assert_eq!(cal.fits.len(), 4);
        assert!(
            cal.worst_r_squared() > 0.999999,
            "r² = {}",
            cal.worst_r_squared()
        );

        // Quadratic shape chosen for t_ua per §V-A.
        assert!(matches!(cal.params.t_ua, CostFn::Quadratic { .. }));
        assert!(matches!(cal.params.t_su, CostFn::Linear { .. }));

        // Coefficients recovered.
        let ua = cal.params.t_ua.coefficients();
        assert!((ua[0] - 2e-5).abs() < 1e-9);
        assert!((ua[1] - 1e-7).abs() < 1e-11);
        assert!((ua[2] - 3e-10).abs() < 1e-13);
    }

    #[test]
    fn unsampled_parameters_default_to_zero() {
        let mut meas = Measurements::new();
        synth(ParamKind::Ua, &[1e-5, 1e-8, 1e-11], &mut meas);
        let cal = calibrate(&meas).unwrap();
        assert_eq!(cal.params.t_npc, CostFn::ZERO);
        assert!(cal.fit_for(ParamKind::Npc).is_none());
        assert!(cal.fit_for(ParamKind::Ua).is_some());
    }

    #[test]
    fn strict_mode_requires_all_nine() {
        let mut meas = Measurements::new();
        synth(ParamKind::Ua, &[1e-5, 1e-8, 1e-11], &mut meas);
        let err = calibrate_strict(&meas).unwrap_err();
        assert!(matches!(err, CalibrationError::MissingSamples(_)));
    }

    #[test]
    fn strict_mode_succeeds_with_all_nine() {
        let mut meas = Measurements::new();
        for kind in ParamKind::ALL {
            synth(kind, &[1e-5, 1e-8], &mut meas);
        }
        let cal = calibrate_strict(&meas).unwrap();
        assert_eq!(cal.fits.len(), 9);
    }

    #[test]
    fn bounded_series_evicts_oldest() {
        let mut s = ParamSamples::with_capacity(3);
        for i in 0..5 {
            s.push(i as f64, i as f64 * 1e-6);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.user_counts, vec![2.0, 3.0, 4.0], "oldest two evicted");
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    fn bounded_campaign_caps_each_parameter() {
        let mut meas = Measurements::with_capacity(10);
        for i in 0..100 {
            meas.record(ParamKind::Su, i as f64, 1e-6);
            meas.record(ParamKind::Ua, i as f64, 2e-6);
        }
        assert_eq!(meas.total_samples(), 20);
        let su = meas.samples(ParamKind::Su).unwrap();
        assert_eq!(su.user_counts.first(), Some(&90.0), "window slid forward");
    }

    #[test]
    fn merge_respects_receiver_capacity() {
        let mut bounded = Measurements::with_capacity(5);
        let mut big = Measurements::new();
        for i in 0..50 {
            big.record(ParamKind::Aoi, i as f64, 1e-6);
        }
        bounded.merge(&big);
        assert_eq!(bounded.total_samples(), 5);
        assert_eq!(
            bounded.samples(ParamKind::Aoi).unwrap().user_counts,
            vec![45.0, 46.0, 47.0, 48.0, 49.0],
            "newest observations win"
        );
    }

    #[test]
    fn measurements_merge_accumulates() {
        let mut a = Measurements::new();
        a.record(ParamKind::Su, 10.0, 1e-5);
        let mut b = Measurements::new();
        b.record(ParamKind::Su, 20.0, 2e-5);
        b.record(ParamKind::Ua, 20.0, 3e-5);
        a.merge(&b);
        assert_eq!(a.total_samples(), 3);
        assert_eq!(a.samples(ParamKind::Su).unwrap().len(), 2);
    }

    #[test]
    fn noisy_samples_still_recover_trend() {
        let mut meas = Measurements::new();
        let truth = CostFn::Linear { c0: 5e-5, c1: 1e-7 };
        for i in 0..200u32 {
            let n = 10.0 + (i % 30) as f64 * 10.0;
            // Deterministic ±10 % multiplicative noise.
            let noise = 1.0 + 0.1 * (((i as f64 * 0.7).sin() * 43758.5453).abs().fract() - 0.5);
            meas.record(ParamKind::MigIni, n, truth.eval_raw(n) * noise);
        }
        let cal = calibrate(&meas).unwrap();
        let coeffs = cal.params.t_mig_ini.coefficients();
        assert!((coeffs[0] - 5e-5).abs() < 1e-5, "c0 = {}", coeffs[0]);
        assert!((coeffs[1] - 1e-7).abs() < 2e-8, "c1 = {}", coeffs[1]);
    }
}
