//! Capacity thresholds — Eq. (2) and Eq. (3) of the paper.
//!
//! * [`n_max`] answers "how many users fit on `l` replicas before the tick
//!   duration exceeds the quality threshold `U`?"
//! * [`l_max`] answers "how many replicas can this application use
//!   efficiently?", given the minimum-improvement factor `c`.
//! * [`replication_trigger`] is the §V-A rule of thumb: enact replication at
//!   a fixed percentage (80 % in the paper) of `n_max`, so migration
//!   overhead and late-arriving users cannot push the tick past `U`.

use crate::params::ModelParams;
use crate::tick::{tick_duration_equal, ZoneLoad};

/// Hard ceiling for the user-count search: no single zone of a ROIA holds
/// more users than this (the paper's application class tops out around 10⁴
/// concurrent users for the *whole* application).
pub const N_SEARCH_CAP: u32 = 10_000_000;

/// Hard ceiling for the replica-count search in [`l_max`].
pub const L_SEARCH_CAP: u32 = 4096;

/// Eq. (2): the maximum number of users `n` such that `T(l, n, m) < U`,
/// for `l` replicas, `m` NPCs and tick-duration threshold `U` (seconds).
///
/// Returns 0 if even a single user violates the threshold. The search
/// assumes `T` is non-decreasing in `n` (use
/// [`ModelParams::validate_monotone`] on fitted parameters first); it
/// proceeds by exponential ramp-up followed by binary search.
pub fn n_max(params: &ModelParams, l: u32, m: u32, u_threshold: f64) -> u32 {
    assert!(l >= 1, "a zone needs at least one replica");
    assert!(u_threshold > 0.0, "threshold must be positive");

    let over = |n: u32| {
        tick_duration_equal(
            params,
            ZoneLoad {
                replicas: l,
                users: n,
                npcs: m,
            },
        ) >= u_threshold
    };

    if over(1) {
        return 0;
    }
    // Exponential ramp: find the first power-of-two bound that violates U.
    let mut hi = 2u32;
    while hi < N_SEARCH_CAP && !over(hi) {
        hi = hi.saturating_mul(2);
    }
    if hi >= N_SEARCH_CAP && !over(N_SEARCH_CAP) {
        return N_SEARCH_CAP;
    }
    let mut lo = hi / 2; // known good
                         // Invariant: !over(lo) && over(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if over(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// Result of the replica-limit computation of Eq. (3).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaLimit {
    /// `l_max`: the largest replica count that still yields at least a
    /// `c`-fraction of the single-server capacity in extra users.
    pub l_max: u32,
    /// `n_max(l)` for `l = 1 ..= l_max` (index 0 holds `l = 1`).
    pub capacity_per_replica: Vec<u32>,
    /// The single-server capacity `n_max(1, m, U)` the improvement factor
    /// is measured against.
    pub single_server_capacity: u32,
}

impl ReplicaLimit {
    /// Capacity with `l` replicas (1-based); `None` beyond `l_max`.
    pub fn capacity(&self, l: u32) -> Option<u32> {
        if l == 0 {
            return None;
        }
        self.capacity_per_replica
            .get(crate::convert::usize_from_u32(l) - 1)
            .copied()
    }
}

/// Eq. (3): the maximum number of replicas worth enacting.
///
/// Adding replica `l` is worthwhile only if the capacity target
/// `n'_max = n_max(l−1) + c·n_max(1)` still meets the threshold on `l`
/// replicas, i.e. `T(l, n'_max, m) < U`. The factor `0 < c ≤ 1` expresses
/// the minimum improvement expected from each additional resource (the
/// paper picks `c = 0.15` for RTFDemo, yielding `l_max = 8`).
pub fn l_max(params: &ModelParams, m: u32, u_threshold: f64, c: f64) -> ReplicaLimit {
    assert!(
        c > 0.0 && c <= 1.0,
        "improvement factor must satisfy 0 < c <= 1"
    );

    let n1 = n_max(params, 1, m, u_threshold);
    let mut capacities = vec![n1];
    let mut l = 1u32;
    while l < L_SEARCH_CAP {
        let next = l + 1;
        let n_prev = *capacities.last().expect("at least one entry");
        let target = f64::from(n_prev) + c * f64::from(n1);
        let t = tick_duration_equal(
            params,
            ZoneLoad {
                replicas: next,
                users: crate::convert::ceil_u32(target),
                npcs: m,
            },
        );
        if t >= u_threshold {
            break;
        }
        capacities.push(n_max(params, next, m, u_threshold));
        l = next;
    }
    ReplicaLimit {
        l_max: l,
        capacity_per_replica: capacities,
        single_server_capacity: n1,
    }
}

/// §V-A's replication trigger: enact replication once the user count reaches
/// `fraction` (the paper: 0.8) of the current capacity, leaving headroom for
/// migration overhead and users that connect during load balancing.
pub fn replication_trigger(capacity: u32, fraction: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    crate::convert::floor_u32(f64::from(capacity) * fraction)
}

/// One point of the Fig. 5 curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityPoint {
    /// Replica count `l`.
    pub replicas: u32,
    /// Maximum users `n_max(l, m, U)`.
    pub max_users: u32,
    /// The replication trigger at this capacity (80 % line in Fig. 5).
    pub trigger: u32,
}

/// Computes the Fig. 5 series: `n_max` and the trigger for each replica
/// count in `1..=l_hi`.
pub fn capacity_curve(
    params: &ModelParams,
    m: u32,
    u_threshold: f64,
    trigger_fraction: f64,
    l_hi: u32,
) -> Vec<CapacityPoint> {
    (1..=l_hi)
        .map(|l| {
            let cap = n_max(params, l, m, u_threshold);
            CapacityPoint {
                replicas: l,
                max_users: cap,
                trigger: replication_trigger(cap, trigger_fraction),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costfn::CostFn;

    /// Parameters with an analytically known capacity: own cost constant
    /// 1e-4 s/user, no shadow/NPC cost. T(1,n) = 1e-4·n < 0.04 ⇒ n_max=399.
    fn flat_params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Constant(0.25e-4),
            t_ua: CostFn::Constant(0.25e-4),
            t_aoi: CostFn::Constant(0.25e-4),
            t_su: CostFn::Constant(0.25e-4),
            ..ModelParams::default()
        }
    }

    /// Parameters with replication overhead: shadow cost grows with n so
    /// capacity saturates as replicas are added.
    fn saturating_params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Linear { c0: 1e-5, c1: 0.0 },
            t_ua: CostFn::Linear {
                c0: 4e-5,
                c1: 1.5e-7,
            },
            t_aoi: CostFn::Linear {
                c0: 3e-5,
                c1: 1.5e-7,
            },
            t_su: CostFn::Linear { c0: 2e-5, c1: 0.0 },
            t_fa_dser: CostFn::Linear { c0: 2e-6, c1: 1e-8 },
            t_fa: CostFn::Linear { c0: 2e-6, c1: 3e-8 },
            ..ModelParams::default()
        }
    }

    #[test]
    fn n_max_exact_for_flat_cost() {
        // T(1,n) = 1e-4·n; strict inequality T < 0.04 ⇒ n = 399.
        assert_eq!(n_max(&flat_params(), 1, 0, 0.04), 399);
    }

    #[test]
    fn n_max_zero_when_even_one_user_violates() {
        let p = ModelParams {
            t_ua: CostFn::Constant(1.0),
            ..ModelParams::default()
        };
        assert_eq!(n_max(&p, 1, 0, 0.04), 0);
    }

    #[test]
    fn n_max_monotone_in_threshold() {
        let p = saturating_params();
        let a = n_max(&p, 1, 0, 0.020);
        let b = n_max(&p, 1, 0, 0.040);
        let c = n_max(&p, 1, 0, 0.080);
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn n_max_monotone_in_replicas() {
        let p = saturating_params();
        let caps: Vec<u32> = (1..=6).map(|l| n_max(&p, l, 0, 0.040)).collect();
        for w in caps.windows(2) {
            assert!(
                w[1] >= w[0],
                "capacity must not shrink with replicas: {caps:?}"
            );
        }
    }

    #[test]
    fn n_max_unbounded_workload_hits_cap() {
        // Zero cost: every user count is fine; search returns the cap.
        let p = ModelParams::default();
        assert_eq!(n_max(&p, 1, 0, 0.04), N_SEARCH_CAP);
    }

    #[test]
    fn n_max_respects_strictness() {
        // T(1,n) = 1e-3·n, U = 0.01: T(10) = 0.01 is NOT < U ⇒ n_max = 9.
        let p = ModelParams {
            t_ua: CostFn::Constant(1e-3),
            ..ModelParams::default()
        };
        assert_eq!(n_max(&p, 1, 0, 0.01), 9);
    }

    #[test]
    fn l_max_one_when_c_is_one_and_overhead_high() {
        // Huge shadow cost: adding a replica cannot add a full n_max(1).
        let p = ModelParams {
            t_ua: CostFn::Constant(1e-4),
            t_fa: CostFn::Constant(1e-4),
            ..ModelParams::default()
        };
        let r = l_max(&p, 0, 0.04, 1.0);
        assert_eq!(r.l_max, 1);
        assert_eq!(r.capacity_per_replica.len(), 1);
    }

    #[test]
    fn l_max_grows_as_c_shrinks() {
        // Mirrors §V-A: smaller c accepts more replicas (c=0.05 gave 48,
        // c=0.15 gave 8 in the paper).
        let p = saturating_params();
        let tight = l_max(&p, 0, 0.04, 0.5);
        let loose = l_max(&p, 0, 0.04, 0.05);
        assert!(
            loose.l_max > tight.l_max,
            "c=0.05 ⇒ {} replicas, c=0.5 ⇒ {}",
            loose.l_max,
            tight.l_max
        );
    }

    #[test]
    fn l_max_unbounded_scaling_hits_search_cap() {
        // No replication overhead at all: capacity doubles forever, so only
        // the search cap stops the loop.
        let p = flat_params();
        let r = l_max(&p, 0, 0.04, 0.5);
        assert_eq!(r.l_max, L_SEARCH_CAP);
    }

    #[test]
    fn replica_limit_capacity_accessor() {
        let p = saturating_params();
        let r = l_max(&p, 0, 0.04, 0.15);
        assert_eq!(r.capacity(0), None);
        assert_eq!(r.capacity(1), Some(r.single_server_capacity));
        assert_eq!(r.capacity(r.l_max + 1), None);
    }

    #[test]
    fn trigger_is_floor_of_fraction() {
        // The paper: 80 % of 235 ⇒ 188.
        assert_eq!(replication_trigger(235, 0.8), 188);
        assert_eq!(replication_trigger(0, 0.8), 0);
        assert_eq!(replication_trigger(100, 1.0), 100);
    }

    #[test]
    fn capacity_curve_matches_n_max() {
        let p = saturating_params();
        let curve = capacity_curve(&p, 0, 0.04, 0.8, 4);
        assert_eq!(curve.len(), 4);
        for pt in &curve {
            assert_eq!(pt.max_users, n_max(&p, pt.replicas, 0, 0.04));
            assert_eq!(pt.trigger, replication_trigger(pt.max_users, 0.8));
        }
    }

    #[test]
    #[should_panic(expected = "0 < c <= 1")]
    fn l_max_rejects_bad_c() {
        l_max(&ModelParams::default(), 0, 0.04, 0.0);
    }
}
