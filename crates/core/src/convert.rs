//! Checked numeric conversions for model quantities.
//!
//! The model computes on `f64` but counts users, replicas and NPCs in
//! `u32`/`usize`/`u64`. A bare `as` cast at each boundary silently wraps or
//! truncates when an intermediate goes negative, NaN or out of range —
//! exactly the "small evaluation error becomes a wrong capacity decision"
//! failure mode this reproduction must not have. roia-lint rule **M2** bans
//! bare casts in `roia-model` and `rtf-rms`; these helpers (and
//! `From`/`TryFrom`) are the sanctioned replacements. Each states its
//! clamping behaviour in its name and documentation instead of hiding it in
//! cast semantics.
//!
//! This module is the one place in the model crates where `as` appears; the
//! sites carry justified `allow(cast)` annotations.

/// Widens a population count to `f64`.
///
/// Exact up to 2⁵³; populations are bounded far below that.
pub fn f64_from_usize(n: usize) -> f64 {
    n as f64 // lint: allow(cast, "usize→f64 is exact below 2^53; counts are far smaller")
}

/// Widens a tick count or id to `f64`.
///
/// Exact up to 2⁵³ (≈285 million years of 25 Hz ticks).
pub fn f64_from_u64(n: u64) -> f64 {
    n as f64 // lint: allow(cast, "u64→f64 is exact below 2^53; tick counts are far smaller")
}

/// Narrows a collection length to a `u32` population count, saturating.
///
/// A saturated result (> 4 billion users) is far past every other limit in
/// the model, so clamping is strictly better than wrapping.
pub fn count_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Widens a `u32` index to `usize` (lossless on every supported target).
pub fn usize_from_u32(n: u32) -> usize {
    n as usize // lint: allow(cast, "u32→usize is lossless on 32-/64-bit targets")
}

/// Floors a model quantity to a `u32` count: NaN and negatives become 0,
/// overflow saturates at `u32::MAX`.
///
/// Matches what `x.max(0.0) as u32` did, with the semantics in the name.
pub fn floor_u32(x: f64) -> u32 {
    x.floor() as u32 // lint: allow(cast, "float→int `as` saturates (NaN→0) since Rust 1.45 — the documented contract of this helper")
}

/// Ceils a model quantity to a `u32` count: NaN and negatives become 0,
/// overflow saturates at `u32::MAX`.
pub fn ceil_u32(x: f64) -> u32 {
    x.ceil() as u32 // lint: allow(cast, "float→int `as` saturates (NaN→0) since Rust 1.45 — the documented contract of this helper")
}

/// Rounds a model quantity to the nearest `u32` count: NaN and negatives
/// become 0, overflow saturates at `u32::MAX`.
pub fn round_u32(x: f64) -> u32 {
    x.round() as u32 // lint: allow(cast, "float→int `as` saturates (NaN→0) since Rust 1.45 — the documented contract of this helper")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_exact_for_model_ranges() {
        assert_eq!(f64_from_usize(300), 300.0);
        assert_eq!(f64_from_u64(7500), 7500.0);
        assert_eq!(f64_from_u64(1 << 53), 9007199254740992.0);
        assert_eq!(usize_from_u32(u32::MAX), 4294967295);
    }

    #[test]
    fn count_saturates_instead_of_wrapping() {
        assert_eq!(count_u32(42), 42);
        assert_eq!(count_u32(usize::MAX), u32::MAX);
    }

    #[test]
    fn float_to_count_clamps_the_bad_cases() {
        assert_eq!(floor_u32(2.9), 2);
        assert_eq!(ceil_u32(2.1), 3);
        assert_eq!(round_u32(2.5), 3);
        assert_eq!(floor_u32(-1.5), 0);
        assert_eq!(round_u32(f64::NAN), 0);
        assert_eq!(ceil_u32(1e300), u32::MAX);
        assert_eq!(floor_u32(f64::INFINITY), u32::MAX);
        assert_eq!(floor_u32(f64::NEG_INFINITY), 0);
    }
}
