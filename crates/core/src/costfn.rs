//! Cost functions: per-task CPU time as a function of the user count.
//!
//! Section III-C of the paper instantiates the model for a particular ROIA by
//! determining the application-specific parameters `t_ua_dser`, `t_ua`,
//! `t_fa_dser`, `t_fa`, `t_npc`, `t_aoi`, `t_su`, `t_mig_ini` and
//! `t_mig_rcv`, each approximated as a simple function of the user count
//! (linear or quadratic polynomials in the RTFDemo case study, §V-A). A
//! [`CostFn`] is one such approximation: it maps a user count to CPU
//! *seconds* spent on that task per entity per tick.

use serde::{Deserialize, Serialize};

/// A fitted approximation of one per-task CPU-time parameter.
///
/// Evaluation returns seconds; negative predictions (possible near x = 0
/// after a least-squares fit of noisy data) are clamped to zero by
/// [`CostFn::eval`], because a task can never have negative cost. Use
/// [`CostFn::eval_raw`] to inspect the unclamped polynomial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CostFn {
    /// A constant cost, independent of user count.
    Constant(f64),
    /// `c0 + c1·x` — the shape the paper fits for (de)serialization,
    /// forwarded inputs, state updates and migration costs.
    Linear {
        /// Intercept (seconds).
        c0: f64,
        /// Slope (seconds per user).
        c1: f64,
    },
    /// `c0 + c1·x + c2·x²` — the shape the paper fits for `t_ua` and
    /// `t_aoi`.
    Quadratic {
        /// Intercept (seconds).
        c0: f64,
        /// Linear coefficient.
        c1: f64,
        /// Quadratic coefficient.
        c2: f64,
    },
    /// Arbitrary polynomial `Σ coeffs[i]·xⁱ` for shapes beyond the paper's.
    Poly(Vec<f64>),
}

impl CostFn {
    /// A cost function that is identically zero (used for neglected terms,
    /// e.g. `t_npc` when a scenario has no NPCs, as in §III-A's "neglected
    /// for brevity").
    pub const ZERO: CostFn = CostFn::Constant(0.0);

    /// Builds a [`CostFn`] from fitted polynomial coefficients
    /// (lowest-order first), choosing the most specific variant.
    pub fn from_coefficients(coeffs: &[f64]) -> Self {
        match coeffs {
            [] => CostFn::Constant(0.0),
            [c0] => CostFn::Constant(*c0),
            [c0, c1] => CostFn::Linear { c0: *c0, c1: *c1 },
            [c0, c1, c2] => CostFn::Quadratic {
                c0: *c0,
                c1: *c1,
                c2: *c2,
            },
            _ => CostFn::Poly(coeffs.to_vec()),
        }
    }

    /// The polynomial coefficients, lowest-order first.
    pub fn coefficients(&self) -> Vec<f64> {
        match self {
            CostFn::Constant(c) => vec![*c],
            CostFn::Linear { c0, c1 } => vec![*c0, *c1],
            CostFn::Quadratic { c0, c1, c2 } => vec![*c0, *c1, *c2],
            CostFn::Poly(c) => c.clone(),
        }
    }

    /// Evaluates the raw polynomial at `x` (may be negative for
    /// extrapolations of noisy fits).
    pub fn eval_raw(&self, x: f64) -> f64 {
        match self {
            CostFn::Constant(c) => *c,
            CostFn::Linear { c0, c1 } => c0 + c1 * x,
            CostFn::Quadratic { c0, c1, c2 } => c0 + x * (c1 + c2 * x),
            CostFn::Poly(c) => c.iter().rev().fold(0.0, |acc, &k| acc * x + k),
        }
    }

    /// Evaluates the cost at user count `x`, clamped to be non-negative.
    pub fn eval(&self, x: f64) -> f64 {
        self.eval_raw(x).max(0.0)
    }

    /// Whether the function is non-decreasing on `[0, x_hi]`.
    ///
    /// The capacity search in [`crate::capacity`] relies on tick duration
    /// growing with the user count; this check lets callers validate fitted
    /// parameters before trusting binary-search results.
    pub fn is_non_decreasing_on(&self, x_hi: f64) -> bool {
        // Sample densely; cost functions are low-order polynomials, so 256
        // samples cannot miss a dip of any consequence.
        const SAMPLES: usize = 256;
        let mut prev = self.eval(0.0);
        for i in 1..=SAMPLES {
            let x =
                x_hi * crate::convert::f64_from_usize(i) / crate::convert::f64_from_usize(SAMPLES);
            let v = self.eval(x);
            if v < prev - 1e-15 {
                return false;
            }
            prev = v;
        }
        true
    }

    /// Scales the whole function by a constant factor (used by resource
    /// substitution to model a machine `speedup`× faster: costs divide by
    /// the speedup).
    pub fn scaled(&self, factor: f64) -> CostFn {
        let coeffs: Vec<f64> = self.coefficients().iter().map(|c| c * factor).collect();
        CostFn::from_coefficients(&coeffs)
    }
}

impl Default for CostFn {
    fn default() -> Self {
        CostFn::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_evaluates_everywhere() {
        let f = CostFn::Constant(2.5e-6);
        assert_eq!(f.eval(0.0), 2.5e-6);
        assert_eq!(f.eval(1e6), 2.5e-6);
    }

    #[test]
    fn linear_evaluates() {
        let f = CostFn::Linear { c0: 1.0, c1: 2.0 };
        assert_eq!(f.eval(3.0), 7.0);
    }

    #[test]
    fn quadratic_evaluates() {
        let f = CostFn::Quadratic {
            c0: 1.0,
            c1: 0.0,
            c2: 2.0,
        };
        assert_eq!(f.eval(3.0), 19.0);
    }

    #[test]
    fn poly_matches_quadratic() {
        let q = CostFn::Quadratic {
            c0: 1.0,
            c1: -2.0,
            c2: 0.5,
        };
        let p = CostFn::Poly(vec![1.0, -2.0, 0.5]);
        for i in 0..10 {
            let x = i as f64 * 7.3;
            assert!((q.eval_raw(x) - p.eval_raw(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_predictions_clamp_to_zero() {
        let f = CostFn::Linear { c0: -1.0, c1: 0.1 };
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval_raw(0.0), -1.0);
        assert!(f.eval(20.0) > 0.0);
    }

    #[test]
    fn from_coefficients_picks_variants() {
        assert_eq!(CostFn::from_coefficients(&[]), CostFn::Constant(0.0));
        assert_eq!(CostFn::from_coefficients(&[3.0]), CostFn::Constant(3.0));
        assert!(matches!(
            CostFn::from_coefficients(&[1.0, 2.0]),
            CostFn::Linear { .. }
        ));
        assert!(matches!(
            CostFn::from_coefficients(&[1.0, 2.0, 3.0]),
            CostFn::Quadratic { .. }
        ));
        assert!(matches!(
            CostFn::from_coefficients(&[1.0, 2.0, 3.0, 4.0]),
            CostFn::Poly(_)
        ));
    }

    #[test]
    fn coefficients_round_trip() {
        for coeffs in [
            vec![5.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0, 3.0],
            vec![1.0, 0.0, 0.0, 4.0],
        ] {
            let f = CostFn::from_coefficients(&coeffs);
            assert_eq!(f.coefficients(), coeffs);
        }
    }

    #[test]
    fn monotonicity_check() {
        assert!(CostFn::Linear { c0: 1.0, c1: 0.5 }.is_non_decreasing_on(1000.0));
        assert!(CostFn::Constant(1.0).is_non_decreasing_on(1000.0));
        // Downward parabola over the range is caught.
        assert!(!CostFn::Quadratic {
            c0: 0.0,
            c1: 1.0,
            c2: -0.01
        }
        .is_non_decreasing_on(1000.0));
        // Clamping makes a negative-slope line "flat at zero", which is
        // non-decreasing only if it never rises first.
        assert!(!CostFn::Linear { c0: 1.0, c1: -0.1 }.is_non_decreasing_on(100.0));
    }

    #[test]
    fn scaled_multiplies_all_coefficients() {
        let f = CostFn::Quadratic {
            c0: 1.0,
            c1: 2.0,
            c2: 3.0,
        };
        let g = f.scaled(0.5);
        assert!((g.eval(10.0) - 0.5 * f.eval(10.0)).abs() < 1e-12);
    }

    #[test]
    fn clone_preserves_value() {
        let f = CostFn::Quadratic {
            c0: 1e-4,
            c1: 2e-6,
            c2: 3e-9,
        };
        let g = f.clone();
        assert_eq!(f, g);
    }
}
