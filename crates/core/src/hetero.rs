//! Heterogeneous replication groups — the capacity math behind §IV's
//! *resource substitution*.
//!
//! Eq. (1) assumes identical replicas. After RTF-RMS substitutes one
//! machine with a more powerful resource, the group is mixed: server `i`
//! executes the same work `1/s_i` times faster (speedup `s_i ≥ 1`). Under
//! the per-entity decomposition of §III-A, server `i` owning `a_i` of the
//! zone's `n` users ticks in
//!
//! ```text
//! T_i = [ a_i·own(n) + (n − a_i)·fwd(n) + m_i·npc(n) ] / s_i
//! ```
//!
//! The best static allocation *equalizes* the ticks: setting all `T_i = T`
//! and `Σ a_i = n` yields
//!
//! ```text
//! T(n) = n · [ own(n) + (L−1)·fwd(n) ] / Σ s_i          (NPCs omitted)
//! a_i  = ( s_i·T − n·fwd(n) ) / ( own(n) − fwd(n) )
//! ```
//!
//! A very slow server may get a negative `a_i` (its whole budget is eaten
//! by shadow processing); it is then pinned to zero users and the system
//! re-solved over the rest. `n_max_hetero` searches for the largest `n`
//! whose equalized tick stays below `U` — with all speedups equal it
//! reduces exactly to Eq. (2).

use crate::params::ModelParams;

/// The equalized-tick allocation for `n` users over servers with the given
/// speedups. Returns `(shares, tick_seconds)`; shares sum to `n`.
pub fn equalized_allocation(params: &ModelParams, n: u32, speedups: &[f64]) -> (Vec<u32>, f64) {
    assert!(!speedups.is_empty(), "a group has at least one server");
    assert!(
        speedups.iter().all(|s| *s > 0.0),
        "speedups must be positive"
    );
    let nf = f64::from(n);
    let own = params.own_cost(nf);
    let fwd = params.shadow_cost(nf);

    // Active servers participate in the allocation; pinned ones only mirror.
    let mut active: Vec<usize> = (0..speedups.len()).collect();
    let mut shares_f = vec![0.0f64; speedups.len()];
    let mut tick;
    loop {
        let l_active = crate::convert::f64_from_usize(active.len());
        let speed_sum: f64 = active.iter().map(|&i| speedups[i]).sum();
        // Equal ticks over the active set (pinned servers own no users, so
        // they drop out of the Σa_i = n constraint entirely):
        // T = n·(own + (|A|−1)·fwd) / Σ_{i∈A} s_i.
        tick = nf * (own + (l_active - 1.0) * fwd) / speed_sum;
        if own <= fwd {
            // Degenerate costs: shadow as expensive as own — just split
            // proportionally to speed.
            for &i in &active {
                shares_f[i] = nf * speedups[i] / speed_sum;
            }
            break;
        }
        let mut pinned_any = false;
        for &i in &active {
            shares_f[i] = (speedups[i] * tick - nf * fwd) / (own - fwd);
        }
        // Pin servers whose share went negative and re-solve.
        let before = active.len();
        active.retain(|&i| {
            if shares_f[i] < 0.0 {
                shares_f[i] = 0.0;
                false
            } else {
                true
            }
        });
        pinned_any |= active.len() != before;
        if !pinned_any || active.is_empty() {
            break;
        }
    }

    // Round to integers while conserving n (largest remainders win).
    let mut shares: Vec<u32> = shares_f
        .iter()
        .map(|s| crate::convert::floor_u32(*s))
        .collect();
    let mut remainder = i64::from(n) - shares.iter().map(|&s| i64::from(s)).sum::<i64>();
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = shares_f[a] - shares_f[a].floor();
        let fb = shares_f[b] - shares_f[b].floor();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut k = 0;
    while remainder > 0 {
        shares[order[k % order.len()]] += 1;
        remainder -= 1;
        k += 1;
    }
    (shares, tick)
}

/// The worst per-server tick when `n` users are spread with the equalized
/// allocation (integer rounding makes ticks slightly unequal; this reports
/// the true maximum).
pub fn worst_tick_hetero(params: &ModelParams, n: u32, m: u32, speedups: &[f64]) -> f64 {
    let (shares, _) = equalized_allocation(params, n, speedups);
    let nf = f64::from(n);
    let own = params.own_cost(nf);
    let fwd = params.shadow_cost(nf);
    let npc = params.npc_cost(nf) * f64::from(m) / crate::convert::f64_from_usize(speedups.len());
    shares
        .iter()
        .zip(speedups)
        .map(|(&a, &s)| (f64::from(a) * own + (nf - f64::from(a)) * fwd + npc) / s)
        .fold(0.0, f64::max)
}

/// The heterogeneous analogue of Eq. (2): the largest `n` whose equalized
/// allocation keeps every server's tick below `u_threshold`.
pub fn n_max_hetero(params: &ModelParams, speedups: &[f64], m: u32, u_threshold: f64) -> u32 {
    assert!(u_threshold > 0.0);
    let over = |n: u32| worst_tick_hetero(params, n, m, speedups) >= u_threshold;
    if over(1) {
        return 0;
    }
    let mut hi = 2u32;
    while hi < crate::capacity::N_SEARCH_CAP && !over(hi) {
        hi = hi.saturating_mul(2);
    }
    if hi >= crate::capacity::N_SEARCH_CAP && !over(crate::capacity::N_SEARCH_CAP) {
        return crate::capacity::N_SEARCH_CAP;
    }
    let mut lo = hi / 2;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if over(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::n_max;
    use crate::costfn::CostFn;
    use crate::tick::{tick_duration, ZoneLoad};

    fn params() -> ModelParams {
        ModelParams {
            t_ua: CostFn::Linear { c0: 1e-4, c1: 2e-7 },
            t_fa: CostFn::Linear { c0: 8e-6, c1: 1e-8 },
            ..ModelParams::default()
        }
    }

    #[test]
    fn homogeneous_group_matches_eq2() {
        let p = params();
        for l in [1usize, 2, 4] {
            let speedups = vec![1.0; l];
            let hetero = n_max_hetero(&p, &speedups, 0, 0.040);
            let homo = n_max(&p, l as u32, 0, 0.040);
            assert!(
                hetero.abs_diff(homo) <= 1,
                "l = {l}: hetero {hetero} vs Eq. (2) {homo}"
            );
        }
    }

    #[test]
    fn shares_conserve_users() {
        let p = params();
        for n in [1u32, 7, 45, 200] {
            let (shares, _) = equalized_allocation(&p, n, &[1.0, 2.0, 1.5]);
            assert_eq!(shares.iter().sum::<u32>(), n, "n = {n}: {shares:?}");
        }
    }

    #[test]
    fn faster_server_gets_more_users() {
        let p = params();
        let (shares, _) = equalized_allocation(&p, 150, &[1.0, 2.0]);
        assert!(shares[1] > shares[0], "{shares:?}");
    }

    #[test]
    fn equalized_ticks_are_nearly_equal() {
        let p = params();
        let speedups = [1.0, 2.0, 1.3];
        let n = 200u32;
        let (shares, _) = equalized_allocation(&p, n, &speedups);
        let ticks: Vec<f64> = shares
            .iter()
            .zip(&speedups)
            .map(|(&a, &s)| {
                (a as f64 * p.own_cost(n as f64) + (n - a) as f64 * p.shadow_cost(n as f64)) / s
            })
            .collect();
        let hi = ticks.iter().cloned().fold(0.0, f64::max);
        let lo = ticks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (hi - lo) / hi < 0.05,
            "ticks should be near-equal: {ticks:?}"
        );
    }

    #[test]
    fn substitution_raises_capacity() {
        // Replacing one of two standard machines with a 2x machine must
        // increase the group's capacity — the §IV substitution premise.
        let p = params();
        let before = n_max_hetero(&p, &[1.0, 1.0], 0, 0.040);
        let after = n_max_hetero(&p, &[1.0, 2.0], 0, 0.040);
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn equalized_beats_equal_split_on_mixed_group() {
        // The naive equal split overloads the slow machine; the equalized
        // allocation's worst tick is strictly better.
        let p = params();
        let n = 240u32;
        let equal_split_worst = tick_duration(&p, ZoneLoad::new(2, n, 0), n / 2); // slow server, s = 1
        let hetero_worst = worst_tick_hetero(&p, n, 0, &[1.0, 3.0]);
        assert!(
            hetero_worst < equal_split_worst,
            "equalized {hetero_worst} vs equal-split-on-slow {equal_split_worst}"
        );
    }

    #[test]
    fn very_slow_server_is_pinned_to_zero() {
        // A server 50x slower than its peers cannot even afford the shadow
        // load at high n; the allocator pins it and the shares still sum.
        let p = ModelParams {
            t_ua: CostFn::Constant(1e-4),
            t_fa: CostFn::Constant(9e-5), // shadow nearly as dear as own
            ..ModelParams::default()
        };
        let n = 300u32;
        let (shares, _) = equalized_allocation(&p, n, &[0.02, 1.0, 1.0]);
        assert_eq!(shares.iter().sum::<u32>(), n);
        assert_eq!(shares[0], 0, "hopeless server pinned: {shares:?}");
    }

    #[test]
    fn single_server_reduces_to_plain_tick() {
        let p = params();
        let n = 100u32;
        let worst = worst_tick_hetero(&p, n, 0, &[1.0]);
        let plain = tick_duration(&p, ZoneLoad::new(1, n, 0), n);
        assert!((worst - plain).abs() < 1e-12);
    }
}
