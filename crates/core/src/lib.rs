//! # roia-model — the ROIA scalability model (ICPP 2013)
//!
//! A from-scratch implementation of the scalability model of Meiländer,
//! Köttinger and Gorlatch, *"A Scalability Model for Distributed Resource
//! Management in Real-Time Online Applications"* (ICPP 2013). The model
//! analyzes a Real-Time Online Interactive Application (ROIA — e.g. a
//! multiplayer online game) at runtime and predicts the effect of two
//! load-balancing actions on its tick duration:
//!
//! * **replication enactment** — adding a server that replicates a
//!   highly-frequented zone (Eq. (1)–(3): [`tick::tick_duration_equal`],
//!   [`capacity::n_max`], [`capacity::l_max`]), and
//! * **user migration** — moving users between replicas of the same zone
//!   (Eq. (4)–(5): [`tick::tick_duration`], [`migration::x_max_ini`],
//!   [`migration::x_max_rcv`], and the Listing-1 planner in [`planner`]).
//!
//! Parameters are calibrated from runtime measurements with the
//! Levenberg–Marquardt fitter of the companion `roia-fit` crate
//! ([`calibrate()`]).
//!
//! ## Quick start
//!
//! ```
//! use roia_model::{CostFn, ModelParams, ScalabilityModel};
//!
//! // Fitted per-task costs (seconds as functions of the zone user count).
//! let params = ModelParams {
//!     t_ua_dser: CostFn::Linear { c0: 8e-6, c1: 4e-9 },
//!     t_ua: CostFn::Quadratic { c0: 3e-5, c1: 2.4e-7, c2: 1.5e-10 },
//!     t_aoi: CostFn::Quadratic { c0: 2e-5, c1: 1.6e-7, c2: 1.1e-10 },
//!     t_su: CostFn::Linear { c0: 3e-5, c1: 6e-8 },
//!     t_fa_dser: CostFn::Linear { c0: 1e-6, c1: 4e-9 },
//!     t_fa: CostFn::Linear { c0: 1.5e-6, c1: 9e-9 },
//!     t_npc: CostFn::ZERO,
//!     t_mig_ini: CostFn::Linear { c0: 2e-4, c1: 6e-6 },
//!     t_mig_rcv: CostFn::Linear { c0: 1e-4, c1: 2.5e-6 },
//! };
//!
//! // 40 ms tick threshold (25 updates/s), replicas must add >= 15 % of the
//! // single-server capacity, replicate at 80 % of capacity.
//! let model = ScalabilityModel::new(params, 0.040)
//!     .with_improvement_factor(0.15)
//!     .with_trigger_fraction(0.8);
//!
//! let n1 = model.max_users(1, 0);           // single-server capacity
//! let limit = model.max_replicas(0);        // l_max
//! assert!(n1 > 0 && limit.l_max >= 1);
//! assert!(model.replication_trigger(1, 0) <= n1);
//! ```

#![warn(missing_docs)]

pub mod bandwidth;
pub mod calibrate;
pub mod capacity;
pub mod convert;
pub mod costfn;
pub mod hetero;
pub mod migration;
pub mod params;
pub mod persist;
pub mod planner;
pub mod tick;

pub use bandwidth::{n_max_joint, BandwidthParams};
pub use calibrate::{calibrate, calibrate_strict, Calibration, Measurements, ParamSamples};
pub use capacity::{
    capacity_curve, l_max, n_max, replication_trigger, CapacityPoint, ReplicaLimit,
};
pub use costfn::CostFn;
pub use hetero::{equalized_allocation, n_max_hetero, worst_tick_hetero};
pub use migration::{migration_curve, x_max_from_tick, x_max_ini, x_max_rcv, MigrationSide};
pub use params::{ModelParams, ParamKind};
pub use persist::{format_model, parse_model, PersistError};
pub use planner::{plan, plan_round, MigrationPlan, Move, PlannerConfig, Round};
pub use tick::{per_term_prediction, tick_duration, tick_duration_equal, ZoneLoad};

use serde::{Deserialize, Serialize};

/// The calibrated scalability model for one application: fitted parameters
/// plus the provider-chosen thresholds `U` (tick duration), `c` (minimum
/// improvement per replica) and the replication-trigger fraction.
///
/// This is the object RTF-RMS consults for every load-balancing decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityModel {
    /// The nine fitted cost parameters.
    pub params: ModelParams,
    /// Upper threshold `U` for the tick duration, in seconds (§III-C; 40 ms
    /// for a 25 Hz first-person shooter, up to 1.5 s for role-playing
    /// games).
    pub u_threshold: f64,
    /// Minimum-improvement factor `0 < c ≤ 1` of Eq. (3).
    pub improvement_factor: f64,
    /// Fraction of `n_max` at which replication is enacted (§V-A: 0.8).
    pub trigger_fraction: f64,
}

impl ScalabilityModel {
    /// Creates a model with the paper's defaults for `c` (0.15) and the
    /// trigger fraction (0.8).
    pub fn new(params: ModelParams, u_threshold: f64) -> Self {
        assert!(
            u_threshold > 0.0,
            "tick-duration threshold must be positive"
        );
        Self {
            params,
            u_threshold,
            improvement_factor: 0.15,
            trigger_fraction: 0.8,
        }
    }

    /// Sets the minimum-improvement factor `c` of Eq. (3).
    pub fn with_improvement_factor(mut self, c: f64) -> Self {
        assert!(
            c > 0.0 && c <= 1.0,
            "improvement factor must satisfy 0 < c <= 1"
        );
        self.improvement_factor = c;
        self
    }

    /// Sets the replication-trigger fraction (§V-A uses 0.8).
    pub fn with_trigger_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.trigger_fraction = fraction;
        self
    }

    /// Eq. (1): predicted tick duration with `n` users and `m` NPCs spread
    /// equally over `l` replicas.
    pub fn tick_equal(&self, l: u32, n: u32, m: u32) -> f64 {
        tick_duration_equal(&self.params, ZoneLoad::new(l, n, m))
    }

    /// Eq. (4): predicted tick duration for a server owning `active` of the
    /// zone's `n` users.
    pub fn tick(&self, l: u32, n: u32, m: u32, active: u32) -> f64 {
        tick_duration(&self.params, ZoneLoad::new(l, n, m), active)
    }

    /// Eq. (4) split per model term (indexed like [`ParamKind::ALL`]),
    /// with the per-migration terms charged for `mig_ini` initiated and
    /// `mig_rcv` received migrations this tick. The attribution side of
    /// the per-term residual fold.
    #[allow(clippy::too_many_arguments)]
    pub fn tick_terms(
        &self,
        l: u32,
        n: u32,
        m: u32,
        active: u32,
        mig_ini: u32,
        mig_rcv: u32,
    ) -> [f64; ParamKind::ALL.len()] {
        per_term_prediction(
            &self.params,
            ZoneLoad::new(l, n, m),
            active,
            mig_ini,
            mig_rcv,
        )
    }

    /// Eq. (2): maximum users on `l` replicas with `m` NPCs.
    pub fn max_users(&self, l: u32, m: u32) -> u32 {
        n_max(&self.params, l, m, self.u_threshold)
    }

    /// Eq. (3): the replica limit `l_max` and the capacity ladder.
    pub fn max_replicas(&self, m: u32) -> ReplicaLimit {
        l_max(&self.params, m, self.u_threshold, self.improvement_factor)
    }

    /// §V-A: the user count at which replication should be enacted for the
    /// current replica count `l`.
    pub fn replication_trigger(&self, l: u32, m: u32) -> u32 {
        replication_trigger(self.max_users(l, m), self.trigger_fraction)
    }

    /// Eq. (5): migrations per second a server owning `active` users may
    /// initiate.
    pub fn migrations_initiate(&self, l: u32, n: u32, m: u32, active: u32) -> u32 {
        x_max_ini(
            &self.params,
            ZoneLoad::new(l, n, m),
            active,
            self.u_threshold,
        )
    }

    /// Eq. (5): migrations per second a server owning `active` users may
    /// receive.
    pub fn migrations_receive(&self, l: u32, n: u32, m: u32, active: u32) -> u32 {
        x_max_rcv(
            &self.params,
            ZoneLoad::new(l, n, m),
            active,
            self.u_threshold,
        )
    }

    /// Plans the migrations that equalize `users` across the replicas of a
    /// zone with `m` NPCs (Listing 1, iterated as in Fig. 2).
    pub fn plan_migrations(&self, users: &[u32], m: u32) -> MigrationPlan {
        let config = PlannerConfig {
            u_threshold: self.u_threshold,
            npcs: m,
            max_rounds: 64,
        };
        plan(&self.params, users, &config)
    }

    /// Validates the fitted parameters for the monotonicity the capacity
    /// searches assume; returns offending parameters (empty = all good).
    pub fn validate(&self) -> Vec<ParamKind> {
        self.params.validate_monotone(10_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Linear { c0: 8e-6, c1: 4e-9 },
            t_ua: CostFn::Quadratic {
                c0: 3e-5,
                c1: 2.4e-7,
                c2: 1.5e-10,
            },
            t_aoi: CostFn::Quadratic {
                c0: 2e-5,
                c1: 1.6e-7,
                c2: 1.1e-10,
            },
            t_su: CostFn::Linear { c0: 3e-5, c1: 6e-8 },
            t_fa_dser: CostFn::Linear { c0: 1e-6, c1: 4e-9 },
            t_fa: CostFn::Linear {
                c0: 1.5e-6,
                c1: 9e-9,
            },
            t_npc: CostFn::ZERO,
            t_mig_ini: CostFn::Linear { c0: 2e-4, c1: 6e-6 },
            t_mig_rcv: CostFn::Linear {
                c0: 1e-4,
                c1: 2.5e-6,
            },
        }
    }

    #[test]
    fn model_facade_is_consistent_with_free_functions() {
        let model = ScalabilityModel::new(demo_params(), 0.040);
        assert_eq!(model.max_users(2, 0), n_max(&model.params, 2, 0, 0.040));
        assert_eq!(
            model.migrations_initiate(2, 100, 0, 60),
            x_max_ini(&model.params, ZoneLoad::new(2, 100, 0), 60, 0.040)
        );
        let t = model.tick_equal(2, 100, 0);
        assert!((t - tick_duration_equal(&model.params, ZoneLoad::new(2, 100, 0))).abs() < 1e-15);
    }

    #[test]
    fn trigger_below_capacity() {
        let model = ScalabilityModel::new(demo_params(), 0.040);
        let cap = model.max_users(1, 0);
        let trig = model.replication_trigger(1, 0);
        assert!(trig < cap);
        assert_eq!(trig, (cap as f64 * 0.8).floor() as u32);
    }

    #[test]
    fn replica_limit_has_increasing_capacities() {
        let model = ScalabilityModel::new(demo_params(), 0.040).with_improvement_factor(0.15);
        let limit = model.max_replicas(0);
        assert!(limit.l_max >= 2, "demo params should scale past one server");
        for w in limit.capacity_per_replica.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn plan_migrations_balances() {
        let model = ScalabilityModel::new(demo_params(), 0.040);
        let plan = model.plan_migrations(&[40, 10, 10], 0);
        assert!(plan.balanced);
        let after = plan.final_users().unwrap();
        assert_eq!(after.iter().sum::<u32>(), 60);
    }

    #[test]
    fn validation_accepts_demo_params() {
        let model = ScalabilityModel::new(demo_params(), 0.040);
        assert!(model.validate().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        ScalabilityModel::new(demo_params(), 0.0);
    }
}
