//! Migration-rate thresholds — Eq. (5) of the paper.
//!
//! Migrating a user costs CPU time on both ends: `t_mig_ini(n)` on the
//! source server and `t_mig_rcv(n)` on the target. Eq. (5) bounds how many
//! migrations a server may initiate/receive per second so that its tick
//! duration plus the migration overhead stays below the threshold `U`:
//!
//! ```text
//! x_max_ini(l,n,m,a,U) = max{ x ∈ ℕ | T(l,n,m,a) + x·t_mig_ini(n) < U }
//! x_max_rcv(l,n,m,a,U) = max{ x ∈ ℕ | T(l,n,m,a) + x·t_mig_rcv(n) < U }
//! ```

use crate::params::ModelParams;
use crate::tick::{tick_duration, ZoneLoad};

/// Direction of a migration threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationSide {
    /// The server initiates (sends) migrations.
    Initiate,
    /// The server receives migrations.
    Receive,
}

/// `max{ x ∈ ℕ | base + x·cost < threshold }` — the common core of Eq. (5).
///
/// Returns 0 when the base already violates the threshold. When the
/// per-migration cost is zero (degenerate fitted parameters) the count is
/// clamped to `u32::MAX`.
fn max_additional(base: f64, cost: f64, threshold: f64) -> u32 {
    let budget = threshold - base;
    if budget <= 0.0 {
        return 0;
    }
    if cost <= 0.0 {
        return u32::MAX;
    }
    // Strict inequality: the analytic answer is floor-ish of budget/cost,
    // but floating-point rounding can put it off by one in either
    // direction, so nudge against the actual comparison.
    let mut x = (budget / cost).floor();
    if x >= f64::from(u32::MAX) {
        return u32::MAX;
    }
    while x > 0.0 && base + x * cost >= threshold {
        x -= 1.0;
    }
    while base + (x + 1.0) * cost < threshold {
        x += 1.0;
        if x >= f64::from(u32::MAX) {
            return u32::MAX;
        }
    }
    crate::convert::floor_u32(x)
}

/// Eq. (5), initiate side, from a *predicted* tick duration: how many
/// migrations may a server with `active` of the zone's `users` initiate per
/// second without exceeding `u_threshold`.
pub fn x_max_ini(params: &ModelParams, load: ZoneLoad, active: u32, u_threshold: f64) -> u32 {
    let t = tick_duration(params, load, active);
    max_additional(t, params.t_mig_ini.eval(f64::from(load.users)), u_threshold)
}

/// Eq. (5), receive side. See [`x_max_ini`].
pub fn x_max_rcv(params: &ModelParams, load: ZoneLoad, active: u32, u_threshold: f64) -> u32 {
    let t = tick_duration(params, load, active);
    max_additional(t, params.t_mig_rcv.eval(f64::from(load.users)), u_threshold)
}

/// Eq. (5) evaluated from an *observed* tick duration instead of the
/// model-predicted one — this is how Fig. 7 presents the thresholds
/// ("number of user migrations for a given tick duration") and how RTF-RMS
/// applies them at runtime, where the monitored tick duration is available.
pub fn x_max_from_tick(
    params: &ModelParams,
    side: MigrationSide,
    observed_tick: f64,
    users: u32,
    u_threshold: f64,
) -> u32 {
    let cost = match side {
        MigrationSide::Initiate => params.t_mig_ini.eval(f64::from(users)),
        MigrationSide::Receive => params.t_mig_rcv.eval(f64::from(users)),
    };
    max_additional(observed_tick, cost, u_threshold)
}

/// One point of the Fig. 7 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPoint {
    /// The observed tick duration (seconds).
    pub tick: f64,
    /// Users on the server (the x in `t_mig_*(x)`).
    pub users: u32,
    /// Migrations the server may initiate per second.
    pub x_ini: u32,
    /// Migrations the server may receive per second.
    pub x_rcv: u32,
}

/// Computes the Fig. 7 curve: migration budgets across a range of tick
/// durations, with the user count supplied per tick sample (the paper's
/// figure varies both together, since tick duration is a function of load).
pub fn migration_curve(
    params: &ModelParams,
    samples: &[(f64, u32)],
    u_threshold: f64,
) -> Vec<MigrationPoint> {
    samples
        .iter()
        .map(|&(tick, users)| MigrationPoint {
            tick,
            users,
            x_ini: x_max_from_tick(params, MigrationSide::Initiate, tick, users, u_threshold),
            x_rcv: x_max_from_tick(params, MigrationSide::Receive, tick, users, u_threshold),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costfn::CostFn;

    fn params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Constant(1e-5),
            t_ua: CostFn::Constant(2e-5),
            t_aoi: CostFn::Constant(3e-5),
            t_su: CostFn::Constant(4e-5),
            t_fa_dser: CostFn::Constant(1e-6),
            t_fa: CostFn::Constant(1e-6),
            t_npc: CostFn::ZERO,
            t_mig_ini: CostFn::Constant(2e-3),
            t_mig_rcv: CostFn::Constant(5e-4),
        }
    }

    #[test]
    fn budget_formula_exact() {
        // base 0.030, cost 0.002, U 0.040: 0.030 + x·0.002 < 0.040 ⇒ x ≤ 4.
        assert_eq!(max_additional(0.030, 0.002, 0.040), 4);
    }

    #[test]
    fn strict_inequality_excludes_exact_hit() {
        // 0.030 + 5·0.002 = 0.040 is not < 0.040.
        assert_eq!(max_additional(0.030, 0.002, 0.040), 4);
        // With a slightly larger threshold, 5 fits.
        assert_eq!(max_additional(0.030, 0.002, 0.0401), 5);
    }

    #[test]
    fn overloaded_server_gets_zero_budget() {
        assert_eq!(max_additional(0.050, 0.002, 0.040), 0);
        assert_eq!(max_additional(0.040, 0.002, 0.040), 0);
    }

    #[test]
    fn zero_cost_gives_unbounded_budget() {
        assert_eq!(max_additional(0.01, 0.0, 0.04), u32::MAX);
    }

    #[test]
    fn receive_budget_exceeds_initiate_budget() {
        // The paper measured t_mig_ini > t_mig_rcv for RTFDemo, so a server
        // can receive more migrations than it can initiate at equal load.
        let p = params();
        let load = ZoneLoad::new(2, 100, 0);
        let ini = x_max_ini(&p, load, 50, 0.040);
        let rcv = x_max_rcv(&p, load, 50, 0.040);
        assert!(rcv > ini, "rcv {rcv} vs ini {ini}");
    }

    #[test]
    fn heavier_server_has_smaller_budget() {
        let p = params();
        let load = ZoneLoad::new(2, 200, 0);
        let heavy = x_max_ini(&p, load, 180, 0.040);
        let light = x_max_ini(&p, load, 20, 0.040);
        assert!(light > heavy, "light {light} vs heavy {heavy}");
    }

    #[test]
    fn observed_tick_variant_matches_predicted_variant() {
        let p = params();
        let load = ZoneLoad::new(2, 100, 0);
        let t = crate::tick::tick_duration(&p, load, 70);
        let from_model = x_max_ini(&p, load, 70, 0.040);
        let from_tick = x_max_from_tick(&p, MigrationSide::Initiate, t, load.users, 0.040);
        assert_eq!(from_model, from_tick);
    }

    #[test]
    fn paper_worked_example_shape() {
        // §V-A example: server A with 180 users at 35 ms can initiate only a
        // handful of migrations; server B with 80 users at 15 ms can receive
        // an order of magnitude more. Calibrate costs to reproduce
        // min{3, 34} = 3.
        let p = ModelParams {
            // t_mig_ini(180) ≈ 1.45 ms ⇒ (40−35)/1.45 ⇒ 3 migrations.
            t_mig_ini: CostFn::Linear {
                c0: 1e-4,
                c1: 7.5e-6,
            },
            // t_mig_rcv(80) ≈ 0.72 ms ⇒ (40−15)/0.72 ⇒ 34 migrations.
            t_mig_rcv: CostFn::Linear {
                c0: 1e-4,
                c1: 7.75e-6,
            },
            ..params()
        };
        let ini = x_max_from_tick(&p, MigrationSide::Initiate, 0.035, 180, 0.040);
        let rcv = x_max_from_tick(&p, MigrationSide::Receive, 0.015, 80, 0.040);
        assert_eq!(ini.min(rcv), ini, "the initiate side is the bottleneck");
        assert_eq!(ini, 3);
        assert_eq!(rcv, 34);
    }

    #[test]
    fn migration_curve_is_monotone_in_tick() {
        let p = params();
        let samples: Vec<(f64, u32)> = (0..=8).map(|i| (0.005 * i as f64, 100)).collect();
        let curve = migration_curve(&p, &samples, 0.040);
        for w in curve.windows(2) {
            assert!(w[1].x_ini <= w[0].x_ini);
            assert!(w[1].x_rcv <= w[0].x_rcv);
        }
        // At U itself the budget is zero.
        assert_eq!(curve.last().unwrap().x_ini, 0);
    }
}
