//! The full parameter set of the scalability model.
//!
//! [`ModelParams`] bundles the nine application-specific cost parameters of
//! §III: seven per-tick task costs (Eq. (1)/(4)) and the two migration costs
//! (Eq. (5)). All of them are [`CostFn`]s of the *total* user count `n` of
//! the zone, exactly as the paper fits them.

use crate::costfn::CostFn;
use serde::{Deserialize, Serialize};

/// Which model parameter a measurement or fit refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ParamKind {
    /// `t_ua_dser` — asynchronous reception + deserialization of one
    /// connected user's inputs (§III-A task 1.i).
    UaDser,
    /// `t_ua` — validating and applying one connected user's inputs
    /// (§III-A task 1.ii).
    Ua,
    /// `t_fa_dser` — reception + deserialization of one forwarded input
    /// from a shadow entity (§III-A task 2.i).
    FaDser,
    /// `t_fa` — applying one forwarded input (§III-A task 2.ii).
    Fa,
    /// `t_npc` — updating one NPC (§III-A task 3).
    Npc,
    /// `t_aoi` — computing the area of interest for one user
    /// (§III-A task 4.i).
    Aoi,
    /// `t_su` — computing + serializing the state update for one user
    /// (§III-A task 4.ii).
    Su,
    /// `t_mig_ini` — initiating one user migration (§III-B).
    MigIni,
    /// `t_mig_rcv` — receiving one user migration (§III-B).
    MigRcv,
}

impl ParamKind {
    /// All nine parameters, in the order the paper introduces them.
    pub const ALL: [ParamKind; 9] = [
        ParamKind::UaDser,
        ParamKind::Ua,
        ParamKind::FaDser,
        ParamKind::Fa,
        ParamKind::Npc,
        ParamKind::Aoi,
        ParamKind::Su,
        ParamKind::MigIni,
        ParamKind::MigRcv,
    ];

    /// The paper's symbol for the parameter (used in reports).
    pub fn symbol(&self) -> &'static str {
        match self {
            ParamKind::UaDser => "t_ua_dser",
            ParamKind::Ua => "t_ua",
            ParamKind::FaDser => "t_fa_dser",
            ParamKind::Fa => "t_fa",
            ParamKind::Npc => "t_npc",
            ParamKind::Aoi => "t_aoi",
            ParamKind::Su => "t_su",
            ParamKind::MigIni => "t_mig_ini",
            ParamKind::MigRcv => "t_mig_rcv",
        }
    }

    /// Polynomial degree §V-A chooses for this parameter's approximation
    /// function: quadratic for `t_ua` and `t_aoi`, linear for the rest.
    pub fn fit_degree(&self) -> usize {
        match self {
            ParamKind::Ua | ParamKind::Aoi => 2,
            _ => 1,
        }
    }
}

/// The application-specific parameters of the scalability model (§III-C).
///
/// Each field is the fitted CPU time *per entity per tick* (per migration
/// for the `mig` pair), as a function of the zone's total user count `n`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelParams {
    /// Deserialization of one connected user's inputs.
    pub t_ua_dser: CostFn,
    /// Validating + applying one connected user's inputs.
    pub t_ua: CostFn,
    /// Deserialization of one forwarded input.
    pub t_fa_dser: CostFn,
    /// Applying one forwarded input.
    pub t_fa: CostFn,
    /// Updating one NPC.
    pub t_npc: CostFn,
    /// Area-of-interest computation for one user.
    pub t_aoi: CostFn,
    /// State-update computation + serialization for one user.
    pub t_su: CostFn,
    /// Initiating one user migration.
    pub t_mig_ini: CostFn,
    /// Receiving one user migration.
    pub t_mig_rcv: CostFn,
}

impl ModelParams {
    /// Accesses a parameter by kind.
    pub fn get(&self, kind: ParamKind) -> &CostFn {
        match kind {
            ParamKind::UaDser => &self.t_ua_dser,
            ParamKind::Ua => &self.t_ua,
            ParamKind::FaDser => &self.t_fa_dser,
            ParamKind::Fa => &self.t_fa,
            ParamKind::Npc => &self.t_npc,
            ParamKind::Aoi => &self.t_aoi,
            ParamKind::Su => &self.t_su,
            ParamKind::MigIni => &self.t_mig_ini,
            ParamKind::MigRcv => &self.t_mig_rcv,
        }
    }

    /// Sets a parameter by kind.
    pub fn set(&mut self, kind: ParamKind, f: CostFn) {
        match kind {
            ParamKind::UaDser => self.t_ua_dser = f,
            ParamKind::Ua => self.t_ua = f,
            ParamKind::FaDser => self.t_fa_dser = f,
            ParamKind::Fa => self.t_fa = f,
            ParamKind::Npc => self.t_npc = f,
            ParamKind::Aoi => self.t_aoi = f,
            ParamKind::Su => self.t_su = f,
            ParamKind::MigIni => self.t_mig_ini = f,
            ParamKind::MigRcv => self.t_mig_rcv = f,
        }
    }

    /// The per-active-entity cost
    /// `t_ua_dser(n) + t_ua(n) + t_aoi(n) + t_su(n)` — the bracket
    /// multiplying `n/l` in Eq. (1) and `a` in Eq. (4).
    pub fn own_cost(&self, n: f64) -> f64 {
        self.t_ua_dser.eval(n) + self.t_ua.eval(n) + self.t_aoi.eval(n) + self.t_su.eval(n)
    }

    /// The per-shadow-entity cost `t_fa_dser(n) + t_fa(n)` — the bracket
    /// multiplying `(n − n/l)` in Eq. (1) and `(n − a)` in Eq. (4).
    pub fn shadow_cost(&self, n: f64) -> f64 {
        self.t_fa_dser.eval(n) + self.t_fa.eval(n)
    }

    /// The per-NPC cost `t_npc(n)`.
    pub fn npc_cost(&self, n: f64) -> f64 {
        self.t_npc.eval(n)
    }

    /// Validates that every per-tick cost function is non-negative and
    /// non-decreasing up to `n_hi` users, which the threshold searches in
    /// [`crate::capacity`] rely on. Returns the offending parameters.
    pub fn validate_monotone(&self, n_hi: f64) -> Vec<ParamKind> {
        ParamKind::ALL
            .iter()
            .copied()
            .filter(|k| !self.get(*k).is_non_decreasing_on(n_hi))
            .collect()
    }

    /// Scales every cost by `1 / speedup`, modelling the same application on
    /// a machine `speedup`× faster (used by the resource-substitution
    /// action of RTF-RMS, §IV).
    pub fn on_faster_machine(&self, speedup: f64) -> ModelParams {
        assert!(speedup > 0.0, "speedup must be positive");
        let s = 1.0 / speedup;
        let mut out = self.clone();
        for kind in ParamKind::ALL {
            out.set(kind, self.get(kind).scaled(s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Linear { c0: 1e-5, c1: 1e-8 },
            t_ua: CostFn::Quadratic {
                c0: 2e-5,
                c1: 1e-7,
                c2: 1e-10,
            },
            t_fa_dser: CostFn::Linear { c0: 1e-6, c1: 1e-9 },
            t_fa: CostFn::Linear { c0: 1e-6, c1: 2e-9 },
            t_npc: CostFn::Linear { c0: 5e-6, c1: 1e-9 },
            t_aoi: CostFn::Quadratic {
                c0: 1e-5,
                c1: 2e-7,
                c2: 5e-11,
            },
            t_su: CostFn::Linear { c0: 3e-5, c1: 5e-8 },
            t_mig_ini: CostFn::Linear { c0: 1e-3, c1: 1e-5 },
            t_mig_rcv: CostFn::Linear { c0: 5e-4, c1: 5e-6 },
        }
    }

    #[test]
    fn get_set_round_trip() {
        let mut p = ModelParams::default();
        for kind in ParamKind::ALL {
            let f = CostFn::Constant(kind as usize as f64 + 1.0);
            p.set(kind, f.clone());
            assert_eq!(p.get(kind), &f, "{}", kind.symbol());
        }
    }

    #[test]
    fn own_cost_is_sum_of_four_tasks() {
        let p = sample_params();
        let n = 100.0;
        let expected = p.t_ua_dser.eval(n) + p.t_ua.eval(n) + p.t_aoi.eval(n) + p.t_su.eval(n);
        assert!((p.own_cost(n) - expected).abs() < 1e-18);
    }

    #[test]
    fn shadow_cost_is_sum_of_two_tasks() {
        let p = sample_params();
        let n = 100.0;
        assert!((p.shadow_cost(n) - (p.t_fa_dser.eval(n) + p.t_fa.eval(n))).abs() < 1e-18);
    }

    #[test]
    fn validate_monotone_accepts_sane_params() {
        assert!(sample_params().validate_monotone(10_000.0).is_empty());
    }

    #[test]
    fn validate_monotone_flags_decreasing_param() {
        let mut p = sample_params();
        p.t_ua = CostFn::Linear { c0: 1.0, c1: -0.1 };
        assert_eq!(p.validate_monotone(1000.0), vec![ParamKind::Ua]);
    }

    #[test]
    fn faster_machine_scales_costs_down() {
        let p = sample_params();
        let q = p.on_faster_machine(2.0);
        assert!((q.own_cost(100.0) - p.own_cost(100.0) / 2.0).abs() < 1e-15);
        assert!((q.t_mig_ini.eval(50.0) - p.t_mig_ini.eval(50.0) / 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn faster_machine_rejects_zero_speedup() {
        sample_params().on_faster_machine(0.0);
    }

    #[test]
    fn param_kind_metadata() {
        assert_eq!(ParamKind::ALL.len(), 9);
        assert_eq!(ParamKind::Ua.fit_degree(), 2);
        assert_eq!(ParamKind::Aoi.fit_degree(), 2);
        assert_eq!(ParamKind::Su.fit_degree(), 1);
        assert_eq!(ParamKind::MigIni.symbol(), "t_mig_ini");
    }
}
