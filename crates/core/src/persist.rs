//! Persistence of calibrated models — a provider calibrates once per
//! application version (the §V-A campaign takes minutes on a testbed) and
//! reuses the fitted parameters across sessions.
//!
//! The format is a deliberately simple, diff-friendly `key = values` text
//! file (no external format crates in the dependency budget):
//!
//! ```text
//! roia-model v1
//! u_threshold = 0.04
//! improvement_factor = 0.15
//! trigger_fraction = 0.8
//! t_ua = 0.00012 3.6e-8 1.4e-10
//! ...
//! ```

use crate::costfn::CostFn;
use crate::params::{ModelParams, ParamKind};
use crate::ScalabilityModel;
use std::fmt;

/// Magic first line of the format.
const HEADER: &str = "roia-model v1";

/// Errors from [`parse_model`].
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The first line is not the expected header.
    BadHeader,
    /// A line is not `key = values`.
    BadLine(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A required key is missing.
    MissingKey(&'static str),
    /// The same key appears twice.
    DuplicateKey(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "missing '{HEADER}' header"),
            PersistError::BadLine(l) => write!(f, "malformed line: {l}"),
            PersistError::BadNumber(v) => write!(f, "malformed number: {v}"),
            PersistError::MissingKey(k) => write!(f, "missing key: {k}"),
            PersistError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serializes a model to the text format.
pub fn format_model(model: &ScalabilityModel) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("u_threshold = {}\n", model.u_threshold));
    out.push_str(&format!(
        "improvement_factor = {}\n",
        model.improvement_factor
    ));
    out.push_str(&format!("trigger_fraction = {}\n", model.trigger_fraction));
    for kind in ParamKind::ALL {
        let coeffs = model.params.get(kind).coefficients();
        let values: Vec<String> = coeffs.iter().map(|c| format!("{c}")).collect();
        out.push_str(&format!("{} = {}\n", kind.symbol(), values.join(" ")));
    }
    out
}

fn kind_for(symbol: &str) -> Option<ParamKind> {
    ParamKind::ALL
        .iter()
        .copied()
        .find(|k| k.symbol() == symbol)
}

/// Parses a model from the text format.
pub fn parse_model(text: &str) -> Result<ScalabilityModel, PersistError> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    if lines.next() != Some(HEADER) {
        return Err(PersistError::BadHeader);
    }

    let mut u_threshold: Option<f64> = None;
    let mut improvement: Option<f64> = None;
    let mut trigger: Option<f64> = None;
    let mut params = ModelParams::default();
    let mut seen: Vec<String> = Vec::new();

    for line in lines {
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| PersistError::BadLine(line.to_owned()))?;
        let key = key.trim();
        let value = value.trim();
        if seen.iter().any(|s| s == key) {
            return Err(PersistError::DuplicateKey(key.to_owned()));
        }
        seen.push(key.to_owned());

        let parse_one = |v: &str| -> Result<f64, PersistError> {
            v.parse::<f64>()
                .map_err(|_| PersistError::BadNumber(v.to_owned()))
        };
        match key {
            "u_threshold" => u_threshold = Some(parse_one(value)?),
            "improvement_factor" => improvement = Some(parse_one(value)?),
            "trigger_fraction" => trigger = Some(parse_one(value)?),
            symbol => {
                let kind =
                    kind_for(symbol).ok_or_else(|| PersistError::BadLine(line.to_owned()))?;
                let coeffs: Result<Vec<f64>, PersistError> =
                    value.split_whitespace().map(parse_one).collect();
                params.set(kind, CostFn::from_coefficients(&coeffs?));
            }
        }
    }

    let model = ScalabilityModel::new(
        params,
        u_threshold.ok_or(PersistError::MissingKey("u_threshold"))?,
    )
    .with_improvement_factor(improvement.ok_or(PersistError::MissingKey("improvement_factor"))?)
    .with_trigger_fraction(trigger.ok_or(PersistError::MissingKey("trigger_fraction"))?);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ScalabilityModel {
        let params = ModelParams {
            t_ua: CostFn::Quadratic {
                c0: 1.2e-4,
                c1: 3.6e-8,
                c2: 1.4e-10,
            },
            t_su: CostFn::Linear {
                c0: 8e-8,
                c1: 6.2e-8,
            },
            t_mig_ini: CostFn::Linear { c0: 2e-4, c1: 7e-6 },
            ..ModelParams::default()
        };
        ScalabilityModel::new(params, 0.040)
            .with_improvement_factor(0.15)
            .with_trigger_fraction(0.8)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let m = model();
        let text = format_model(&m);
        let parsed = parse_model(&text).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn round_trip_preserves_thresholds() {
        let m = model();
        let parsed = parse_model(&format_model(&m)).unwrap();
        assert_eq!(parsed.u_threshold, 0.040);
        assert_eq!(parsed.improvement_factor, 0.15);
        assert_eq!(parsed.trigger_fraction, 0.8);
        assert_eq!(parsed.max_users(1, 0), m.max_users(1, 0));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut text = String::from("roia-model v1\n\n# a comment\n");
        text.push_str("u_threshold = 0.04\nimprovement_factor = 0.15\ntrigger_fraction = 0.8\n");
        text.push_str("t_ua = 1e-4\n");
        let m = parse_model(&text).unwrap();
        assert_eq!(m.params.t_ua, CostFn::Constant(1e-4));
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(parse_model("nope\n"), Err(PersistError::BadHeader));
        assert_eq!(parse_model(""), Err(PersistError::BadHeader));
    }

    #[test]
    fn malformed_line_rejected() {
        let text = "roia-model v1\nu_threshold 0.04\n";
        assert!(matches!(parse_model(text), Err(PersistError::BadLine(_))));
    }

    #[test]
    fn unknown_key_rejected() {
        let text = "roia-model v1\nt_quux = 1.0\n";
        assert!(matches!(parse_model(text), Err(PersistError::BadLine(_))));
    }

    #[test]
    fn bad_number_rejected() {
        let text = "roia-model v1\nu_threshold = fast\n";
        assert!(matches!(parse_model(text), Err(PersistError::BadNumber(_))));
    }

    #[test]
    fn missing_threshold_rejected() {
        let text = "roia-model v1\nimprovement_factor = 0.15\ntrigger_fraction = 0.8\n";
        assert_eq!(
            parse_model(text),
            Err(PersistError::MissingKey("u_threshold"))
        );
    }

    #[test]
    fn duplicate_key_rejected() {
        let text = "roia-model v1\nu_threshold = 0.04\nu_threshold = 0.05\n";
        assert!(matches!(
            parse_model(text),
            Err(PersistError::DuplicateKey(_))
        ));
    }
}
