//! The RTF-RMS user-migration planner — Listing 1 and Fig. 2 of the paper.
//!
//! Given the replicas of one zone and their current user counts, the planner
//! equalizes load by migrating users from the most loaded server `s_max` to
//! the underloaded ones, but never schedules more migrations per second than
//! Eq. (5) allows on either end. Because those budgets may be too small to
//! equalize in one second, planning proceeds in *rounds* (one round ≈ one
//! second of migration work); Fig. 2 shows a two-round rebalancing of 45
//! users across three replicas.

use crate::migration::{x_max_ini, x_max_rcv};
use crate::params::ModelParams;
use crate::tick::ZoneLoad;

/// Identifier of a replica within a zone (index into the planner input).
pub type ReplicaIdx = usize;

/// A single scheduled migration batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Source replica (the round's `s_max`).
    pub from: ReplicaIdx,
    /// Target replica.
    pub to: ReplicaIdx,
    /// Number of users to migrate.
    pub users: u32,
}

/// One second's worth of migrations (one execution of Listing 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Round {
    /// The migrations of this round.
    pub moves: Vec<Move>,
    /// User counts per replica *after* applying the round.
    pub resulting_users: Vec<u32>,
}

impl Round {
    /// Total users moved in this round.
    pub fn total_moved(&self) -> u32 {
        self.moves.iter().map(|m| m.users).sum()
    }
}

/// A complete migration plan: the rounds needed to balance the zone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MigrationPlan {
    /// Rounds in execution order.
    pub rounds: Vec<Round>,
    /// Whether the plan ends in a balanced state (every replica within one
    /// user of the average); `false` means the per-round budgets reached a
    /// fixed point first (e.g. an overloaded server with zero initiate
    /// budget).
    pub balanced: bool,
}

impl MigrationPlan {
    /// Total users moved across all rounds.
    pub fn total_moved(&self) -> u32 {
        self.rounds.iter().map(Round::total_moved).sum()
    }

    /// Final user counts (or `None` for an empty plan).
    pub fn final_users(&self) -> Option<&[u32]> {
        self.rounds.last().map(|r| r.resulting_users.as_slice())
    }
}

/// Configuration for the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Tick-duration threshold `U` (seconds).
    pub u_threshold: f64,
    /// Number of NPCs in the zone.
    pub npcs: u32,
    /// Upper bound on planning rounds (safety against pathological budgets).
    pub max_rounds: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            u_threshold: 0.040,
            npcs: 0,
            max_rounds: 64,
        }
    }
}

/// Is the distribution balanced, i.e. every count within one user of the
/// integer average? (Perfect equality is impossible when `n` is not
/// divisible by the replica count.)
fn is_balanced(users: &[u32]) -> bool {
    let n: u32 = users.iter().sum();
    let avg = n / crate::convert::count_u32(users.len());
    users
        .iter()
        .all(|&u| u >= avg.saturating_sub(1) && u <= avg + 1)
}

/// One execution of Listing 1: select `s_max`, compute the Eq. (5) budgets
/// and schedule migrations toward the underloaded replicas.
///
/// Returns `None` when the distribution is already balanced or no migration
/// is possible this round (zero budgets).
pub fn plan_round(params: &ModelParams, users: &[u32], config: &PlannerConfig) -> Option<Round> {
    assert!(!users.is_empty(), "a zone has at least one replica");
    if users.len() == 1 || is_balanced(users) {
        return None;
    }

    let n: u32 = users.iter().sum();
    let l = crate::convert::count_u32(users.len());
    let load = ZoneLoad {
        replicas: l,
        users: n,
        npcs: config.npcs,
    };
    let avg = n / l; // integer division, as in Listing 1

    // s_max: replica with the highest user count.
    let (s_max, &s_max_users) = users
        .iter()
        .enumerate()
        .max_by_key(|&(_, u)| u)
        .expect("non-empty");

    // (i) deviation of each server's user count from the average;
    // (ii) x_max_ini for s_max; (iii) x_max_rcv for each remaining server.
    let mut ini_budget = x_max_ini(params, load, s_max_users, config.u_threshold);
    if ini_budget == 0 {
        return None;
    }
    // The source must not be drained below the average.
    let mut surplus = s_max_users - avg;

    let mut moves = Vec::new();
    let mut resulting = users.to_vec();
    for (i, &u) in users.iter().enumerate() {
        if i == s_max || ini_budget == 0 || surplus == 0 {
            continue;
        }
        let deficit = avg.saturating_sub(u); // d[i] > 0 ⇒ underloaded
        if deficit == 0 {
            continue;
        }
        let rcv_budget = x_max_rcv(params, load, u, config.u_threshold);
        let k = deficit.min(rcv_budget).min(ini_budget).min(surplus);
        if k == 0 {
            continue;
        }
        moves.push(Move {
            from: s_max,
            to: i,
            users: k,
        });
        resulting[s_max] -= k;
        resulting[i] += k;
        ini_budget -= k;
        surplus -= k;
    }

    if moves.is_empty() {
        None
    } else {
        Some(Round {
            moves,
            resulting_users: resulting,
        })
    }
}

/// Plans rounds until the zone is balanced, the budgets reach a fixed point,
/// or `max_rounds` is hit (Fig. 2's scenario completes in two rounds).
pub fn plan(params: &ModelParams, users: &[u32], config: &PlannerConfig) -> MigrationPlan {
    let mut current = users.to_vec();
    let mut rounds = Vec::new();
    for _ in 0..config.max_rounds {
        match plan_round(params, &current, config) {
            Some(round) => {
                current = round.resulting_users.clone();
                rounds.push(round);
            }
            None => break,
        }
    }
    let balanced = is_balanced(&current);
    MigrationPlan { rounds, balanced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costfn::CostFn;

    /// Parameters with generous budgets: everything balances in one round.
    fn fast_params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Constant(1e-6),
            t_ua: CostFn::Constant(1e-6),
            t_aoi: CostFn::Constant(1e-6),
            t_su: CostFn::Constant(1e-6),
            t_mig_ini: CostFn::Constant(1e-5),
            t_mig_rcv: CostFn::Constant(1e-5),
            ..ModelParams::default()
        }
    }

    /// Parameters tuned so a 45-user/3-replica zone needs two rounds, the
    /// Fig. 2 scenario: s_max can initiate only 5 migrations per round.
    fn fig2_params() -> ModelParams {
        ModelParams {
            // own cost: 25 users → tick = 25·1.32e-3 = 33 ms; budget 7 ms.
            t_ua_dser: CostFn::Constant(0.33e-3),
            t_ua: CostFn::Constant(0.33e-3),
            t_aoi: CostFn::Constant(0.33e-3),
            t_su: CostFn::Constant(0.33e-3),
            // 7 ms / 1.2 ms ⇒ 5 initiations per round.
            t_mig_ini: CostFn::Constant(1.2e-3),
            // receivers are far cheaper, they are not the bottleneck.
            t_mig_rcv: CostFn::Constant(0.1e-3),
            ..ModelParams::default()
        }
    }

    fn conservation_holds(initial: &[u32], plan: &MigrationPlan) {
        let before: u32 = initial.iter().sum();
        if let Some(after) = plan.final_users() {
            assert_eq!(before, after.iter().sum::<u32>(), "users must be conserved");
        }
    }

    #[test]
    fn balanced_input_needs_no_plan() {
        let p = fast_params();
        let plan = plan(&p, &[15, 15, 15], &PlannerConfig::default());
        assert!(plan.rounds.is_empty());
        assert!(plan.balanced);
    }

    #[test]
    fn single_replica_never_migrates() {
        let p = fast_params();
        assert!(plan_round(&p, &[100], &PlannerConfig::default()).is_none());
    }

    #[test]
    fn one_round_suffices_with_large_budgets() {
        let p = fast_params();
        let initial = [45, 0, 0];
        let result = plan(&p, &initial, &PlannerConfig::default());
        assert!(result.balanced);
        assert_eq!(result.rounds.len(), 1);
        let after = result.final_users().unwrap();
        assert_eq!(after, &[15, 15, 15]);
        conservation_holds(&initial, &result);
    }

    #[test]
    fn fig2_scenario_takes_two_rounds() {
        // 45 users on [25, 12, 8]: average 15; s_max can initiate only 5
        // per round ⇒ round 1 moves 5 (to [20, 13, 12] or similar), round 2
        // moves the remaining 5.
        let p = fig2_params();
        let initial = [25u32, 12, 8];
        let result = plan(&p, &initial, &PlannerConfig::default());
        assert!(result.balanced, "plan: {result:?}");
        assert_eq!(result.rounds.len(), 2, "plan: {result:?}");
        assert_eq!(result.rounds[0].total_moved(), 5);
        assert_eq!(result.rounds[1].total_moved(), 5);
        assert_eq!(result.final_users().unwrap(), &[15, 15, 15]);
        conservation_holds(&initial, &result);
    }

    #[test]
    fn every_round_migrates_from_the_most_loaded() {
        let p = fig2_params();
        let result = plan(&p, &[25, 12, 8], &PlannerConfig::default());
        for round in &result.rounds {
            let froms: Vec<_> = round.moves.iter().map(|m| m.from).collect();
            assert!(froms.iter().all(|&f| f == froms[0]), "one source per round");
        }
    }

    #[test]
    fn source_never_drained_below_average() {
        let p = fast_params();
        let initial = [30u32, 14, 14, 14]; // avg = 18
        let result = plan(&p, &initial, &PlannerConfig::default());
        for round in &result.rounds {
            let n: u32 = round.resulting_users.iter().sum();
            let avg = n / round.resulting_users.len() as u32;
            for m in &round.moves {
                assert!(round.resulting_users[m.from] >= avg);
            }
        }
        conservation_holds(&initial, &result);
    }

    #[test]
    fn zero_initiate_budget_stalls_plan() {
        // Overloaded server already past U: Eq. (5) gives a zero budget, so
        // the plan cannot proceed (RTF-RMS would escalate to replication
        // enactment instead).
        let p = ModelParams {
            t_ua: CostFn::Constant(1e-2), // 25 users ⇒ 250 ms ≫ U
            t_mig_ini: CostFn::Constant(1e-3),
            t_mig_rcv: CostFn::Constant(1e-3),
            ..ModelParams::default()
        };
        let result = plan(&p, &[25, 5, 5], &PlannerConfig::default());
        assert!(result.rounds.is_empty());
        assert!(!result.balanced);
    }

    #[test]
    fn receive_budget_caps_individual_targets() {
        // Make receiving expensive so each target accepts at most 2/round.
        let p = ModelParams {
            t_ua_dser: CostFn::Constant(1e-6),
            t_mig_ini: CostFn::Constant(1e-4),
            t_mig_rcv: CostFn::Constant(1.5e-2), // 40 ms / 15 ms ⇒ 2 per round
            ..ModelParams::default()
        };
        let result = plan(&p, &[20, 4, 6], &PlannerConfig::default());
        for round in &result.rounds {
            for m in &round.moves {
                assert!(m.users <= 2, "receive cap violated: {m:?}");
            }
        }
    }

    #[test]
    fn max_rounds_bounds_work() {
        let p = fig2_params();
        let config = PlannerConfig {
            max_rounds: 1,
            ..PlannerConfig::default()
        };
        let result = plan(&p, &[25, 12, 8], &config);
        assert_eq!(result.rounds.len(), 1);
        assert!(!result.balanced);
    }

    #[test]
    fn near_balanced_distribution_accepted() {
        // 46 users on 3 replicas can never be exactly equal; [16,15,15] is
        // balanced within one user.
        let p = fast_params();
        let result = plan(&p, &[16, 15, 15], &PlannerConfig::default());
        assert!(result.rounds.is_empty());
        assert!(result.balanced);
    }

    #[test]
    fn two_overloaded_servers_converge_over_rounds() {
        let p = fast_params();
        let initial = [40u32, 40, 4, 4];
        let result = plan(&p, &initial, &PlannerConfig::default());
        assert!(result.balanced, "plan: {result:?}");
        conservation_holds(&initial, &result);
        let after = result.final_users().unwrap();
        let avg = 88 / 4;
        for &u in after {
            assert!(u >= avg - 1 && u <= avg + 1, "{after:?}");
        }
    }
}
