//! Tick-duration prediction — Eq. (1) and Eq. (4) of the paper.
//!
//! One iteration of the real-time loop (§II) receives user inputs, computes
//! the new application state and sends state updates. With `n` users and `m`
//! NPCs spread over `l` replicas of one zone, the model predicts the CPU
//! time of that iteration on one server.

use crate::params::ModelParams;

/// Workload of a single zone: total users, NPCs and replica count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneLoad {
    /// Number of replicas `l ≥ 1` processing the zone.
    pub replicas: u32,
    /// Total number of users `n` connected to the zone (across replicas).
    pub users: u32,
    /// Total number of NPCs `m` in the zone.
    pub npcs: u32,
}

impl ZoneLoad {
    /// Convenience constructor.
    pub fn new(replicas: u32, users: u32, npcs: u32) -> Self {
        assert!(
            replicas >= 1,
            "a zone is always processed by at least one server"
        );
        Self {
            replicas,
            users,
            npcs,
        }
    }
}

/// Eq. (1): predicted tick duration (seconds) of one server when users and
/// NPCs are distributed *equally* on all `l` replicas:
///
/// ```text
/// T(l,n,m) = n/l · (t_ua_dser + t_ua + t_aoi + t_su)(n)
///          + (n − n/l) · (t_fa_dser + t_fa)(n)
///          + m/l · t_npc(n)
/// ```
pub fn tick_duration_equal(params: &ModelParams, load: ZoneLoad) -> f64 {
    let l = f64::from(load.replicas);
    let n = f64::from(load.users);
    let m = f64::from(load.npcs);
    let active = n / l;
    active * params.own_cost(n)
        + (n - active) * params.shadow_cost(n)
        + (m / l) * params.npc_cost(n)
}

/// Eq. (4): predicted tick duration (seconds) of one server that owns
/// `active` of the zone's `n` users (non-equal distribution):
///
/// ```text
/// T(l,n,m,a) = a · (t_ua_dser + t_ua + t_aoi + t_su)(n)
///            + (n − a) · (t_fa_dser + t_fa)(n)
///            + m/l · t_npc(n)
/// ```
///
/// `active` is clamped to `n`: a server can never own more active entities
/// than the zone has users.
pub fn tick_duration(params: &ModelParams, load: ZoneLoad, active: u32) -> f64 {
    let a = f64::from(active.min(load.users));
    let n = f64::from(load.users);
    let m = f64::from(load.npcs);
    a * params.own_cost(n)
        + (n - a) * params.shadow_cost(n)
        + (m / f64::from(load.replicas)) * params.npc_cost(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costfn::CostFn;

    fn params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Constant(1e-5),
            t_ua: CostFn::Constant(2e-5),
            t_fa_dser: CostFn::Constant(1e-6),
            t_fa: CostFn::Constant(1e-6),
            t_npc: CostFn::Constant(4e-6),
            t_aoi: CostFn::Constant(3e-5),
            t_su: CostFn::Constant(4e-5),
            t_mig_ini: CostFn::ZERO,
            t_mig_rcv: CostFn::ZERO,
        }
    }

    #[test]
    fn single_replica_has_no_shadow_term() {
        // With l = 1 every user is active: T = n·own + m·npc.
        let p = params();
        let t = tick_duration_equal(&p, ZoneLoad::new(1, 100, 10));
        let expected = 100.0 * 1e-4 + 10.0 * 4e-6;
        assert!((t - expected).abs() < 1e-12, "{t} vs {expected}");
    }

    #[test]
    fn two_replicas_split_active_entities() {
        let p = params();
        let t = tick_duration_equal(&p, ZoneLoad::new(2, 100, 10));
        // 50 active · own + 50 shadow · fwd + 5 NPCs
        let expected = 50.0 * 1e-4 + 50.0 * 2e-6 + 5.0 * 4e-6;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn eq1_is_special_case_of_eq4() {
        // With a = n/l, Eq. (4) must reduce to Eq. (1).
        let p = params();
        let load = ZoneLoad::new(4, 200, 40);
        let t1 = tick_duration_equal(&p, load);
        let t4 = tick_duration(&p, load, 50);
        assert!((t1 - t4).abs() < 1e-12);
    }

    #[test]
    fn more_replicas_reduce_tick_at_fixed_n() {
        // The own-cost per server shrinks while shadow cost grows; with own
        // cost dominating (as in any sane ROIA), more replicas means a
        // shorter tick.
        let p = params();
        let t1 = tick_duration_equal(&p, ZoneLoad::new(1, 300, 0));
        let t2 = tick_duration_equal(&p, ZoneLoad::new(2, 300, 0));
        let t4 = tick_duration_equal(&p, ZoneLoad::new(4, 300, 0));
        assert!(t1 > t2 && t2 > t4, "{t1} {t2} {t4}");
    }

    #[test]
    fn overloaded_server_has_longer_tick_than_equal_share() {
        let p = params();
        let load = ZoneLoad::new(3, 45, 0);
        let equal = tick_duration_equal(&p, load);
        let heavy = tick_duration(&p, load, 25);
        let light = tick_duration(&p, load, 8);
        assert!(heavy > equal, "owning 25 of 45 is worse than owning 15");
        assert!(light < equal, "owning 8 of 45 is better than owning 15");
    }

    #[test]
    fn active_clamped_to_users() {
        let p = params();
        let load = ZoneLoad::new(2, 10, 0);
        assert_eq!(tick_duration(&p, load, 99), tick_duration(&p, load, 10));
    }

    #[test]
    fn zero_users_zero_tick() {
        let p = params();
        assert_eq!(tick_duration_equal(&p, ZoneLoad::new(1, 0, 0)), 0.0);
    }

    #[test]
    fn npc_term_scales_with_replicas() {
        let p = params();
        let t1 = tick_duration_equal(&p, ZoneLoad::new(1, 0, 100));
        let t2 = tick_duration_equal(&p, ZoneLoad::new(2, 0, 100));
        assert!(
            (t1 - 2.0 * t2).abs() < 1e-12,
            "NPCs split equally on replicas"
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_replicas_rejected() {
        ZoneLoad::new(0, 10, 0);
    }
}
