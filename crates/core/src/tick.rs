//! Tick-duration prediction — Eq. (1) and Eq. (4) of the paper.
//!
//! One iteration of the real-time loop (§II) receives user inputs, computes
//! the new application state and sends state updates. With `n` users and `m`
//! NPCs spread over `l` replicas of one zone, the model predicts the CPU
//! time of that iteration on one server.

use crate::params::{ModelParams, ParamKind};

/// Workload of a single zone: total users, NPCs and replica count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneLoad {
    /// Number of replicas `l ≥ 1` processing the zone.
    pub replicas: u32,
    /// Total number of users `n` connected to the zone (across replicas).
    pub users: u32,
    /// Total number of NPCs `m` in the zone.
    pub npcs: u32,
}

impl ZoneLoad {
    /// Convenience constructor.
    pub fn new(replicas: u32, users: u32, npcs: u32) -> Self {
        assert!(
            replicas >= 1,
            "a zone is always processed by at least one server"
        );
        Self {
            replicas,
            users,
            npcs,
        }
    }
}

/// Eq. (1): predicted tick duration (seconds) of one server when users and
/// NPCs are distributed *equally* on all `l` replicas:
///
/// ```text
/// T(l,n,m) = n/l · (t_ua_dser + t_ua + t_aoi + t_su)(n)
///          + (n − n/l) · (t_fa_dser + t_fa)(n)
///          + m/l · t_npc(n)
/// ```
pub fn tick_duration_equal(params: &ModelParams, load: ZoneLoad) -> f64 {
    let l = f64::from(load.replicas);
    let n = f64::from(load.users);
    let m = f64::from(load.npcs);
    let active = n / l;
    active * params.own_cost(n)
        + (n - active) * params.shadow_cost(n)
        + (m / l) * params.npc_cost(n)
}

/// Eq. (4): predicted tick duration (seconds) of one server that owns
/// `active` of the zone's `n` users (non-equal distribution):
///
/// ```text
/// T(l,n,m,a) = a · (t_ua_dser + t_ua + t_aoi + t_su)(n)
///            + (n − a) · (t_fa_dser + t_fa)(n)
///            + m/l · t_npc(n)
/// ```
///
/// `active` is clamped to `n`: a server can never own more active entities
/// than the zone has users.
pub fn tick_duration(params: &ModelParams, load: ZoneLoad, active: u32) -> f64 {
    let a = f64::from(active.min(load.users));
    let n = f64::from(load.users);
    let m = f64::from(load.npcs);
    a * params.own_cost(n)
        + (n - a) * params.shadow_cost(n)
        + (m / f64::from(load.replicas)) * params.npc_cost(n)
}

/// Eq. (4) broken out per model term: predicted seconds each parameter
/// contributes to one server's tick, indexed like [`ParamKind::ALL`].
///
/// The first seven slots decompose [`tick_duration`] exactly — their
/// sum equals it. The migration terms are charged per migration rather
/// than per tick, so they take the server's initiate/receive counts
/// for the tick. This is the prediction side of the per-term
/// attribution fold (`roia-obs::attrib`): the observed side is the
/// tick span's per-task timer breakdown.
pub fn per_term_prediction(
    params: &ModelParams,
    load: ZoneLoad,
    active: u32,
    migrations_initiated: u32,
    migrations_received: u32,
) -> [f64; ParamKind::ALL.len()] {
    let a = f64::from(active.min(load.users));
    let n = f64::from(load.users);
    let shadow = n - a;
    let npc_share = f64::from(load.npcs) / f64::from(load.replicas);
    let mut out = [0.0; ParamKind::ALL.len()];
    for (slot, kind) in out.iter_mut().zip(ParamKind::ALL) {
        let unit = params.get(kind).eval(n);
        let count = match kind {
            ParamKind::UaDser | ParamKind::Ua | ParamKind::Aoi | ParamKind::Su => a,
            ParamKind::FaDser | ParamKind::Fa => shadow,
            ParamKind::Npc => npc_share,
            ParamKind::MigIni => f64::from(migrations_initiated),
            ParamKind::MigRcv => f64::from(migrations_received),
        };
        *slot = count * unit;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costfn::CostFn;

    fn params() -> ModelParams {
        ModelParams {
            t_ua_dser: CostFn::Constant(1e-5),
            t_ua: CostFn::Constant(2e-5),
            t_fa_dser: CostFn::Constant(1e-6),
            t_fa: CostFn::Constant(1e-6),
            t_npc: CostFn::Constant(4e-6),
            t_aoi: CostFn::Constant(3e-5),
            t_su: CostFn::Constant(4e-5),
            t_mig_ini: CostFn::ZERO,
            t_mig_rcv: CostFn::ZERO,
        }
    }

    #[test]
    fn single_replica_has_no_shadow_term() {
        // With l = 1 every user is active: T = n·own + m·npc.
        let p = params();
        let t = tick_duration_equal(&p, ZoneLoad::new(1, 100, 10));
        let expected = 100.0 * 1e-4 + 10.0 * 4e-6;
        assert!((t - expected).abs() < 1e-12, "{t} vs {expected}");
    }

    #[test]
    fn two_replicas_split_active_entities() {
        let p = params();
        let t = tick_duration_equal(&p, ZoneLoad::new(2, 100, 10));
        // 50 active · own + 50 shadow · fwd + 5 NPCs
        let expected = 50.0 * 1e-4 + 50.0 * 2e-6 + 5.0 * 4e-6;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn eq1_is_special_case_of_eq4() {
        // With a = n/l, Eq. (4) must reduce to Eq. (1).
        let p = params();
        let load = ZoneLoad::new(4, 200, 40);
        let t1 = tick_duration_equal(&p, load);
        let t4 = tick_duration(&p, load, 50);
        assert!((t1 - t4).abs() < 1e-12);
    }

    #[test]
    fn more_replicas_reduce_tick_at_fixed_n() {
        // The own-cost per server shrinks while shadow cost grows; with own
        // cost dominating (as in any sane ROIA), more replicas means a
        // shorter tick.
        let p = params();
        let t1 = tick_duration_equal(&p, ZoneLoad::new(1, 300, 0));
        let t2 = tick_duration_equal(&p, ZoneLoad::new(2, 300, 0));
        let t4 = tick_duration_equal(&p, ZoneLoad::new(4, 300, 0));
        assert!(t1 > t2 && t2 > t4, "{t1} {t2} {t4}");
    }

    #[test]
    fn overloaded_server_has_longer_tick_than_equal_share() {
        let p = params();
        let load = ZoneLoad::new(3, 45, 0);
        let equal = tick_duration_equal(&p, load);
        let heavy = tick_duration(&p, load, 25);
        let light = tick_duration(&p, load, 8);
        assert!(heavy > equal, "owning 25 of 45 is worse than owning 15");
        assert!(light < equal, "owning 8 of 45 is better than owning 15");
    }

    #[test]
    fn active_clamped_to_users() {
        let p = params();
        let load = ZoneLoad::new(2, 10, 0);
        assert_eq!(tick_duration(&p, load, 99), tick_duration(&p, load, 10));
    }

    #[test]
    fn zero_users_zero_tick() {
        let p = params();
        assert_eq!(tick_duration_equal(&p, ZoneLoad::new(1, 0, 0)), 0.0);
    }

    #[test]
    fn npc_term_scales_with_replicas() {
        let p = params();
        let t1 = tick_duration_equal(&p, ZoneLoad::new(1, 0, 100));
        let t2 = tick_duration_equal(&p, ZoneLoad::new(2, 0, 100));
        assert!(
            (t1 - 2.0 * t2).abs() < 1e-12,
            "NPCs split equally on replicas"
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_replicas_rejected() {
        ZoneLoad::new(0, 10, 0);
    }

    #[test]
    fn per_term_prediction_sums_to_eq4() {
        let p = params();
        let load = ZoneLoad::new(3, 120, 60);
        let terms = per_term_prediction(&p, load, 50, 0, 0);
        let total: f64 = terms.iter().sum();
        let t4 = tick_duration(&p, load, 50);
        assert!((total - t4).abs() < 1e-15, "{total} vs {t4}");
    }

    #[test]
    fn per_term_prediction_charges_each_counter() {
        let mut p = params();
        p.t_mig_ini = CostFn::Constant(1e-4);
        p.t_mig_rcv = CostFn::Constant(2e-4);
        let load = ZoneLoad::new(2, 100, 10);
        let terms = per_term_prediction(&p, load, 30, 4, 6);
        // ParamKind::ALL order: UaDser, Ua, FaDser, Fa, Npc, Aoi, Su,
        // MigIni, MigRcv.
        assert!((terms[0] - 30.0 * 1e-5).abs() < 1e-15, "t_ua_dser");
        assert!((terms[2] - 70.0 * 1e-6).abs() < 1e-15, "t_fa_dser");
        assert!((terms[4] - 5.0 * 4e-6).abs() < 1e-15, "t_npc");
        assert!((terms[7] - 4.0 * 1e-4).abs() < 1e-15, "t_mig_ini");
        assert!((terms[8] - 6.0 * 2e-4).abs() < 1e-15, "t_mig_rcv");
    }
}
