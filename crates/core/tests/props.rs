//! Property-based tests of the scalability model's invariants: tick-time
//! monotonicity, capacity-search correctness, migration-budget strictness
//! and the conservation/cap properties of the Listing-1 planner.

use proptest::prelude::*;
use roia_model::{
    n_max, plan, tick_duration, tick_duration_equal, x_max_ini, x_max_rcv, CostFn, ModelParams,
    PlannerConfig, ZoneLoad,
};

/// Random but physically sensible model parameters: small nonnegative
/// linear costs, with the own-cost dominating the shadow cost as in every
/// real ROIA.
fn arb_params() -> impl Strategy<Value = ModelParams> {
    (
        1e-6f64..2e-4, // own base
        0.0f64..5e-7,  // own slope
        1e-7f64..2e-5, // shadow base
        0.0f64..5e-8,  // shadow slope
        1e-5f64..3e-3, // mig ini base
        1e-6f64..2e-3, // mig rcv base
    )
        .prop_map(|(ob, os, sb, ss, mi, mr)| ModelParams {
            t_ua: CostFn::Linear { c0: ob, c1: os },
            t_fa: CostFn::Linear { c0: sb, c1: ss },
            t_mig_ini: CostFn::Constant(mi),
            t_mig_rcv: CostFn::Constant(mr),
            ..ModelParams::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tick_is_monotone_in_users(params in arb_params(), l in 1u32..8, m in 0u32..50) {
        let mut prev = 0.0;
        for n in [0u32, 10, 50, 100, 200, 400] {
            let t = tick_duration_equal(&params, ZoneLoad { replicas: l, users: n, npcs: m });
            prop_assert!(t >= prev - 1e-15, "T must grow with n: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn tick_is_monotone_in_active_share(params in arb_params(), n in 2u32..300) {
        // More active entities on a server ⇒ longer tick (own cost ≥
        // shadow cost in arb_params ranges whenever own base dominates).
        let load = ZoneLoad { replicas: 2, users: n, npcs: 0 };
        let own = params.own_cost(n as f64);
        let shadow = params.shadow_cost(n as f64);
        prop_assume!(own > shadow);
        let mut prev = tick_duration(&params, load, 0);
        for a in [n / 4, n / 2, n] {
            let t = tick_duration(&params, load, a);
            prop_assert!(t >= prev - 1e-15);
            prev = t;
        }
    }

    #[test]
    fn n_max_is_exactly_the_boundary(params in arb_params(), l in 1u32..6, u in 1e-3f64..0.2) {
        let cap = n_max(&params, l, 0, u);
        prop_assume!(cap > 0 && cap < 1_000_000);
        let at = tick_duration_equal(&params, ZoneLoad { replicas: l, users: cap, npcs: 0 });
        let over = tick_duration_equal(&params, ZoneLoad { replicas: l, users: cap + 1, npcs: 0 });
        prop_assert!(at < u, "T(n_max) = {at} must be < U = {u}");
        prop_assert!(over >= u, "T(n_max + 1) = {over} must violate U = {u}");
    }

    #[test]
    fn n_max_monotone_in_threshold(params in arb_params(), l in 1u32..6) {
        let a = n_max(&params, l, 0, 0.010);
        let b = n_max(&params, l, 0, 0.040);
        let c = n_max(&params, l, 0, 0.160);
        prop_assert!(a <= b && b <= c);
    }

    #[test]
    fn migration_budget_is_strict(params in arb_params(), n in 1u32..300, a_frac in 0.0f64..1.0) {
        let load = ZoneLoad { replicas: 2, users: n, npcs: 0 };
        let a = ((n as f64) * a_frac) as u32;
        let u = 0.040;
        let x = x_max_ini(&params, load, a, u);
        prop_assume!(x < 10_000); // skip degenerate near-zero costs
        let base = tick_duration(&params, load, a);
        let cost = params.t_mig_ini.eval(n as f64);
        if x > 0 {
            prop_assert!(base + (x as f64) * cost < u, "x within budget");
        }
        prop_assert!(base + ((x + 1) as f64) * cost >= u, "x+1 violates");
    }

    #[test]
    fn receive_budget_not_smaller_when_cost_smaller(params in arb_params(), n in 1u32..300) {
        let load = ZoneLoad { replicas: 2, users: n, npcs: 0 };
        let a = n / 2;
        prop_assume!(params.t_mig_ini.eval(n as f64) >= params.t_mig_rcv.eval(n as f64));
        prop_assert!(x_max_rcv(&params, load, a, 0.040) >= x_max_ini(&params, load, a, 0.040));
    }

    #[test]
    fn planner_conserves_users_and_respects_caps(
        params in arb_params(),
        users in proptest::collection::vec(0u32..200, 2..8),
    ) {
        let config = PlannerConfig::default();
        let total: u32 = users.iter().sum();
        let result = plan(&params, &users, &config);

        let mut state = users.clone();
        for round in &result.rounds {
            // One source per round (Listing 1 picks a single s_max).
            if let Some(first) = round.moves.first() {
                prop_assert!(round.moves.iter().all(|m| m.from == first.from));
            }
            // Budgets: re-derive the caps from the pre-round state.
            let n: u32 = state.iter().sum();
            let l = state.len() as u32;
            let load = ZoneLoad { replicas: l, users: n, npcs: config.npcs };
            let s_max = (0..state.len()).max_by_key(|&i| state[i]).unwrap();
            let ini_cap = x_max_ini(&params, load, state[s_max], config.u_threshold);
            prop_assert!(round.total_moved() <= ini_cap, "initiate cap respected");
            for mv in &round.moves {
                let rcv_cap = x_max_rcv(&params, load, state[mv.to], config.u_threshold);
                prop_assert!(mv.users <= rcv_cap, "receive cap respected");
                state[mv.from] -= mv.users; // panics on underflow = bug
                state[mv.to] += mv.users;
            }
            prop_assert_eq!(&state, &round.resulting_users);
        }
        let final_total: u32 = state.iter().sum();
        prop_assert_eq!(total, final_total, "users conserved");
    }

    #[test]
    fn planner_never_worsens_imbalance(
        params in arb_params(),
        users in proptest::collection::vec(0u32..200, 2..8),
    ) {
        let config = PlannerConfig::default();
        let imbalance = |v: &[u32]| {
            let hi = *v.iter().max().unwrap();
            let lo = *v.iter().min().unwrap();
            hi - lo
        };
        let result = plan(&params, &users, &config);
        let mut prev = imbalance(&users);
        for round in &result.rounds {
            let now = imbalance(&round.resulting_users);
            prop_assert!(now <= prev, "imbalance must not grow: {now} > {prev}");
            prev = now;
        }
    }

    #[test]
    fn faster_machine_never_hurts_capacity(params in arb_params(), speed in 1.0f64..4.0) {
        let faster = params.on_faster_machine(speed);
        let base_cap = n_max(&params, 1, 0, 0.040);
        let fast_cap = n_max(&faster, 1, 0, 0.040);
        prop_assert!(fast_cap >= base_cap);
    }
}
