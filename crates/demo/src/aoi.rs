//! Euclidean-distance interest management with subscription lists.
//!
//! §V-A: "In order to compute the area of interest for a user, RTFDemo
//! employs the Euclidean Distance Algorithm [...] For user U, it has to be
//! checked for all users whether they are in the visibility area of user U,
//! i.e., the application iterates through all users (except for U). Each
//! user in the visibility area of user U is subscribed to the update list
//! of user U; for each subscription, RTFDemo iterates through the update
//! list in order to avoid duplicate entries."
//!
//! The double iteration (scan all + per-subscription dedup scan) is what
//! makes `t_aoi` quadratic in the user count — this module reproduces it
//! literally and reports the work units so the calibrated cost model can
//! charge virtual time proportionally.
//!
//! [`AoiGrid`] is the wall-clock fast path for large sessions: a uniform
//! spatial hash that returns the *same* visible set as the literal scan
//! while synthesizing the same work-unit counters, so the virtual cost
//! charged to `t_aoi` (and therefore every trace and report) is unchanged
//! — only the host CPU time drops from O(n²) to O(n + v log v) per tick.

use crate::world::World;
use rtf_core::entity::{UserId, Vec2};

/// The outcome of computing one user's area of interest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AoiResult {
    /// The users subscribed to the observer's update list, in scan order.
    pub visible: Vec<UserId>,
    /// Distance checks performed (= all other users).
    pub pairs_checked: usize,
    /// Update-list entries visited by the duplicate-avoidance scans.
    pub dedup_scans: usize,
}

/// Computes the update list of `observer` over `others` — every avatar in
/// the zone except the observer, as `(user, position)` pairs.
pub fn compute_aoi(
    world: &World,
    observer: UserId,
    observer_pos: &Vec2,
    others: impl Iterator<Item = (UserId, Vec2)>,
) -> AoiResult {
    let mut result = AoiResult::default();
    for (user, pos) in others {
        if user == observer {
            continue;
        }
        result.pairs_checked += 1;
        if world.in_aoi(observer_pos, &pos) {
            // Duplicate-avoidance scan over the current update list, as in
            // the paper (rather than a hash set — the cost is the point).
            let mut duplicate = false;
            for existing in &result.visible {
                result.dedup_scans += 1;
                if *existing == user {
                    duplicate = true;
                    break;
                }
            }
            if !duplicate {
                result.visible.push(user);
            }
        }
    }
    result
}

/// Upper bound on grid columns/rows, so a tiny AoI radius in a huge world
/// cannot blow up the cell table (the cell size grows instead, which only
/// costs extra candidate checks, never correctness).
const MAX_GRID_DIM: usize = 128;

/// Uniform spatial hash over the world bounds, rebuilt once per tick and
/// queried once per observer.
///
/// Equivalence contract (pinned by tests and `tests/props.rs`-style
/// proptests): for an input with unique user ids — the only shape the
/// map-backed callers produce — [`AoiGrid::query`] returns exactly the
/// [`AoiResult`] that [`compute_aoi`] returns for the same avatars
/// iterated in ascending id order:
///
/// * `visible` is identical — cell size ≥ `aoi_radius`, so the 3×3
///   neighbourhood covers every point within the radius, and candidates
///   pass through the same [`World::in_aoi`] predicate before an
///   ascending sort;
/// * `pairs_checked` is the caller-supplied scan count (all avatars
///   except the observer — the literal algorithm checks each exactly
///   once);
/// * `dedup_scans` is `v·(v−1)/2` for `v` visible users — with unique
///   ids the literal dedup scan never finds a duplicate, so the k-th
///   subscription walks the full k-entry list.
#[derive(Debug, Default, Clone)]
pub struct AoiGrid {
    cols: usize,
    rows: usize,
    cell: f32,
    min: Vec2,
    /// CSR layout: `entries[starts[c]..starts[c + 1]]` are the avatars in
    /// cell `c`. Both vectors keep their capacity across rebuilds.
    starts: Vec<usize>,
    entries: Vec<(UserId, Vec2)>,
    cursor: Vec<usize>,
}

impl AoiGrid {
    /// An empty grid; call [`rebuild`](Self::rebuild) before querying.
    pub fn new() -> Self {
        Self::default()
    }

    fn col_row(&self, pos: &Vec2) -> (usize, usize) {
        let col =
            (((pos.x - self.min.x) / self.cell) as isize).clamp(0, self.cols as isize - 1) as usize;
        let row =
            (((pos.y - self.min.y) / self.cell) as isize).clamp(0, self.rows as isize - 1) as usize;
        (col, row)
    }

    /// Re-indexes `avatars` (one entry per user) for `world`. Reuses the
    /// grid's allocations; O(n + cells).
    pub fn rebuild(&mut self, world: &World, avatars: &[(UserId, Vec2)]) {
        let width = world.bounds.width().max(1e-3);
        let height = world.bounds.height().max(1e-3);
        self.cell = world
            .aoi_radius
            .max(width / MAX_GRID_DIM as f32)
            .max(height / MAX_GRID_DIM as f32)
            .max(1e-3);
        self.min = world.bounds.min;
        self.cols = ((width / self.cell).ceil() as usize).clamp(1, MAX_GRID_DIM);
        self.rows = ((height / self.cell).ceil() as usize).clamp(1, MAX_GRID_DIM);
        let cells = self.cols * self.rows;

        self.starts.clear();
        self.starts.resize(cells + 1, 0);
        for (_, pos) in avatars {
            let (col, row) = self.col_row(pos);
            self.starts[row * self.cols + col + 1] += 1;
        }
        for c in 0..cells {
            self.starts[c + 1] += self.starts[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts[..cells]);
        self.entries.clear();
        self.entries
            .resize(avatars.len(), (UserId(0), Vec2::new(0.0, 0.0)));
        for &(user, pos) in avatars {
            let (col, row) = self.col_row(&pos);
            let slot = &mut self.cursor[row * self.cols + col];
            self.entries[*slot] = (user, pos);
            *slot += 1;
        }
    }

    /// Computes `observer`'s update list from the indexed avatars.
    /// `others_scanned` is the number of avatars the literal algorithm
    /// would have distance-checked (all indexed avatars except the
    /// observer); it becomes `pairs_checked` verbatim so the virtual cost
    /// charge stays quadratic.
    pub fn query(
        &self,
        world: &World,
        observer: UserId,
        observer_pos: &Vec2,
        others_scanned: usize,
    ) -> AoiResult {
        let mut result = AoiResult {
            pairs_checked: others_scanned,
            ..AoiResult::default()
        };
        let (col, row) = self.col_row(observer_pos);
        for gy in row.saturating_sub(1)..=(row + 1).min(self.rows - 1) {
            for gx in col.saturating_sub(1)..=(col + 1).min(self.cols - 1) {
                let c = gy * self.cols + gx;
                for (user, pos) in &self.entries[self.starts[c]..self.starts[c + 1]] {
                    if *user == observer {
                        continue;
                    }
                    if world.in_aoi(observer_pos, pos) {
                        result.visible.push(*user);
                    }
                }
            }
        }
        // Ascending id order = the literal scan order of the map-backed
        // callers.
        result.visible.sort_unstable();
        let v = result.visible.len();
        result.dedup_scans = v * v.saturating_sub(1) / 2;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World {
            aoi_radius: 100.0,
            ..World::default()
        }
    }

    #[test]
    fn only_nearby_users_visible() {
        let w = world();
        let me = UserId(0);
        let pos = Vec2::new(500.0, 500.0);
        let others = vec![
            (UserId(1), Vec2::new(550.0, 500.0)), // 50 away: visible
            (UserId(2), Vec2::new(700.0, 500.0)), // 200 away: not
            (UserId(3), Vec2::new(500.0, 599.0)), // 99 away: visible
        ];
        let r = compute_aoi(&w, me, &pos, others.into_iter());
        assert_eq!(r.visible, vec![UserId(1), UserId(3)]);
        assert_eq!(r.pairs_checked, 3);
    }

    #[test]
    fn observer_excluded_from_own_aoi() {
        let w = world();
        let pos = Vec2::new(0.0, 0.0);
        let r = compute_aoi(&w, UserId(7), &pos, vec![(UserId(7), pos)].into_iter());
        assert!(r.visible.is_empty());
        assert_eq!(
            r.pairs_checked, 0,
            "self is skipped before the distance check"
        );
    }

    #[test]
    fn duplicates_are_removed_via_list_scan() {
        let w = world();
        let pos = Vec2::new(0.0, 0.0);
        let near = Vec2::new(10.0, 0.0);
        // The same user delivered twice (e.g. listed by two replica
        // updates during a migration race).
        let others = vec![(UserId(1), near), (UserId(1), near)];
        let r = compute_aoi(&w, UserId(0), &pos, others.into_iter());
        assert_eq!(r.visible, vec![UserId(1)]);
        assert!(r.dedup_scans >= 1, "the duplicate triggered a list scan");
    }

    #[test]
    fn work_units_grow_quadratically_with_density() {
        // All users within AoI range of each other: dedup scans are
        // Σ(k-1) ≈ v²/2, the quadratic term of t_aoi.
        let w = world();
        let pos = Vec2::new(500.0, 500.0);
        let make = |count: u64| {
            let others: Vec<(UserId, Vec2)> = (1..=count)
                .map(|i| (UserId(i), Vec2::new(500.0 + (i % 7) as f32, 500.0)))
                .collect();
            compute_aoi(&w, UserId(0), &pos, others.into_iter())
        };
        let r10 = make(10);
        let r40 = make(40);
        assert_eq!(r10.dedup_scans, 9 * 10 / 2);
        assert_eq!(r40.dedup_scans, 39 * 40 / 2);
        // 4x the users, ~16x the dedup work.
        assert!(r40.dedup_scans > 15 * r10.dedup_scans);
    }

    #[test]
    fn empty_zone_is_empty_result() {
        let w = world();
        let r = compute_aoi(&w, UserId(0), &Vec2::new(0.0, 0.0), std::iter::empty());
        assert_eq!(r, AoiResult::default());
    }

    /// Asserts the grid's full-result equivalence with the literal scan
    /// for every avatar as observer.
    fn assert_grid_matches_scan(w: &World, avatars: &[(UserId, Vec2)]) {
        let mut grid = AoiGrid::new();
        grid.rebuild(w, avatars);
        for &(observer, pos) in avatars {
            let literal = compute_aoi(w, observer, &pos, avatars.iter().copied());
            let fast = grid.query(w, observer, &pos, avatars.len() - 1);
            assert_eq!(fast, literal, "observer {observer:?}");
        }
    }

    #[test]
    fn grid_equals_literal_scan_on_spawn_spread() {
        let w = world();
        let avatars: Vec<(UserId, Vec2)> = (0..200)
            .map(|i| (UserId(i), w.spawn_point(UserId(i))))
            .collect();
        assert_grid_matches_scan(&w, &avatars);
    }

    #[test]
    fn grid_equals_literal_scan_when_everyone_is_visible() {
        // Radius larger than the world diagonal: the 3×3 neighbourhood is
        // the whole (1×1) grid and every other user is visible.
        let w = World {
            aoi_radius: 5000.0,
            ..World::default()
        };
        let avatars: Vec<(UserId, Vec2)> = (0..50)
            .map(|i| (UserId(i), w.spawn_point(UserId(i))))
            .collect();
        assert_grid_matches_scan(&w, &avatars);
    }

    #[test]
    fn grid_equals_literal_scan_on_cell_boundaries() {
        // Positions sitting exactly on cell borders and at exactly the
        // AoI radius — the predicate (≤ r²) must agree bit-for-bit.
        let w = world(); // radius 100 ⇒ cell size 100
        let avatars = vec![
            (UserId(0), Vec2::new(100.0, 100.0)),
            (UserId(1), Vec2::new(200.0, 100.0)), // exactly r away
            (UserId(2), Vec2::new(200.1, 100.0)), // just outside
            (UserId(3), Vec2::new(0.0, 0.0)),
            (UserId(4), Vec2::new(999.9, 999.9)),
            (UserId(5), Vec2::new(100.0, 200.0)),
        ];
        assert_grid_matches_scan(&w, &avatars);
    }

    #[test]
    fn grid_handles_tiny_radius_without_blowing_up() {
        // Radius far below world-size/MAX_GRID_DIM: the cell size floors
        // at the dimension cap instead of allocating millions of cells.
        let w = World {
            aoi_radius: 0.5,
            ..World::default()
        };
        let avatars: Vec<(UserId, Vec2)> = (0..64)
            .map(|i| (UserId(i), w.spawn_point(UserId(i))))
            .collect();
        let mut grid = AoiGrid::new();
        grid.rebuild(&w, &avatars);
        assert!(grid.cols <= MAX_GRID_DIM && grid.rows <= MAX_GRID_DIM);
        assert_grid_matches_scan(&w, &avatars);
    }

    #[test]
    fn grid_counters_follow_the_quadratic_formulas() {
        let w = world();
        // A tight cluster: everyone sees everyone.
        let avatars: Vec<(UserId, Vec2)> = (0..20)
            .map(|i| (UserId(i), Vec2::new(500.0 + i as f32, 500.0)))
            .collect();
        let mut grid = AoiGrid::new();
        grid.rebuild(&w, &avatars);
        let r = grid.query(&w, UserId(0), &avatars[0].1, avatars.len() - 1);
        assert_eq!(r.pairs_checked, 19);
        assert_eq!(r.visible.len(), 19);
        assert_eq!(r.dedup_scans, 19 * 18 / 2);
    }

    #[test]
    fn rebuild_reuses_allocations_and_replaces_content() {
        let w = world();
        let mut grid = AoiGrid::new();
        grid.rebuild(&w, &[(UserId(1), Vec2::new(10.0, 10.0))]);
        let one = grid.query(&w, UserId(99), &Vec2::new(10.0, 10.0), 1);
        assert_eq!(one.visible, vec![UserId(1)]);
        // Rebuilding with a different population forgets the old one.
        grid.rebuild(&w, &[(UserId(2), Vec2::new(900.0, 900.0))]);
        let gone = grid.query(&w, UserId(99), &Vec2::new(10.0, 10.0), 1);
        assert!(gone.visible.is_empty());
        let found = grid.query(&w, UserId(99), &Vec2::new(900.0, 900.0), 1);
        assert_eq!(found.visible, vec![UserId(2)]);
    }
}
