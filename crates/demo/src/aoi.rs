//! Euclidean-distance interest management with subscription lists.
//!
//! §V-A: "In order to compute the area of interest for a user, RTFDemo
//! employs the Euclidean Distance Algorithm [...] For user U, it has to be
//! checked for all users whether they are in the visibility area of user U,
//! i.e., the application iterates through all users (except for U). Each
//! user in the visibility area of user U is subscribed to the update list
//! of user U; for each subscription, RTFDemo iterates through the update
//! list in order to avoid duplicate entries."
//!
//! The double iteration (scan all + per-subscription dedup scan) is what
//! makes `t_aoi` quadratic in the user count — this module reproduces it
//! literally and reports the work units so the calibrated cost model can
//! charge virtual time proportionally.

use crate::world::World;
use rtf_core::entity::{UserId, Vec2};

/// The outcome of computing one user's area of interest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AoiResult {
    /// The users subscribed to the observer's update list, in scan order.
    pub visible: Vec<UserId>,
    /// Distance checks performed (= all other users).
    pub pairs_checked: usize,
    /// Update-list entries visited by the duplicate-avoidance scans.
    pub dedup_scans: usize,
}

/// Computes the update list of `observer` over `others` — every avatar in
/// the zone except the observer, as `(user, position)` pairs.
pub fn compute_aoi(
    world: &World,
    observer: UserId,
    observer_pos: &Vec2,
    others: impl Iterator<Item = (UserId, Vec2)>,
) -> AoiResult {
    let mut result = AoiResult::default();
    for (user, pos) in others {
        if user == observer {
            continue;
        }
        result.pairs_checked += 1;
        if world.in_aoi(observer_pos, &pos) {
            // Duplicate-avoidance scan over the current update list, as in
            // the paper (rather than a hash set — the cost is the point).
            let mut duplicate = false;
            for existing in &result.visible {
                result.dedup_scans += 1;
                if *existing == user {
                    duplicate = true;
                    break;
                }
            }
            if !duplicate {
                result.visible.push(user);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World {
            aoi_radius: 100.0,
            ..World::default()
        }
    }

    #[test]
    fn only_nearby_users_visible() {
        let w = world();
        let me = UserId(0);
        let pos = Vec2::new(500.0, 500.0);
        let others = vec![
            (UserId(1), Vec2::new(550.0, 500.0)), // 50 away: visible
            (UserId(2), Vec2::new(700.0, 500.0)), // 200 away: not
            (UserId(3), Vec2::new(500.0, 599.0)), // 99 away: visible
        ];
        let r = compute_aoi(&w, me, &pos, others.into_iter());
        assert_eq!(r.visible, vec![UserId(1), UserId(3)]);
        assert_eq!(r.pairs_checked, 3);
    }

    #[test]
    fn observer_excluded_from_own_aoi() {
        let w = world();
        let pos = Vec2::new(0.0, 0.0);
        let r = compute_aoi(&w, UserId(7), &pos, vec![(UserId(7), pos)].into_iter());
        assert!(r.visible.is_empty());
        assert_eq!(
            r.pairs_checked, 0,
            "self is skipped before the distance check"
        );
    }

    #[test]
    fn duplicates_are_removed_via_list_scan() {
        let w = world();
        let pos = Vec2::new(0.0, 0.0);
        let near = Vec2::new(10.0, 0.0);
        // The same user delivered twice (e.g. listed by two replica
        // updates during a migration race).
        let others = vec![(UserId(1), near), (UserId(1), near)];
        let r = compute_aoi(&w, UserId(0), &pos, others.into_iter());
        assert_eq!(r.visible, vec![UserId(1)]);
        assert!(r.dedup_scans >= 1, "the duplicate triggered a list scan");
    }

    #[test]
    fn work_units_grow_quadratically_with_density() {
        // All users within AoI range of each other: dedup scans are
        // Σ(k-1) ≈ v²/2, the quadratic term of t_aoi.
        let w = world();
        let pos = Vec2::new(500.0, 500.0);
        let make = |count: u64| {
            let others: Vec<(UserId, Vec2)> = (1..=count)
                .map(|i| (UserId(i), Vec2::new(500.0 + (i % 7) as f32, 500.0)))
                .collect();
            compute_aoi(&w, UserId(0), &pos, others.into_iter())
        };
        let r10 = make(10);
        let r40 = make(40);
        assert_eq!(r10.dedup_scans, 9 * 10 / 2);
        assert_eq!(r40.dedup_scans, 39 * 40 / 2);
        // 4x the users, ~16x the dedup work.
        assert!(r40.dedup_scans > 15 * r10.dedup_scans);
    }

    #[test]
    fn empty_zone_is_empty_result() {
        let w = world();
        let r = compute_aoi(&w, UserId(0), &Vec2::new(0.0, 0.0), std::iter::empty());
        assert_eq!(r, AoiResult::default());
    }
}
