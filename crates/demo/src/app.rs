//! RTFDemo's game logic as an `rtf-core` [`Application`].
//!
//! This is the first-person-shooter case study of §V: avatars move and
//! shoot, interest management is Euclidean, the state is replicated across
//! the servers of a zone. Every callback counts its work units and charges
//! virtual time through the [`CostModel`], and the same code paths run
//! under wall-clock accounting unchanged.

use crate::aoi::{compute_aoi, AoiGrid, AoiResult};
use crate::avatar::{Avatar, AvatarSnapshot};
use crate::calibration::CostModel;
use crate::commands::{Command, CommandBatch, Interaction};
use crate::npc::NpcWorld;
use crate::world::World;
use bytes::Bytes;
use rtf_core::entity::{Ownership, UserId, Vec2};
use rtf_core::server::{Application, ForwardEvent, TickCtx};
use rtf_core::wire::{Wire, WireReader, WireWriter};
use rtf_net::NodeId;
use std::collections::BTreeMap;
// lint: allow-file(nondet, "Instant spans here only feed the Wall accumulators via add_wall; deterministic runs use TimeMode::Virtual, whose tick durations come solely from charge()d virtual seconds")
// lint: allow-file(taint, "sanctioned taint boundary, same reasoning: every clock read lands in add_wall(), which no digest- or report-affecting value ever reads back in Virtual mode")
use std::time::Instant;

/// Gameplay counters, for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GameStats {
    /// Move commands applied.
    pub moves_applied: u64,
    /// Attack commands applied locally.
    pub attacks_applied: u64,
    /// Hits landed on active avatars.
    pub hits_on_active: u64,
    /// Interactions forwarded to other replicas.
    pub interactions_forwarded: u64,
    /// Forwarded interactions received and applied.
    pub interactions_received: u64,
    /// Kills registered on this server.
    pub kills: u64,
}

/// How [`RtfDemoApp`] computes areas of interest. Both backends return
/// identical visible sets and charge identical virtual `t_aoi` costs
/// (see [`crate::aoi`]); they differ only in host CPU time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AoiBackend {
    /// The paper-literal O(n²) scan (§V-A). The default.
    #[default]
    Quadratic,
    /// Spatial-hash fast path: O(n) index per tick + O(neighbourhood)
    /// per observer. Use for large sessions where the wall-clock cost of
    /// the literal scan dominates.
    Grid,
}

/// The RTFDemo application state on one server.
pub struct RtfDemoApp {
    world: World,
    avatars: BTreeMap<UserId, Avatar>,
    shadow_origin: BTreeMap<UserId, NodeId>,
    npcs: NpcWorld,
    costs: CostModel,
    stats: GameStats,
    aoi_backend: AoiBackend,
    /// Grid-backend cache: the spatial index and the tick it was built
    /// for. State updates all run in the send phase of one server tick,
    /// after every avatar mutation of that tick, so one rebuild serves
    /// every observer.
    aoi_grid: AoiGrid,
    aoi_grid_tick: Option<u64>,
    aoi_scratch: Vec<(UserId, Vec2)>,
    /// The world's full-fidelity AoI radius, kept so degraded-mode
    /// scaling is always relative to the original, not cumulative.
    base_aoi_radius: f32,
}

impl RtfDemoApp {
    /// Creates the application with `npc_count` NPCs and the given cost
    /// model.
    pub fn new(world: World, npc_count: u32, costs: CostModel) -> Self {
        let mut npcs = NpcWorld::new();
        npcs.populate(npc_count, &world);
        let base_aoi_radius = world.aoi_radius;
        Self {
            world,
            avatars: BTreeMap::new(),
            shadow_origin: BTreeMap::new(),
            npcs,
            costs,
            stats: GameStats::default(),
            aoi_backend: AoiBackend::default(),
            aoi_grid: AoiGrid::new(),
            aoi_grid_tick: None,
            aoi_scratch: Vec::new(),
            base_aoi_radius,
        }
    }

    /// Scales the area-of-interest radius relative to the world's base
    /// radius (`1.0` = full fidelity, clamped to `[0, 1]`). The
    /// graceful-degradation path shrinks AoI under overload to cut
    /// per-user update fan-out while keeping every connected user in
    /// the session; passing `1.0` restores full fidelity exactly.
    pub fn set_aoi_scale(&mut self, scale: f64) {
        let scale = if scale.is_finite() {
            scale.clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.world.aoi_radius = self.base_aoi_radius * scale as f32;
        self.aoi_grid_tick = None;
    }

    /// The current AoI fidelity relative to the base radius.
    pub fn aoi_scale(&self) -> f64 {
        if self.base_aoi_radius <= f32::EPSILON {
            return 1.0;
        }
        f64::from(self.world.aoi_radius / self.base_aoi_radius)
    }

    /// Selects the interest-management backend (default:
    /// [`AoiBackend::Quadratic`], the paper-literal scan).
    pub fn set_aoi_backend(&mut self, backend: AoiBackend) {
        self.aoi_backend = backend;
        self.aoi_grid_tick = None;
    }

    /// The active interest-management backend.
    pub fn aoi_backend(&self) -> AoiBackend {
        self.aoi_backend
    }

    /// The arena description.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Gameplay counters.
    pub fn stats(&self) -> GameStats {
        self.stats
    }

    /// Sets the cost model's straggler factor (≥ 1, `1.0` = healthy). Used
    /// by fault injection to turn this server into a straggler.
    pub fn set_slowdown(&mut self, factor: f64) {
        self.costs.set_slowdown(factor);
    }

    /// Scales every per-unit cost rate by `factor` (> 0). Used by
    /// regime-shift scenarios: a patch makes each interaction heavier,
    /// so the same work units cost more from the next tick on.
    pub fn scale_cost_rates(&mut self, factor: f64) {
        self.costs.scale_rates(factor);
    }

    /// Repopulates the zone with `count` NPCs (deterministic positions).
    /// Used by regime-shift scenarios: a content event spawns an NPC
    /// surge, every replica processes the larger `m` from the next tick.
    pub fn set_npc_count(&mut self, count: u32) {
        self.npcs.populate(count, &self.world);
    }

    /// All avatars known to this server (active + shadow).
    pub fn avatar_count(&self) -> usize {
        self.avatars.len()
    }

    /// Looks up an avatar.
    pub fn avatar(&self, user: UserId) -> Option<&Avatar> {
        self.avatars.get(&user)
    }

    /// Positions of this server's *active* users (for NPC interactions).
    fn active_positions(&self) -> Vec<(UserId, Vec2)> {
        self.avatars
            .values()
            .filter(|a| a.is_active())
            .map(|a| (a.user, a.pos))
            .collect()
    }

    /// Computes one observer's area of interest via the configured
    /// backend. Both backends return identical results (the grid
    /// synthesizes the literal scan's work-unit counters — see
    /// [`crate::aoi::AoiGrid`]), so the charged virtual cost and every
    /// downstream payload byte are backend-independent.
    fn compute_aoi_for(&mut self, tick: u64, observer: UserId, observer_pos: &Vec2) -> AoiResult {
        match self.aoi_backend {
            AoiBackend::Quadratic => compute_aoi(
                &self.world,
                observer,
                observer_pos,
                self.avatars.values().map(|a| (a.user, a.pos)),
            ),
            AoiBackend::Grid => {
                // One rebuild serves every observer of this tick: state
                // updates are the send phase, after all avatar mutation.
                if self.aoi_grid_tick != Some(tick) {
                    self.aoi_scratch.clear();
                    self.aoi_scratch
                        .extend(self.avatars.values().map(|a| (a.user, a.pos)));
                    self.aoi_grid.rebuild(&self.world, &self.aoi_scratch);
                    self.aoi_grid_tick = Some(tick);
                }
                self.aoi_grid.query(
                    &self.world,
                    observer,
                    observer_pos,
                    self.avatars.len().saturating_sub(1),
                )
            }
        }
    }

    /// Applies one attack: the paper-described hit check iterates through
    /// every known avatar. Returns a forward event if the hit target is a
    /// shadow entity.
    fn apply_attack(
        &mut self,
        ctx: &mut TickCtx<'_>,
        attacker: UserId,
        target: UserId,
        damage: u16,
    ) -> Option<ForwardEvent> {
        let scanned = self.avatars.len();
        self.costs.charge_attack(ctx.timers, scanned);
        self.stats.attacks_applied += 1;

        let attacker_pos = self.avatars.get(&attacker)?.pos;
        // The paper's hit check iterates through every known avatar; the
        // `charge_attack(scanned)` above bills that full scan. The lookup
        // itself uses the map (ids are unique, so the scan's result is
        // exactly the map entry) — the virtual cost stays linear in the
        // avatar count while the host cost stops being the hot path of
        // large sessions.
        let (ownership, target_pos) = self.avatars.get(&target).map(|a| (a.ownership, a.pos))?;
        if !self.world.in_attack_range(&attacker_pos, &target_pos) {
            return None;
        }

        match ownership {
            Ownership::Active => {
                let respawn = self.world.spawn_point(target);
                let lethal = self
                    .avatars
                    .get_mut(&target)
                    .map(|t| t.take_damage(damage, respawn))
                    .unwrap_or(false);
                self.stats.hits_on_active += 1;
                if lethal {
                    self.stats.kills += 1;
                    if let Some(a) = self.avatars.get_mut(&attacker) {
                        a.kills += 1;
                    }
                }
                None
            }
            Ownership::Shadow => {
                self.stats.interactions_forwarded += 1;
                Some(ForwardEvent {
                    target_user: target,
                    payload: Interaction {
                        attacker,
                        target,
                        damage,
                    }
                    .to_bytes(),
                })
            }
        }
    }
}

impl Application for RtfDemoApp {
    fn on_user_connected(&mut self, user: UserId) {
        // A migrated user was already inserted by `import_user`; a fresh
        // user spawns; a user reconnecting after its server crashed may
        // still exist here as a shadow — promoting it to active recovers
        // the last replicated state (a free benefit of replication).
        let spawn = self.world.spawn_point(user);
        let avatar = self
            .avatars
            .entry(user)
            .or_insert_with(|| Avatar::spawn(user, spawn));
        avatar.ownership = Ownership::Active;
        self.shadow_origin.remove(&user);
    }

    fn on_user_disconnected(&mut self, user: UserId) {
        // Remove only an *active* avatar: after a migration the entity
        // lives on at the target and will reappear here as a shadow.
        if self.avatars.get(&user).is_some_and(Avatar::is_active) {
            self.avatars.remove(&user);
        }
    }

    fn apply_user_input(
        &mut self,
        ctx: &mut TickCtx<'_>,
        user: UserId,
        payload: &[u8],
    ) -> Vec<ForwardEvent> {
        let decode_started = Instant::now();
        let batch = CommandBatch::from_bytes(payload);
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::UaDser,
            decode_started.elapsed().as_secs_f64(),
        );
        let Ok(batch) = batch else {
            return Vec::new();
        };
        self.costs
            .charge_ua_dser(ctx.timers, payload.len(), batch.commands.len());

        let apply_started = Instant::now();
        let mut forwards = Vec::new();
        for cmd in batch.commands {
            match cmd {
                Command::Move { dx, dy } => {
                    self.costs.charge_move(ctx.timers);
                    let new_pos = match self.avatars.get(&user) {
                        Some(a) if a.is_active() => self.world.apply_move(&a.pos, dx, dy),
                        _ => continue,
                    };
                    if let Some(a) = self.avatars.get_mut(&user) {
                        a.pos = new_pos;
                        self.stats.moves_applied += 1;
                    }
                }
                Command::Attack { target, damage } => {
                    if let Some(fwd) = self.apply_attack(ctx, user, target, damage) {
                        forwards.push(fwd);
                    }
                }
            }
        }
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::Ua,
            apply_started.elapsed().as_secs_f64(),
        );
        forwards
    }

    fn apply_forwarded_input(&mut self, ctx: &mut TickCtx<'_>, _origin: NodeId, payload: &[u8]) {
        self.costs.charge_fa_dser(ctx.timers, payload.len());
        let decode_started = Instant::now();
        let interaction = Interaction::from_bytes(payload);
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::FaDser,
            decode_started.elapsed().as_secs_f64(),
        );
        let Ok(interaction) = interaction else { return };
        self.costs.charge_fa_apply(ctx.timers);
        self.stats.interactions_received += 1;

        let apply_started = Instant::now();
        let respawn = self.world.spawn_point(interaction.target);
        if let Some(target) = self.avatars.get_mut(&interaction.target) {
            if target.is_active() && target.take_damage(interaction.damage, respawn) {
                self.stats.kills += 1;
            }
        }
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::Fa,
            apply_started.elapsed().as_secs_f64(),
        );
    }

    fn apply_replica_update(
        &mut self,
        ctx: &mut TickCtx<'_>,
        origin: NodeId,
        users: &[UserId],
        payload: &[u8],
    ) {
        self.costs.charge_fa_dser(ctx.timers, payload.len());
        let apply_started = Instant::now();
        let mut r = WireReader::new(payload);
        let Ok(count) = r.get_u16() else { return };
        let mut applied = 0usize;
        for _ in 0..count {
            let Ok(snap) = AvatarSnapshot::decode(&mut r) else {
                break;
            };
            // Never demote a local active avatar (migration race).
            if self.avatars.get(&snap.user).is_some_and(Avatar::is_active) {
                continue;
            }
            let shadow = self
                .avatars
                .entry(snap.user)
                .or_insert_with(|| Avatar::shadow(snap.user, snap.pos, snap.health));
            shadow.pos = snap.pos;
            shadow.health = snap.health;
            shadow.ownership = Ownership::Shadow;
            self.shadow_origin.insert(snap.user, origin);
            applied += 1;
        }
        self.costs.charge_fa_shadow(ctx.timers, applied);

        // Prune shadows this origin used to own but no longer lists (the
        // user disconnected or migrated elsewhere).
        let listed: std::collections::BTreeSet<UserId> = users.iter().copied().collect();
        let stale: Vec<UserId> = self
            .shadow_origin
            .iter()
            .filter(|(u, o)| **o == origin && !listed.contains(u))
            .map(|(u, _)| *u)
            .collect();
        for user in stale {
            if self.avatars.get(&user).is_some_and(|a| !a.is_active()) {
                self.avatars.remove(&user);
            }
            self.shadow_origin.remove(&user);
        }
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::Fa,
            apply_started.elapsed().as_secs_f64(),
        );
    }

    fn update_npcs(&mut self, ctx: &mut TickCtx<'_>) {
        let started = Instant::now();
        let users = self.active_positions();
        let work = self.npcs.update(&self.world, &users);
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::Npc,
            started.elapsed().as_secs_f64(),
        );
        self.costs
            .charge_npc(ctx.timers, work.npcs_updated, work.user_scans);
    }

    fn state_update_for(&mut self, ctx: &mut TickCtx<'_>, user: UserId) -> Bytes {
        let Some(observer) = self.avatars.get(&user) else {
            return Bytes::new();
        };
        let observer_pos = observer.pos;
        let aoi_started = Instant::now();
        let aoi = self.compute_aoi_for(ctx.tick, user, &observer_pos);
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::Aoi,
            aoi_started.elapsed().as_secs_f64(),
        );
        self.costs
            .charge_aoi(ctx.timers, aoi.pairs_checked, aoi.dedup_scans);

        // Serialize self + visible avatars.
        let ser_started = Instant::now();
        let mut w = WireWriter::with_capacity(4 + 20 * (aoi.visible.len() + 1));
        w.put_u16((aoi.visible.len() + 1) as u16);
        AvatarSnapshot::from(&self.avatars[&user]).encode(&mut w);
        for target in &aoi.visible {
            AvatarSnapshot::from(&self.avatars[target]).encode(&mut w);
        }
        let payload = w.finish();
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::Su,
            ser_started.elapsed().as_secs_f64(),
        );
        self.costs
            .charge_su(ctx.timers, aoi.visible.len() + 1, payload.len());
        payload
    }

    fn replica_update(&mut self, _ctx: &mut TickCtx<'_>) -> Bytes {
        let active: Vec<&Avatar> = self.avatars.values().filter(|a| a.is_active()).collect();
        let mut w = WireWriter::with_capacity(2 + 20 * active.len());
        w.put_u16(active.len() as u16);
        for a in active {
            AvatarSnapshot::from(a).encode(&mut w);
        }
        w.finish()
    }

    fn export_user(&mut self, ctx: &mut TickCtx<'_>, user: UserId) -> Bytes {
        let known = self.avatars.len();
        self.costs.charge_mig_ini(ctx.timers, known);
        let started = Instant::now();
        let out = match self.avatars.remove(&user) {
            Some(avatar) => avatar.to_bytes(),
            None => Bytes::new(),
        };
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::MigIni,
            started.elapsed().as_secs_f64(),
        );
        out
    }

    fn import_user(&mut self, ctx: &mut TickCtx<'_>, user: UserId, payload: &[u8]) {
        let known = self.avatars.len();
        self.costs.charge_mig_rcv(ctx.timers, known);
        let started = Instant::now();
        let mut avatar = match Avatar::from_bytes(payload) {
            Ok(a) => a,
            Err(_) => Avatar::spawn(user, self.world.spawn_point(user)),
        };
        avatar.ownership = Ownership::Active;
        self.shadow_origin.remove(&user);
        self.avatars.insert(user, avatar);
        ctx.timers.add_wall(
            rtf_core::timer::TaskKind::MigRcv,
            started.elapsed().as_secs_f64(),
        );
    }

    fn npc_count(&self) -> u32 {
        self.npcs.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::timer::{TaskKind, TickTimers, TimeMode};

    fn app() -> RtfDemoApp {
        RtfDemoApp::new(World::default(), 0, CostModel::exact())
    }

    fn ctx_timers() -> TickTimers {
        TickTimers::new(TimeMode::Virtual)
    }

    fn with_ctx<T>(timers: &mut TickTimers, f: impl FnOnce(&mut TickCtx<'_>) -> T) -> T {
        let mut ctx = TickCtx {
            tick: 0,
            server: NodeId(0),
            timers,
        };
        f(&mut ctx)
    }

    #[test]
    fn aoi_scale_is_relative_to_base_and_restores_exactly() {
        let mut app = app();
        let base = app.world().aoi_radius;
        app.set_aoi_scale(0.5);
        assert!((app.world().aoi_radius - base * 0.5).abs() < 1e-6);
        app.set_aoi_scale(0.5);
        assert!(
            (app.world().aoi_radius - base * 0.5).abs() < 1e-6,
            "scaling must not compound"
        );
        assert!((app.aoi_scale() - 0.5).abs() < 1e-6);
        app.set_aoi_scale(1.0);
        assert!((app.world().aoi_radius - base).abs() < f32::EPSILON);
        app.set_aoi_scale(7.0);
        assert!(
            (app.world().aoi_radius - base).abs() < f32::EPSILON,
            "scale clamps to [0, 1]"
        );
    }

    #[test]
    fn connect_spawns_avatar() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        assert_eq!(app.avatar_count(), 1);
        assert!(app.avatar(UserId(1)).unwrap().is_active());
    }

    #[test]
    fn move_command_moves_avatar_and_charges_ua() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        let before = app.avatar(UserId(1)).unwrap().pos;
        let mut timers = ctx_timers();
        let batch = CommandBatch::movement(1.0, 0.0).to_bytes();
        with_ctx(&mut timers, |ctx| {
            app.apply_user_input(ctx, UserId(1), &batch)
        });
        let after = app.avatar(UserId(1)).unwrap().pos;
        assert!((after.x - before.x - app.world().move_speed).abs() < 1e-4);
        assert!(timers.get(TaskKind::Ua) > 0.0);
        assert!(timers.get(TaskKind::UaDser) > 0.0);
        assert_eq!(app.stats().moves_applied, 1);
    }

    #[test]
    fn attack_on_local_target_applies_damage() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        app.on_user_connected(UserId(2));
        // Teleport them next to each other.
        let p = Vec2::new(500.0, 500.0);
        app.avatars.get_mut(&UserId(1)).unwrap().pos = p;
        app.avatars.get_mut(&UserId(2)).unwrap().pos = Vec2::new(510.0, 500.0);

        let mut timers = ctx_timers();
        let batch = CommandBatch::default()
            .with_attack(UserId(2), 25)
            .to_bytes();
        let forwards = with_ctx(&mut timers, |ctx| {
            app.apply_user_input(ctx, UserId(1), &batch)
        });
        assert!(forwards.is_empty(), "local target: nothing to forward");
        assert_eq!(app.avatar(UserId(2)).unwrap().health, 75);
        assert_eq!(app.stats().hits_on_active, 1);
    }

    #[test]
    fn attack_out_of_range_misses() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        app.on_user_connected(UserId(2));
        app.avatars.get_mut(&UserId(1)).unwrap().pos = Vec2::new(0.0, 0.0);
        app.avatars.get_mut(&UserId(2)).unwrap().pos = Vec2::new(900.0, 900.0);
        let mut timers = ctx_timers();
        let batch = CommandBatch::default()
            .with_attack(UserId(2), 25)
            .to_bytes();
        with_ctx(&mut timers, |ctx| {
            app.apply_user_input(ctx, UserId(1), &batch)
        });
        assert_eq!(app.avatar(UserId(2)).unwrap().health, 100);
    }

    #[test]
    fn attack_on_shadow_target_forwards_interaction() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        app.avatars.get_mut(&UserId(1)).unwrap().pos = Vec2::new(500.0, 500.0);
        // Shadow next to the attacker, owned by server 9.
        let mut timers = ctx_timers();
        let mut w = WireWriter::new();
        w.put_u16(1);
        AvatarSnapshot {
            user: UserId(2),
            pos: Vec2::new(505.0, 500.0),
            health: 100,
        }
        .encode(&mut w);
        let payload = w.finish();
        with_ctx(&mut timers, |ctx| {
            app.apply_replica_update(ctx, NodeId(9), &[UserId(2)], &payload)
        });
        assert_eq!(app.avatar_count(), 2);

        let batch = CommandBatch::default()
            .with_attack(UserId(2), 30)
            .to_bytes();
        let forwards = with_ctx(&mut timers, |ctx| {
            app.apply_user_input(ctx, UserId(1), &batch)
        });
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].target_user, UserId(2));
        let interaction = Interaction::from_bytes(&forwards[0].payload).unwrap();
        assert_eq!(interaction.damage, 30);
        assert_eq!(app.stats().interactions_forwarded, 1);
        // The shadow's health is NOT touched locally; the owner decides.
        assert_eq!(app.avatar(UserId(2)).unwrap().health, 100);
    }

    #[test]
    fn forwarded_interaction_damages_active_target() {
        let mut app = app();
        app.on_user_connected(UserId(2));
        let mut timers = ctx_timers();
        let payload = Interaction {
            attacker: UserId(1),
            target: UserId(2),
            damage: 40,
        }
        .to_bytes();
        with_ctx(&mut timers, |ctx| {
            app.apply_forwarded_input(ctx, NodeId(9), &payload)
        });
        assert_eq!(app.avatar(UserId(2)).unwrap().health, 60);
        assert_eq!(app.stats().interactions_received, 1);
        assert!(timers.get(TaskKind::Fa) > 0.0);
        assert!(timers.get(TaskKind::FaDser) > 0.0);
    }

    #[test]
    fn replica_update_creates_and_prunes_shadows() {
        let mut app = app();
        let mut timers = ctx_timers();
        let make_payload = |ids: &[u64]| {
            let mut w = WireWriter::new();
            w.put_u16(ids.len() as u16);
            for &i in ids {
                AvatarSnapshot {
                    user: UserId(i),
                    pos: Vec2::new(1.0, 1.0),
                    health: 90,
                }
                .encode(&mut w);
            }
            w.finish()
        };
        let users1 = [UserId(10), UserId(11)];
        with_ctx(&mut timers, |ctx| {
            app.apply_replica_update(ctx, NodeId(9), &users1, &make_payload(&[10, 11]))
        });
        assert_eq!(app.avatar_count(), 2);
        assert!(!app.avatar(UserId(10)).unwrap().is_active());

        // Next update no longer lists user 11: it must be pruned.
        let users2 = [UserId(10)];
        with_ctx(&mut timers, |ctx| {
            app.apply_replica_update(ctx, NodeId(9), &users2, &make_payload(&[10]))
        });
        assert_eq!(app.avatar_count(), 1);
        assert!(app.avatar(UserId(11)).is_none());
    }

    #[test]
    fn replica_update_never_demotes_active_avatar() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        let mut timers = ctx_timers();
        let mut w = WireWriter::new();
        w.put_u16(1);
        AvatarSnapshot {
            user: UserId(1),
            pos: Vec2::new(0.0, 0.0),
            health: 1,
        }
        .encode(&mut w);
        let payload = w.finish();
        with_ctx(&mut timers, |ctx| {
            app.apply_replica_update(ctx, NodeId(9), &[UserId(1)], &payload)
        });
        let a = app.avatar(UserId(1)).unwrap();
        assert!(a.is_active());
        assert_eq!(
            a.health, 100,
            "stale replica data ignored for active avatars"
        );
    }

    #[test]
    fn state_update_contains_self_and_visible() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        app.on_user_connected(UserId(2));
        app.on_user_connected(UserId(3));
        app.avatars.get_mut(&UserId(1)).unwrap().pos = Vec2::new(500.0, 500.0);
        app.avatars.get_mut(&UserId(2)).unwrap().pos = Vec2::new(520.0, 500.0);
        app.avatars.get_mut(&UserId(3)).unwrap().pos = Vec2::new(0.0, 0.0); // far away

        let mut timers = ctx_timers();
        let payload = with_ctx(&mut timers, |ctx| app.state_update_for(ctx, UserId(1)));
        let mut r = WireReader::new(&payload);
        let count = r.get_u16().unwrap();
        assert_eq!(count, 2, "self + user 2; user 3 filtered by AoI");
        assert!(timers.get(TaskKind::Aoi) > 0.0);
        assert!(timers.get(TaskKind::Su) > 0.0);
    }

    #[test]
    fn export_import_round_trip_preserves_state() {
        let mut src = app();
        src.on_user_connected(UserId(5));
        src.avatars.get_mut(&UserId(5)).unwrap().health = 37;
        src.avatars.get_mut(&UserId(5)).unwrap().kills = 4;

        let mut timers = ctx_timers();
        let blob = with_ctx(&mut timers, |ctx| src.export_user(ctx, UserId(5)));
        assert!(
            src.avatar(UserId(5)).is_none(),
            "export removes the active copy"
        );
        assert!(timers.get(TaskKind::MigIni) > 0.0);

        let mut dst = app();
        with_ctx(&mut timers, |ctx| dst.import_user(ctx, UserId(5), &blob));
        dst.on_user_connected(UserId(5));
        let a = dst.avatar(UserId(5)).unwrap();
        assert!(a.is_active());
        assert_eq!(a.health, 37);
        assert_eq!(a.kills, 4);
        assert!(timers.get(TaskKind::MigRcv) > 0.0);
    }

    #[test]
    fn lethal_attack_respawns_and_counts_kill() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        app.on_user_connected(UserId(2));
        app.avatars.get_mut(&UserId(1)).unwrap().pos = Vec2::new(500.0, 500.0);
        app.avatars.get_mut(&UserId(2)).unwrap().pos = Vec2::new(505.0, 500.0);
        app.avatars.get_mut(&UserId(2)).unwrap().health = 10;

        let mut timers = ctx_timers();
        let batch = CommandBatch::default()
            .with_attack(UserId(2), 25)
            .to_bytes();
        with_ctx(&mut timers, |ctx| {
            app.apply_user_input(ctx, UserId(1), &batch)
        });
        let victim = app.avatar(UserId(2)).unwrap();
        assert_eq!(victim.health, crate::avatar::MAX_HEALTH);
        assert_eq!(victim.deaths, 1);
        assert_eq!(app.avatar(UserId(1)).unwrap().kills, 1);
        assert_eq!(app.stats().kills, 1);
    }

    #[test]
    fn grid_backend_emits_identical_updates_and_charges() {
        let build = |backend: AoiBackend| {
            let mut app = app();
            app.set_aoi_backend(backend);
            for u in 0..40 {
                app.on_user_connected(UserId(u));
            }
            app
        };
        let mut quad = build(AoiBackend::Quadratic);
        let mut grid = build(AoiBackend::Grid);
        assert_eq!(grid.aoi_backend(), AoiBackend::Grid);
        for u in 0..40 {
            let mut t_quad = ctx_timers();
            let mut t_grid = ctx_timers();
            let p_quad = with_ctx(&mut t_quad, |ctx| quad.state_update_for(ctx, UserId(u)));
            let p_grid = with_ctx(&mut t_grid, |ctx| grid.state_update_for(ctx, UserId(u)));
            assert_eq!(p_grid, p_quad, "payload bytes diverge for user {u}");
            assert_eq!(
                t_grid.get(TaskKind::Aoi),
                t_quad.get(TaskKind::Aoi),
                "virtual t_aoi charge diverges for user {u}"
            );
            assert_eq!(t_grid.get(TaskKind::Su), t_quad.get(TaskKind::Su));
        }
    }

    #[test]
    fn grid_cache_invalidates_across_ticks() {
        let mut app = app();
        app.set_aoi_backend(AoiBackend::Grid);
        app.on_user_connected(UserId(1));
        app.on_user_connected(UserId(2));
        app.avatars.get_mut(&UserId(1)).unwrap().pos = Vec2::new(500.0, 500.0);
        app.avatars.get_mut(&UserId(2)).unwrap().pos = Vec2::new(520.0, 500.0);
        let mut timers = ctx_timers();
        let tick0 = with_ctx(&mut timers, |ctx| app.state_update_for(ctx, UserId(1)));
        let mut r = WireReader::new(&tick0);
        assert_eq!(r.get_u16().unwrap(), 2, "both visible at tick 0");

        // User 2 walks out of range; the next tick must see fresh data.
        app.avatars.get_mut(&UserId(2)).unwrap().pos = Vec2::new(0.0, 0.0);
        let mut ctx = TickCtx {
            tick: 1,
            server: NodeId(0),
            timers: &mut timers,
        };
        let tick1 = app.state_update_for(&mut ctx, UserId(1));
        let mut r = WireReader::new(&tick1);
        assert_eq!(r.get_u16().unwrap(), 1, "only self visible at tick 1");
    }

    #[test]
    fn npc_updates_charge_npc_task() {
        let mut app = RtfDemoApp::new(World::default(), 10, CostModel::exact());
        app.on_user_connected(UserId(1));
        let mut timers = ctx_timers();
        with_ctx(&mut timers, |ctx| app.update_npcs(ctx));
        assert!(timers.get(TaskKind::Npc) > 0.0);
        assert_eq!(app.npc_count(), 10);
    }

    #[test]
    fn garbage_input_is_ignored() {
        let mut app = app();
        app.on_user_connected(UserId(1));
        let mut timers = ctx_timers();
        let forwards = with_ctx(&mut timers, |ctx| {
            app.apply_user_input(ctx, UserId(1), &[0xFF, 0x01])
        });
        assert!(forwards.is_empty());
        assert_eq!(app.stats().moves_applied, 0);
    }
}
