//! Player avatars: position, health, combat bookkeeping.

use rtf_core::entity::{Ownership, UserId, Vec2};
use rtf_core::wire::{Wire, WireError, WireReader, WireWriter};

/// Full health of a fresh avatar.
pub const MAX_HEALTH: i32 = 100;

/// A player's avatar in the arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Avatar {
    /// The owning user.
    pub user: UserId,
    /// Current position.
    pub pos: Vec2,
    /// Current health; dropping to zero respawns the avatar.
    pub health: i32,
    /// Kills scored.
    pub kills: u32,
    /// Times this avatar died.
    pub deaths: u32,
    /// Active on this server, or a shadow mirrored from a peer replica.
    pub ownership: Ownership,
}

impl Avatar {
    /// Spawns a fresh, active avatar at `pos`.
    pub fn spawn(user: UserId, pos: Vec2) -> Self {
        Self {
            user,
            pos,
            health: MAX_HEALTH,
            kills: 0,
            deaths: 0,
            ownership: Ownership::Active,
        }
    }

    /// Spawns a shadow copy (state arrives via replica updates).
    pub fn shadow(user: UserId, pos: Vec2, health: i32) -> Self {
        Self {
            user,
            pos,
            health,
            kills: 0,
            deaths: 0,
            ownership: Ownership::Shadow,
        }
    }

    /// Whether this server owns the avatar.
    pub fn is_active(&self) -> bool {
        self.ownership == Ownership::Active
    }

    /// Applies damage; on death the avatar respawns at `respawn_pos` with
    /// full health. Returns `true` if the hit was lethal.
    pub fn take_damage(&mut self, damage: u16, respawn_pos: Vec2) -> bool {
        self.health -= damage as i32;
        if self.health <= 0 {
            self.deaths += 1;
            self.health = MAX_HEALTH;
            self.pos = respawn_pos;
            true
        } else {
            false
        }
    }
}

impl Wire for Avatar {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.user.0);
        w.put_f32(self.pos.x);
        w.put_f32(self.pos.y);
        w.put_u32(self.health.max(0) as u32);
        w.put_u32(self.kills);
        w.put_u32(self.deaths);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            user: UserId(r.get_u64()?),
            pos: Vec2::new(r.get_f32()?, r.get_f32()?),
            health: r.get_u32()? as i32,
            kills: r.get_u32()?,
            deaths: r.get_u32()?,
            ownership: Ownership::Active,
        })
    }
}

/// One entry of a state update or replica update: the publicly visible
/// state of an avatar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvatarSnapshot {
    /// The avatar's user.
    pub user: UserId,
    /// Position.
    pub pos: Vec2,
    /// Health.
    pub health: i32,
}

impl From<&Avatar> for AvatarSnapshot {
    fn from(a: &Avatar) -> Self {
        Self {
            user: a.user,
            pos: a.pos,
            health: a.health,
        }
    }
}

impl Wire for AvatarSnapshot {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.user.0);
        w.put_f32(self.pos.x);
        w.put_f32(self.pos.y);
        w.put_u32(self.health.max(0) as u32);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            user: UserId(r.get_u64()?),
            pos: Vec2::new(r.get_f32()?, r.get_f32()?),
            health: r.get_u32()? as i32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_has_full_health() {
        let a = Avatar::spawn(UserId(1), Vec2::new(10.0, 20.0));
        assert_eq!(a.health, MAX_HEALTH);
        assert!(a.is_active());
    }

    #[test]
    fn damage_accumulates() {
        let mut a = Avatar::spawn(UserId(1), Vec2::new(0.0, 0.0));
        assert!(!a.take_damage(30, Vec2::new(5.0, 5.0)));
        assert_eq!(a.health, 70);
        assert_eq!(a.deaths, 0);
    }

    #[test]
    fn lethal_damage_respawns() {
        let mut a = Avatar::spawn(UserId(1), Vec2::new(0.0, 0.0));
        let respawn = Vec2::new(99.0, 99.0);
        assert!(a.take_damage(150, respawn));
        assert_eq!(a.health, MAX_HEALTH);
        assert_eq!(a.deaths, 1);
        assert_eq!(a.pos, respawn);
    }

    #[test]
    fn exact_kill_boundary() {
        let mut a = Avatar::spawn(UserId(1), Vec2::new(0.0, 0.0));
        assert!(
            a.take_damage(MAX_HEALTH as u16, Vec2::new(1.0, 1.0)),
            "0 health is dead"
        );
    }

    #[test]
    fn avatar_round_trips() {
        let mut a = Avatar::spawn(UserId(42), Vec2::new(1.5, -2.5));
        a.kills = 3;
        a.deaths = 1;
        a.health = 55;
        let b = Avatar::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(b.user, a.user);
        assert_eq!(b.health, 55);
        assert_eq!(b.kills, 3);
        assert_eq!(b.deaths, 1);
    }

    #[test]
    fn snapshot_round_trips() {
        let a = Avatar::spawn(UserId(5), Vec2::new(3.0, 4.0));
        let snap = AvatarSnapshot::from(&a);
        assert_eq!(AvatarSnapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
    }

    #[test]
    fn shadow_is_not_active() {
        let s = Avatar::shadow(UserId(2), Vec2::new(0.0, 0.0), 80);
        assert!(!s.is_active());
        assert_eq!(s.health, 80);
    }
}
