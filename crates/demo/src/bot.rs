//! Randomly interacting, computer-controlled bots.
//!
//! §V-A: "In order to simulate an average workload, we use randomly
//! interacting, computer-controlled bots for our experiments." A [`Bot`]
//! drives one client: it moves every tick and attacks with a probability
//! that grows with the number of potential targets it currently sees —
//! reproducing the paper's observation that "the number of attack commands
//! in RTFDemo increases almost linearly for higher user numbers [...] due
//! to a higher number of potential targets".

use crate::commands::CommandBatch;
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rtf_core::client::InputSource;
use rtf_core::entity::UserId;
use rtf_core::wire::{Wire, WireReader};

/// Attack-behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BotBehavior {
    /// Base probability of attacking in a tick, regardless of targets.
    pub attack_base: f64,
    /// Additional attack probability per visible target.
    pub attack_per_target: f64,
    /// Cap on the per-tick attack probability.
    pub attack_cap: f64,
    /// Damage per attack.
    pub damage: u16,
}

impl Default for BotBehavior {
    fn default() -> Self {
        Self {
            attack_base: 0.15,
            attack_per_target: 0.02,
            attack_cap: 0.75,
            damage: 10,
        }
    }
}

/// A scripted player: moves every tick, attacks visible targets randomly.
#[derive(Debug)]
pub struct Bot {
    user: UserId,
    rng: SmallRng,
    behavior: BotBehavior,
    /// Targets currently visible, learned from state updates.
    visible: Vec<UserId>,
    /// Commands issued, for test assertions and traffic stats.
    pub moves_sent: u64,
    /// Attack commands issued.
    pub attacks_sent: u64,
    /// State updates observed.
    pub updates_seen: u64,
}

impl Bot {
    /// Creates a bot with a deterministic RNG derived from `seed` and the
    /// user id.
    pub fn new(user: UserId, seed: u64, behavior: BotBehavior) -> Self {
        Self {
            user,
            rng: SmallRng::seed_from_u64(seed ^ user.0.wrapping_mul(0x9E3779B97F4A7C15)),
            behavior,
            visible: Vec::new(),
            moves_sent: 0,
            attacks_sent: 0,
            updates_seen: 0,
        }
    }

    /// The bot's user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The behaviour currently driving the bot.
    pub fn behavior(&self) -> BotBehavior {
        self.behavior
    }

    /// Replaces the bot's behaviour mid-session (workload regime shifts:
    /// a patch changes the meta, players start fighting twice as much).
    pub fn set_behavior(&mut self, behavior: BotBehavior) {
        self.behavior = behavior;
    }

    /// Targets the bot currently sees.
    pub fn visible_targets(&self) -> &[UserId] {
        &self.visible
    }

    /// The attack probability for the current number of visible targets —
    /// linear in the target count until the cap (§V-A's observation).
    pub fn attack_probability(&self) -> f64 {
        (self.behavior.attack_base + self.behavior.attack_per_target * self.visible.len() as f64)
            .min(self.behavior.attack_cap)
    }
}

impl InputSource for Bot {
    fn next_input(&mut self, _tick: u64) -> Option<Bytes> {
        // Always move in a random direction.
        let angle = self.rng.gen_range(0.0..std::f64::consts::TAU) as f32;
        let mut batch = CommandBatch::movement(angle.cos(), angle.sin());
        self.moves_sent += 1;

        // Maybe attack a random visible target.
        if !self.visible.is_empty() && self.rng.gen_bool(self.attack_probability()) {
            let target = self.visible[self.rng.gen_range(0..self.visible.len())];
            batch = batch.with_attack(target, self.behavior.damage);
            self.attacks_sent += 1;
        }
        Some(batch.to_bytes())
    }

    fn on_state_update(&mut self, _server_tick: u64, payload: &[u8]) {
        self.updates_seen += 1;
        // State update payload: u16 count, then AvatarSnapshot entries; we
        // only need the user ids (first 8 bytes of each 20-byte entry).
        let mut r = WireReader::new(payload);
        let Ok(count) = r.get_u16() else { return };
        self.visible.clear();
        for _ in 0..count {
            let Ok(snap) = crate::avatar::AvatarSnapshot::decode(&mut r) else {
                break;
            };
            if snap.user != self.user {
                self.visible.push(snap.user);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avatar::AvatarSnapshot;
    use rtf_core::entity::Vec2;
    use rtf_core::wire::WireWriter;

    fn update_payload(users: &[u64]) -> Bytes {
        let mut w = WireWriter::new();
        w.put_u16(users.len() as u16);
        for &u in users {
            AvatarSnapshot {
                user: UserId(u),
                pos: Vec2::new(0.0, 0.0),
                health: 100,
            }
            .encode(&mut w);
        }
        w.finish()
    }

    #[test]
    fn bot_always_moves() {
        let mut bot = Bot::new(UserId(1), 42, BotBehavior::default());
        for tick in 0..50 {
            let payload = bot.next_input(tick).expect("bots always send");
            let batch = CommandBatch::from_bytes(&payload).unwrap();
            assert!(!batch.commands.is_empty());
        }
        assert_eq!(bot.moves_sent, 50);
    }

    #[test]
    fn no_attacks_without_targets() {
        let mut bot = Bot::new(UserId(1), 42, BotBehavior::default());
        for tick in 0..100 {
            bot.next_input(tick);
        }
        assert_eq!(bot.attacks_sent, 0);
    }

    #[test]
    fn attack_probability_grows_with_targets() {
        let behavior = BotBehavior::default();
        let mut bot = Bot::new(UserId(1), 42, behavior);
        let p0 = bot.attack_probability();
        bot.on_state_update(0, &update_payload(&[2, 3, 4, 5]));
        let p4 = bot.attack_probability();
        assert!((p4 - p0 - 4.0 * behavior.attack_per_target).abs() < 1e-12);
    }

    #[test]
    fn attack_probability_capped() {
        let behavior = BotBehavior::default();
        let mut bot = Bot::new(UserId(1), 42, behavior);
        let many: Vec<u64> = (2..200).collect();
        bot.on_state_update(0, &update_payload(&many));
        assert_eq!(bot.attack_probability(), behavior.attack_cap);
    }

    #[test]
    fn bot_attacks_visible_targets() {
        let mut bot = Bot::new(UserId(1), 42, BotBehavior::default());
        bot.on_state_update(0, &update_payload(&[2, 3]));
        let mut attacks = 0;
        for tick in 0..200 {
            let payload = bot.next_input(tick).unwrap();
            let batch = CommandBatch::from_bytes(&payload).unwrap();
            if batch.has_attack() {
                attacks += 1;
                for cmd in &batch.commands {
                    if let crate::commands::Command::Attack { target, .. } = cmd {
                        assert!([UserId(2), UserId(3)].contains(target));
                    }
                }
            }
        }
        assert!(
            attacks > 10,
            "with p≈0.19, 200 ticks should see attacks: {attacks}"
        );
        assert_eq!(bot.attacks_sent, attacks);
    }

    #[test]
    fn self_excluded_from_targets() {
        let mut bot = Bot::new(UserId(2), 42, BotBehavior::default());
        bot.on_state_update(0, &update_payload(&[2, 3]));
        assert_eq!(bot.visible_targets(), &[UserId(3)]);
    }

    #[test]
    fn bots_are_deterministic_per_seed() {
        let mut a = Bot::new(UserId(1), 7, BotBehavior::default());
        let mut b = Bot::new(UserId(1), 7, BotBehavior::default());
        a.on_state_update(0, &update_payload(&[2, 3]));
        b.on_state_update(0, &update_payload(&[2, 3]));
        for tick in 0..20 {
            assert_eq!(a.next_input(tick), b.next_input(tick));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Bot::new(UserId(1), 7, BotBehavior::default());
        let mut b = Bot::new(UserId(1), 8, BotBehavior::default());
        let seq_a: Vec<_> = (0..10).map(|t| a.next_input(t)).collect();
        let seq_b: Vec<_> = (0..10).map(|t| b.next_input(t)).collect();
        assert_ne!(seq_a, seq_b);
    }
}
