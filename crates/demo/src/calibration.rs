//! The calibrated virtual-cost model — the reproduction's stand-in for the
//! paper's physical testbed.
//!
//! The paper measures per-task CPU times on Intel Core Duo 2.66 GHz
//! machines running RTFDemo. Modern Rust on modern hardware is orders of
//! magnitude faster and noisy under CI load, so the deterministic simulator
//! charges *virtual* seconds instead: every piece of game logic reports its
//! work units (bytes (de)serialized, avatars scanned, list entries visited)
//! and [`CostModel`] converts them to seconds using the rates below.
//!
//! The rates are calibrated so the headline numbers land in the paper's
//! range: a single server saturates near 235 users at U = 40 ms, and
//! l_max(c = 0.15) = 8 (see `EXPERIMENTS.md`). The *shapes* — which
//! parameter is linear and which quadratic in the user count — are not
//! baked in here; they emerge from the work-unit counts of the actual
//! loops, exactly as they did from the paper's C++ loops.
//!
//! Measurement noise is modelled as a multiplicative factor with a seeded
//! RNG, reproducing the "high variation due to frequently changing
//! interactivity" the paper smooths with least-squares fits.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rtf_core::timer::{TaskKind, TickTimers};

/// Per-work-unit virtual CPU costs, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRates {
    /// Deserializing one payload byte of a user input.
    pub ua_dser_per_byte: f64,
    /// Fixed cost of decoding one command.
    pub ua_dser_per_cmd: f64,
    /// Applying one move command.
    pub ua_move: f64,
    /// Fixed cost of validating one attack command.
    pub ua_attack_base: f64,
    /// Scanning one avatar during an attack's hit check (the paper's
    /// "iterate through all users in order to check which users are hit").
    pub ua_attack_scan: f64,
    /// Deserializing one payload byte of forwarded/replica traffic.
    pub fa_dser_per_byte: f64,
    /// Applying one forwarded interaction.
    pub fa_apply: f64,
    /// Applying the per-tick state of one shadow entity.
    pub fa_shadow_entity: f64,
    /// Advancing one NPC.
    pub npc_update: f64,
    /// One NPC-to-user proximity check.
    pub npc_user_scan: f64,
    /// One AoI distance check.
    pub aoi_pair: f64,
    /// One duplicate-avoidance list visit.
    pub aoi_dedup: f64,
    /// Serializing one entity into a state update.
    pub su_entity: f64,
    /// Serializing one state-update byte.
    pub su_per_byte: f64,
    /// Fixed cost of initiating one migration.
    pub mig_ini_base: f64,
    /// Per-known-avatar bookkeeping cost of initiating a migration.
    pub mig_ini_per_user: f64,
    /// Fixed cost of receiving one migration.
    pub mig_rcv_base: f64,
    /// Per-known-avatar bookkeeping cost of receiving a migration.
    pub mig_rcv_per_user: f64,
}

impl CostRates {
    /// Every per-unit cost multiplied by `factor`. Below 1 this models a
    /// faster machine; above 1 it models heavier work per unit — e.g. a
    /// content patch whose richer interactions inflate the cost of each
    /// command, scan and update.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "cost scale factor must be positive");
        Self {
            ua_dser_per_byte: self.ua_dser_per_byte * factor,
            ua_dser_per_cmd: self.ua_dser_per_cmd * factor,
            ua_move: self.ua_move * factor,
            ua_attack_base: self.ua_attack_base * factor,
            ua_attack_scan: self.ua_attack_scan * factor,
            fa_dser_per_byte: self.fa_dser_per_byte * factor,
            fa_apply: self.fa_apply * factor,
            fa_shadow_entity: self.fa_shadow_entity * factor,
            npc_update: self.npc_update * factor,
            npc_user_scan: self.npc_user_scan * factor,
            aoi_pair: self.aoi_pair * factor,
            aoi_dedup: self.aoi_dedup * factor,
            su_entity: self.su_entity * factor,
            su_per_byte: self.su_per_byte * factor,
            mig_ini_base: self.mig_ini_base * factor,
            mig_ini_per_user: self.mig_ini_per_user * factor,
            mig_rcv_base: self.mig_rcv_base * factor,
            mig_rcv_per_user: self.mig_rcv_per_user * factor,
        }
    }
}

impl Default for CostRates {
    /// The calibration used throughout the reproduction (see module docs).
    fn default() -> Self {
        Self {
            ua_dser_per_byte: 100e-9,
            ua_dser_per_cmd: 1.5e-6,
            ua_move: 121e-6,
            ua_attack_base: 5e-6,
            ua_attack_scan: 140e-9,
            fa_dser_per_byte: 100e-9,
            fa_apply: 6e-6,
            fa_shadow_entity: 13.5e-6,
            npc_update: 4e-6,
            npc_user_scan: 100e-9,
            aoi_pair: 10e-9,
            aoi_dedup: 100e-9,
            su_entity: 0.5e-6,
            su_per_byte: 25e-9,
            mig_ini_base: 0.2e-3,
            mig_ini_per_user: 7e-6,
            mig_rcv_base: 0.15e-3,
            mig_rcv_per_user: 4e-6,
        }
    }
}

/// Charges virtual seconds with optional multiplicative measurement noise.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The per-unit rates.
    pub rates: CostRates,
    /// Relative noise amplitude (0 = deterministic costs).
    pub noise: f64,
    /// Straggler factor: every charge is multiplied by this (1 = healthy;
    /// above 1 models a degraded machine — thermal throttling, noisy
    /// neighbours — for fault-injection experiments).
    slowdown: f64,
    rng: SmallRng,
}

impl CostModel {
    /// A noiseless model with the default calibration.
    pub fn exact() -> Self {
        Self::new(CostRates::default(), 0.0, 0)
    }

    /// A model with the default calibration and the paper-like measurement
    /// noise used by the parameter-determination experiments.
    pub fn noisy(seed: u64) -> Self {
        Self::new(CostRates::default(), 0.12, seed)
    }

    /// Fully custom model.
    pub fn new(rates: CostRates, noise: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&noise),
            "relative noise must be in [0, 1)"
        );
        Self {
            rates,
            noise,
            slowdown: 1.0,
            rng: SmallRng::seed_from_u64(seed ^ 0xC057_AB1E_u64),
        }
    }

    /// Sets the straggler factor (≥ 1). All subsequent charges are scaled
    /// by it; `1.0` restores a healthy machine.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        self.slowdown = factor;
    }

    /// The current straggler factor.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Permanently scales every per-unit rate by `factor` (> 0). Unlike
    /// the straggler factor this changes the *workload's* cost structure
    /// — the knob regime-shift scenarios turn when a patch makes each
    /// interaction heavier.
    pub fn scale_rates(&mut self, factor: f64) {
        self.rates = self.rates.scaled(factor);
    }

    /// Applies the noise factor to a cost.
    fn perturb(&mut self, secs: f64) -> f64 {
        // lint: allow(float_cmp, "0.0 is the exact noise-off config value, never a computed quantity")
        if self.noise == 0.0 {
            return secs;
        }
        // Approximately normal factor: mean 1, stddev `noise`, clamped so
        // costs never go negative.
        let z: f64 = (0..4).map(|_| self.rng.gen_range(-1.0..1.0)).sum::<f64>() * 0.5 * 1.73;
        secs * (1.0 + self.noise * z).clamp(0.25, 4.0)
    }

    /// Charges `secs` (perturbed and slowdown-scaled) to `task`.
    pub fn charge(&mut self, timers: &mut TickTimers, task: TaskKind, secs: f64) {
        let v = self.perturb(secs) * self.slowdown;
        timers.charge(task, v);
    }

    /// Charge for deserializing one user input.
    pub fn charge_ua_dser(&mut self, timers: &mut TickTimers, bytes: usize, commands: usize) {
        let secs = self.rates.ua_dser_per_byte * bytes as f64
            + self.rates.ua_dser_per_cmd * commands as f64;
        self.charge(timers, TaskKind::UaDser, secs);
    }

    /// Charge for one move command.
    pub fn charge_move(&mut self, timers: &mut TickTimers) {
        let secs = self.rates.ua_move;
        self.charge(timers, TaskKind::Ua, secs);
    }

    /// Charge for one attack command that scanned `avatars_scanned` users.
    pub fn charge_attack(&mut self, timers: &mut TickTimers, avatars_scanned: usize) {
        let secs = self.rates.ua_attack_base + self.rates.ua_attack_scan * avatars_scanned as f64;
        self.charge(timers, TaskKind::Ua, secs);
    }

    /// Charge for deserializing forwarded/replica payload bytes.
    pub fn charge_fa_dser(&mut self, timers: &mut TickTimers, bytes: usize) {
        let secs = self.rates.fa_dser_per_byte * bytes as f64;
        self.charge(timers, TaskKind::FaDser, secs);
    }

    /// Charge for applying one forwarded interaction.
    pub fn charge_fa_apply(&mut self, timers: &mut TickTimers) {
        let secs = self.rates.fa_apply;
        self.charge(timers, TaskKind::Fa, secs);
    }

    /// Charge for applying the state of `entities` shadow entities.
    pub fn charge_fa_shadow(&mut self, timers: &mut TickTimers, entities: usize) {
        let secs = self.rates.fa_shadow_entity * entities as f64;
        self.charge(timers, TaskKind::Fa, secs);
    }

    /// Charge for an NPC update pass.
    pub fn charge_npc(&mut self, timers: &mut TickTimers, npcs: usize, user_scans: usize) {
        let secs =
            self.rates.npc_update * npcs as f64 + self.rates.npc_user_scan * user_scans as f64;
        self.charge(timers, TaskKind::Npc, secs);
    }

    /// Charge for one user's AoI computation.
    pub fn charge_aoi(&mut self, timers: &mut TickTimers, pairs: usize, dedup_scans: usize) {
        let secs = self.rates.aoi_pair * pairs as f64 + self.rates.aoi_dedup * dedup_scans as f64;
        self.charge(timers, TaskKind::Aoi, secs);
    }

    /// Charge for serializing one user's state update.
    pub fn charge_su(&mut self, timers: &mut TickTimers, entities: usize, bytes: usize) {
        let secs = self.rates.su_entity * entities as f64 + self.rates.su_per_byte * bytes as f64;
        self.charge(timers, TaskKind::Su, secs);
    }

    /// Charge for initiating one migration with `known_avatars` in the zone.
    pub fn charge_mig_ini(&mut self, timers: &mut TickTimers, known_avatars: usize) {
        let secs = self.rates.mig_ini_base + self.rates.mig_ini_per_user * known_avatars as f64;
        self.charge(timers, TaskKind::MigIni, secs);
    }

    /// Charge for receiving one migration with `known_avatars` in the zone.
    pub fn charge_mig_rcv(&mut self, timers: &mut TickTimers, known_avatars: usize) {
        let secs = self.rates.mig_rcv_base + self.rates.mig_rcv_per_user * known_avatars as f64;
        self.charge(timers, TaskKind::MigRcv, secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::timer::TimeMode;

    #[test]
    fn exact_model_charges_precise_costs() {
        let mut model = CostModel::exact();
        let mut timers = TickTimers::new(TimeMode::Virtual);
        model.charge_move(&mut timers);
        assert_eq!(timers.get(TaskKind::Ua), CostRates::default().ua_move);
    }

    #[test]
    fn attack_cost_scales_with_scans() {
        let mut model = CostModel::exact();
        let mut t1 = TickTimers::new(TimeMode::Virtual);
        let mut t2 = TickTimers::new(TimeMode::Virtual);
        model.charge_attack(&mut t1, 100);
        model.charge_attack(&mut t2, 200);
        let r = CostRates::default();
        assert!(
            (t2.get(TaskKind::Ua) - t1.get(TaskKind::Ua) - 100.0 * r.ua_attack_scan).abs() < 1e-15
        );
    }

    #[test]
    fn migration_costs_linear_in_users_and_ini_exceeds_rcv() {
        // Fig. 6's shape: both linear, initiate above receive.
        let mut model = CostModel::exact();
        let r = model.rates;
        for n in [50usize, 100, 200, 300] {
            let mut ti = TickTimers::new(TimeMode::Virtual);
            let mut tr = TickTimers::new(TimeMode::Virtual);
            model.charge_mig_ini(&mut ti, n);
            model.charge_mig_rcv(&mut tr, n);
            let ini = ti.get(TaskKind::MigIni);
            let rcv = tr.get(TaskKind::MigRcv);
            assert!((ini - (r.mig_ini_base + r.mig_ini_per_user * n as f64)).abs() < 1e-15);
            assert!(
                ini > rcv,
                "t_mig_ini({n}) = {ini} must exceed t_mig_rcv({n}) = {rcv}"
            );
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = CostModel::noisy(1);
        let mut b = CostModel::noisy(1);
        let mut ta = TickTimers::new(TimeMode::Virtual);
        let mut tb = TickTimers::new(TimeMode::Virtual);
        for _ in 0..10 {
            a.charge_move(&mut ta);
            b.charge_move(&mut tb);
        }
        assert_eq!(ta.get(TaskKind::Ua), tb.get(TaskKind::Ua));
    }

    #[test]
    fn noise_never_negative_and_roughly_unbiased() {
        let mut model = CostModel::noisy(7);
        let mut total = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let mut t = TickTimers::new(TimeMode::Virtual);
            model.charge_move(&mut t);
            let v = t.get(TaskKind::Ua);
            assert!(v > 0.0);
            total += v;
        }
        let mean = total / n as f64;
        let expected = CostRates::default().ua_move;
        assert!(
            (mean / expected - 1.0).abs() < 0.05,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "relative noise")]
    fn bad_noise_rejected() {
        CostModel::new(CostRates::default(), 1.5, 0);
    }

    #[test]
    fn slowdown_scales_all_charges() {
        let mut model = CostModel::exact();
        model.set_slowdown(3.0);
        let mut t = TickTimers::new(TimeMode::Virtual);
        model.charge_move(&mut t);
        assert_eq!(t.get(TaskKind::Ua), 3.0 * CostRates::default().ua_move);
        model.set_slowdown(1.0);
        let mut t2 = TickTimers::new(TimeMode::Virtual);
        model.charge_move(&mut t2);
        assert_eq!(t2.get(TaskKind::Ua), CostRates::default().ua_move);
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn speedup_masquerading_as_slowdown_rejected() {
        CostModel::exact().set_slowdown(0.5);
    }
}
