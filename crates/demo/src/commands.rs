//! RTFDemo's user commands and inter-server interactions.
//!
//! §V-A: "During each tick in RTFDemo, each user can issue a move command,
//! an attack command or both commands." A client therefore sends a
//! [`CommandBatch`] per tick. Attacks that hit users owned by another
//! replica travel between servers as [`Interaction`]s (the paper's
//! forwarded inputs).

use rtf_core::entity::UserId;
use rtf_core::wire::{Wire, WireError, WireReader, WireWriter};

/// One command a user can issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Move the avatar by a direction vector (normalized by the server).
    Move {
        /// X displacement this tick.
        dx: f32,
        /// Y displacement this tick.
        dy: f32,
    },
    /// Fire at a target user.
    Attack {
        /// The user the attacker aims at.
        target: UserId,
        /// Damage dealt on a hit.
        damage: u16,
    },
}

impl Command {
    const TAG_MOVE: u8 = 1;
    const TAG_ATTACK: u8 = 2;
}

impl Wire for Command {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Command::Move { dx, dy } => {
                w.put_u8(Self::TAG_MOVE);
                w.put_f32(*dx);
                w.put_f32(*dy);
            }
            Command::Attack { target, damage } => {
                w.put_u8(Self::TAG_ATTACK);
                w.put_u64(target.0);
                w.put_u16(*damage);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            Self::TAG_MOVE => Ok(Command::Move {
                dx: r.get_f32()?,
                dy: r.get_f32()?,
            }),
            Self::TAG_ATTACK => Ok(Command::Attack {
                target: UserId(r.get_u64()?),
                damage: r.get_u16()?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// The commands one user issues in one tick.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommandBatch {
    /// The commands, in issue order.
    pub commands: Vec<Command>,
}

impl CommandBatch {
    /// A batch with a single move.
    pub fn movement(dx: f32, dy: f32) -> Self {
        Self {
            commands: vec![Command::Move { dx, dy }],
        }
    }

    /// Adds an attack to the batch.
    pub fn with_attack(mut self, target: UserId, damage: u16) -> Self {
        self.commands.push(Command::Attack { target, damage });
        self
    }

    /// Whether the batch contains an attack.
    pub fn has_attack(&self) -> bool {
        self.commands
            .iter()
            .any(|c| matches!(c, Command::Attack { .. }))
    }
}

impl Wire for CommandBatch {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.commands.len() as u8);
        for c in &self.commands {
            c.encode(w);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let count = r.get_u8()? as usize;
        let mut commands = Vec::with_capacity(count);
        for _ in 0..count {
            commands.push(Command::decode(r)?);
        }
        Ok(Self { commands })
    }
}

/// An interaction forwarded between replicas (§III-A task 2): the result of
/// an attack by a user on one server hitting a user owned by another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interaction {
    /// The attacking user.
    pub attacker: UserId,
    /// The user that was hit.
    pub target: UserId,
    /// Damage to apply.
    pub damage: u16,
}

impl Wire for Interaction {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.attacker.0);
        w.put_u64(self.target.0);
        w.put_u16(self.damage);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            attacker: UserId(r.get_u64()?),
            target: UserId(r.get_u64()?),
            damage: r.get_u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trips() {
        for cmd in [
            Command::Move { dx: 1.0, dy: -0.5 },
            Command::Attack {
                target: UserId(7),
                damage: 25,
            },
        ] {
            assert_eq!(Command::from_bytes(&cmd.to_bytes()).unwrap(), cmd);
        }
    }

    #[test]
    fn batch_round_trips() {
        let batch = CommandBatch::movement(0.5, 0.5).with_attack(UserId(3), 10);
        assert_eq!(CommandBatch::from_bytes(&batch.to_bytes()).unwrap(), batch);
        assert!(batch.has_attack());
        assert!(!CommandBatch::movement(1.0, 0.0).has_attack());
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = CommandBatch::default();
        assert_eq!(CommandBatch::from_bytes(&batch.to_bytes()).unwrap(), batch);
    }

    #[test]
    fn interaction_round_trips() {
        let i = Interaction {
            attacker: UserId(1),
            target: UserId(2),
            damage: 30,
        };
        assert_eq!(Interaction::from_bytes(&i.to_bytes()).unwrap(), i);
    }

    #[test]
    fn bad_command_tag_rejected() {
        assert_eq!(Command::from_bytes(&[9]).unwrap_err(), WireError::BadTag(9));
    }

    #[test]
    fn attack_batches_are_larger_than_move_batches() {
        // The paper observes t_ua_dser growing with the user count because
        // attacks (larger commands) become more frequent — the size ordering
        // this test pins down.
        let move_only = CommandBatch::movement(1.0, 0.0).to_bytes();
        let with_attack = CommandBatch::movement(1.0, 0.0)
            .with_attack(UserId(1), 10)
            .to_bytes();
        assert!(with_attack.len() > move_only.len());
    }
}
