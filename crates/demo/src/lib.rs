//! # rtfdemo — the paper's first-person-shooter case study
//!
//! A reimplementation of *RTFDemo*, the multiplayer FPS the ICPP 2013 paper
//! evaluates its scalability model on (§V): avatars move and attack in a
//! shared arena, interest management uses the Euclidean distance algorithm,
//! and the zone state is replicated across servers, with attacks on shadow
//! entities forwarded to the owning replica.
//!
//! The crate plugs into `rtf-core` through [`RtfDemoApp`] (the server-side
//! [`rtf_core::server::Application`]) and [`Bot`] (the client-side input
//! source — "randomly interacting, computer-controlled bots", §V-A).
//! [`CostModel`] carries the calibrated virtual per-work-unit costs that
//! substitute for the paper's physical testbed; see `DESIGN.md`.

#![warn(missing_docs)]

pub mod aoi;
pub mod app;
pub mod avatar;
pub mod bot;
pub mod calibration;
pub mod commands;
pub mod npc;
pub mod world;

pub use aoi::{compute_aoi, AoiGrid, AoiResult};
pub use app::{AoiBackend, GameStats, RtfDemoApp};
pub use avatar::{Avatar, AvatarSnapshot, MAX_HEALTH};
pub use bot::{Bot, BotBehavior};
pub use calibration::{CostModel, CostRates};
pub use commands::{Command, CommandBatch, Interaction};
pub use npc::{Npc, NpcWorld};
pub use world::World;
