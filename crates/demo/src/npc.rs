//! Computer-controlled non-player characters.
//!
//! §III-A task 3: "Updating NPCs, which requires time t_npc(n,m) for
//! calculating interactions between NPCs and users." RTFDemo's NPCs wander
//! deterministically and scan for nearby users to menace; the scan over the
//! user population is the interaction cost the model's `t_npc` captures.

use crate::world::World;
use rtf_core::entity::{NpcId, UserId, Vec2};

/// One NPC.
#[derive(Debug, Clone, PartialEq)]
pub struct Npc {
    /// Identity.
    pub id: NpcId,
    /// Position.
    pub pos: Vec2,
    /// Wander phase (radians) — advanced every update.
    pub phase: f32,
    /// The user this NPC currently menaces, if any.
    pub target: Option<UserId>,
}

impl Npc {
    /// Spawns an NPC at a deterministic position derived from its id.
    pub fn spawn(id: NpcId, world: &World) -> Self {
        const PHI: f64 = 0.380_110_787_563_046_7;
        let f = ((id.0 as f64 + 1.0) * PHI).fract() as f32;
        let pos = Vec2::new(
            world.bounds.min.x + f * world.bounds.width(),
            world.bounds.min.y + ((f * 7.0).fract()) * world.bounds.height(),
        );
        Self {
            id,
            pos,
            phase: f * std::f32::consts::TAU,
            target: None,
        }
    }
}

/// The NPC population of one server (each replica owns `m / l` NPCs).
#[derive(Debug, Clone, Default)]
pub struct NpcWorld {
    npcs: Vec<Npc>,
}

/// Work units of one NPC update pass, for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NpcWork {
    /// NPCs updated.
    pub npcs_updated: usize,
    /// NPC-to-user proximity checks performed.
    pub user_scans: usize,
}

impl NpcWorld {
    /// Creates an empty population.
    pub fn new() -> Self {
        Self::default()
    }

    /// Populates `count` NPCs.
    pub fn populate(&mut self, count: u32, world: &World) {
        self.npcs.clear();
        self.npcs
            .extend((0..count as u64).map(|i| Npc::spawn(NpcId(i), world)));
    }

    /// Current NPC count.
    pub fn len(&self) -> usize {
        self.npcs.len()
    }

    /// Whether there are no NPCs.
    pub fn is_empty(&self) -> bool {
        self.npcs.is_empty()
    }

    /// Read access for state updates.
    pub fn iter(&self) -> impl Iterator<Item = &Npc> {
        self.npcs.iter()
    }

    /// Advances every NPC one tick: wander, then scan the users for the
    /// nearest one in aggro range. Returns the work performed.
    pub fn update(&mut self, world: &World, users: &[(UserId, Vec2)]) -> NpcWork {
        let mut work = NpcWork::default();
        let aggro_sq = world.aoi_radius * world.aoi_radius;
        for npc in &mut self.npcs {
            work.npcs_updated += 1;
            // Deterministic wander on a slowly turning heading.
            npc.phase += 0.13;
            let step = Vec2::new(npc.phase.cos(), npc.phase.sin()).scale(world.move_speed * 0.5);
            npc.pos = world.apply_move(&npc.pos, step.x, step.y);

            // Interaction with users: nearest in range.
            let mut best: Option<(UserId, f32)> = None;
            for (user, pos) in users {
                work.user_scans += 1;
                let d = npc.pos.distance_squared(pos);
                if d <= aggro_sq && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((*user, d));
                }
            }
            npc.target = best.map(|(u, _)| u);
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_spawns_in_bounds() {
        let world = World::default();
        let mut npcs = NpcWorld::new();
        npcs.populate(50, &world);
        assert_eq!(npcs.len(), 50);
        for npc in npcs.iter() {
            assert!(world.bounds.contains(&npc.pos));
        }
    }

    #[test]
    fn update_moves_npcs_and_stays_in_bounds() {
        let world = World::default();
        let mut npcs = NpcWorld::new();
        npcs.populate(5, &world);
        let before: Vec<Vec2> = npcs.iter().map(|n| n.pos).collect();
        npcs.update(&world, &[]);
        let after: Vec<Vec2> = npcs.iter().map(|n| n.pos).collect();
        assert!(
            before.iter().zip(&after).any(|(b, a)| b != a),
            "NPCs wander"
        );
        for npc in npcs.iter() {
            assert!(world.bounds.contains(&npc.pos));
        }
    }

    #[test]
    fn work_scales_with_npcs_times_users() {
        let world = World::default();
        let mut npcs = NpcWorld::new();
        npcs.populate(10, &world);
        let users: Vec<(UserId, Vec2)> = (0..20)
            .map(|i| (UserId(i), Vec2::new(i as f32, 0.0)))
            .collect();
        let work = npcs.update(&world, &users);
        assert_eq!(work.npcs_updated, 10);
        assert_eq!(work.user_scans, 200, "m·n interaction checks");
    }

    #[test]
    fn npc_targets_nearby_user() {
        let world = World::default();
        let mut npcs = NpcWorld::new();
        npcs.populate(1, &world);
        let npc_pos = npcs.iter().next().unwrap().pos;
        let users = vec![(UserId(1), npc_pos)];
        npcs.update(&world, &users);
        assert_eq!(npcs.iter().next().unwrap().target, Some(UserId(1)));
    }

    #[test]
    fn npc_ignores_distant_users() {
        let world = World::default();
        let mut npcs = NpcWorld::new();
        npcs.populate(1, &world);
        // Put the user as far away as possible from the NPC.
        let npc_pos = npcs.iter().next().unwrap().pos;
        let far = Vec2::new(
            if npc_pos.x < 500.0 { 999.0 } else { 0.0 },
            if npc_pos.y < 500.0 { 999.0 } else { 0.0 },
        );
        npcs.update(&world, &[(UserId(1), far)]);
        assert_eq!(npcs.iter().next().unwrap().target, None);
    }

    #[test]
    fn deterministic_updates() {
        let world = World::default();
        let mut a = NpcWorld::new();
        let mut b = NpcWorld::new();
        a.populate(8, &world);
        b.populate(8, &world);
        for _ in 0..10 {
            a.update(&world, &[]);
            b.update(&world, &[]);
        }
        let pa: Vec<Vec2> = a.iter().map(|n| n.pos).collect();
        let pb: Vec<Vec2> = b.iter().map(|n| n.pos).collect();
        assert_eq!(pa, pb);
    }
}
