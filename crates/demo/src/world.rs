//! The RTFDemo arena: map bounds, spawn points, movement rules.

use rtf_core::entity::{Rect, UserId, Vec2};

/// Static description of the virtual environment of one zone.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    /// Playable area.
    pub bounds: Rect,
    /// Radius of every user's area of interest (Euclidean distance
    /// algorithm, §V-A).
    pub aoi_radius: f32,
    /// Distance an avatar covers per move command.
    pub move_speed: f32,
    /// Maximum distance at which an attack can hit.
    pub attack_range: f32,
}

impl Default for World {
    fn default() -> Self {
        Self {
            bounds: Rect::square(1000.0),
            aoi_radius: 150.0,
            move_speed: 4.0,
            attack_range: 120.0,
        }
    }
}

impl World {
    /// Deterministic spawn point for a user: a low-discrepancy spread over
    /// the map so user density is roughly uniform (the distribution the
    /// replication approach suits best, §VI).
    pub fn spawn_point(&self, user: UserId) -> Vec2 {
        // Weyl sequence on both axes.
        const PHI_X: f64 = 0.754877666246693;
        const PHI_Y: f64 = 0.569840290998053;
        let k = user.0 as f64 + 1.0;
        let fx = (k * PHI_X).fract() as f32;
        let fy = (k * PHI_Y).fract() as f32;
        Vec2::new(
            self.bounds.min.x + fx * self.bounds.width(),
            self.bounds.min.y + fy * self.bounds.height(),
        )
    }

    /// Applies a move command: normalizes the direction to the move speed
    /// and clamps into bounds.
    pub fn apply_move(&self, pos: &Vec2, dx: f32, dy: f32) -> Vec2 {
        let len = (dx * dx + dy * dy).sqrt();
        let step = if len > 1e-6 {
            Vec2::new(dx / len * self.move_speed, dy / len * self.move_speed)
        } else {
            Vec2::new(0.0, 0.0)
        };
        let moved = pos.add(&step);
        Vec2::new(
            moved.x.clamp(self.bounds.min.x, self.bounds.max.x - 1e-3),
            moved.y.clamp(self.bounds.min.y, self.bounds.max.y - 1e-3),
        )
    }

    /// Whether an attacker at `from` can hit a target at `to`.
    pub fn in_attack_range(&self, from: &Vec2, to: &Vec2) -> bool {
        from.distance_squared(to) <= self.attack_range * self.attack_range
    }

    /// Whether `observer` sees `observed` (Euclidean-distance interest
    /// management).
    pub fn in_aoi(&self, observer: &Vec2, observed: &Vec2) -> bool {
        observer.distance_squared(observed) <= self.aoi_radius * self.aoi_radius
    }

    /// Expected fraction of a uniformly spread population inside one AoI —
    /// used by capacity planning heuristics and tests.
    pub fn aoi_fraction(&self) -> f64 {
        let area = (self.bounds.width() * self.bounds.height()) as f64;
        (std::f64::consts::PI * (self.aoi_radius as f64).powi(2) / area).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_points_inside_bounds_and_distinct() {
        let w = World::default();
        let mut seen = Vec::new();
        for u in 0..100 {
            let p = w.spawn_point(UserId(u));
            assert!(w.bounds.contains(&p), "spawn {p:?} outside bounds");
            seen.push(p);
        }
        // No two of the first hundred users share a spawn.
        for i in 0..seen.len() {
            for j in (i + 1)..seen.len() {
                assert!(seen[i].distance(&seen[j]) > 1e-3);
            }
        }
    }

    #[test]
    fn spawns_cover_the_map() {
        // Low-discrepancy spread: all four quadrants get spawns quickly.
        let w = World::default();
        let c = w.bounds.center();
        let mut quadrants = [false; 4];
        for u in 0..16 {
            let p = w.spawn_point(UserId(u));
            let q = (p.x >= c.x) as usize * 2 + (p.y >= c.y) as usize;
            quadrants[q] = true;
        }
        assert!(quadrants.iter().all(|&q| q), "{quadrants:?}");
    }

    #[test]
    fn movement_is_speed_normalized() {
        let w = World::default();
        let start = Vec2::new(500.0, 500.0);
        let moved = w.apply_move(&start, 10.0, 0.0);
        assert!(
            (moved.x - 504.0).abs() < 1e-4,
            "step normalized to move_speed"
        );
        assert_eq!(moved.y, 500.0);
    }

    #[test]
    fn zero_direction_stays_put() {
        let w = World::default();
        let start = Vec2::new(500.0, 500.0);
        assert_eq!(w.apply_move(&start, 0.0, 0.0), start);
    }

    #[test]
    fn movement_clamped_to_bounds() {
        let w = World::default();
        let corner = Vec2::new(999.9, 0.0);
        let moved = w.apply_move(&corner, 100.0, -100.0);
        assert!(w.bounds.contains(&moved));
    }

    #[test]
    fn attack_range_and_aoi() {
        let w = World::default();
        let a = Vec2::new(0.0, 0.0);
        assert!(w.in_attack_range(&a, &Vec2::new(100.0, 0.0)));
        assert!(!w.in_attack_range(&a, &Vec2::new(121.0, 0.0)));
        assert!(w.in_aoi(&a, &Vec2::new(149.0, 0.0)));
        assert!(!w.in_aoi(&a, &Vec2::new(151.0, 0.0)));
    }

    #[test]
    fn aoi_fraction_matches_geometry() {
        let w = World::default();
        let expected = std::f64::consts::PI * 150.0 * 150.0 / 1_000_000.0;
        assert!((w.aoi_fraction() - expected).abs() < 1e-12);
    }
}
