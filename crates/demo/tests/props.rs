//! Property-based tests of the game logic: interest-management geometry,
//! command/avatar serialization, combat arithmetic and work-unit counting.

use proptest::prelude::*;
use rtf_core::entity::{Rect, UserId, Vec2};
use rtf_core::wire::Wire;
use rtfdemo::{
    compute_aoi, AoiGrid, Avatar, AvatarSnapshot, Command, CommandBatch, World, MAX_HEALTH,
};

fn arb_pos() -> impl Strategy<Value = Vec2> {
    (0.0f32..1000.0, 0.0f32..1000.0).prop_map(|(x, y)| Vec2::new(x, y))
}

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        (-1.0f32..1.0, -1.0f32..1.0).prop_map(|(dx, dy)| Command::Move { dx, dy }),
        (any::<u64>(), any::<u16>()).prop_map(|(t, d)| Command::Attack {
            target: UserId(t),
            damage: d
        }),
    ]
}

proptest! {
    #[test]
    fn aoi_is_symmetric(a in arb_pos(), b in arb_pos()) {
        let world = World::default();
        prop_assert_eq!(world.in_aoi(&a, &b), world.in_aoi(&b, &a));
    }

    #[test]
    fn aoi_visible_set_matches_distance_predicate(
        observer in arb_pos(),
        others in proptest::collection::vec(arb_pos(), 0..60),
    ) {
        let world = World::default();
        let pairs: Vec<(UserId, Vec2)> = others
            .iter()
            .enumerate()
            .map(|(i, &p)| (UserId(i as u64 + 1), p))
            .collect();
        let result = compute_aoi(&world, UserId(0), &observer, pairs.iter().copied());
        for (user, pos) in &pairs {
            let expected = world.in_aoi(&observer, pos);
            let listed = result.visible.contains(user);
            prop_assert_eq!(expected, listed, "user {} at {:?}", user, pos);
        }
        prop_assert_eq!(result.pairs_checked, pairs.len());
    }

    #[test]
    fn aoi_has_no_duplicates(
        observer in arb_pos(),
        others in proptest::collection::vec((0u64..10, arb_pos()), 0..40),
    ) {
        // Duplicate user ids on purpose.
        let world = World::default();
        let pairs: Vec<(UserId, Vec2)> =
            others.iter().map(|&(id, p)| (UserId(id), p)).collect();
        let result = compute_aoi(&world, UserId(99), &observer, pairs.iter().copied());
        let mut seen = std::collections::BTreeSet::new();
        for u in &result.visible {
            prop_assert!(seen.insert(*u), "duplicate {u} in update list");
        }
    }

    #[test]
    fn movement_stays_in_bounds(start in arb_pos(), dx in -1e3f32..1e3, dy in -1e3f32..1e3) {
        let world = World::default();
        let moved = world.apply_move(&start, dx, dy);
        prop_assert!(world.bounds.contains(&moved), "{moved:?} escaped");
    }

    #[test]
    fn movement_step_bounded_by_speed(start in arb_pos(), dx in -10.0f32..10.0, dy in -10.0f32..10.0) {
        let world = World::default();
        let moved = world.apply_move(&start, dx, dy);
        prop_assert!(start.distance(&moved) <= world.move_speed + 1e-3);
    }

    #[test]
    fn command_batch_round_trips(cmds in proptest::collection::vec(arb_command(), 0..8)) {
        let batch = CommandBatch { commands: cmds };
        let decoded = CommandBatch::from_bytes(&batch.to_bytes()).unwrap();
        prop_assert_eq!(batch, decoded);
    }

    #[test]
    fn avatar_round_trips(
        user in any::<u64>(),
        pos in arb_pos(),
        health in 1i32..=MAX_HEALTH,
        kills in 0u32..100,
        deaths in 0u32..100,
    ) {
        let mut a = Avatar::spawn(UserId(user), pos);
        a.health = health;
        a.kills = kills;
        a.deaths = deaths;
        let b = Avatar::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(a.user, b.user);
        prop_assert_eq!(a.health, b.health);
        prop_assert_eq!(a.kills, b.kills);
        prop_assert_eq!(a.deaths, b.deaths);
        prop_assert!((a.pos.x - b.pos.x).abs() < 1e-6);
    }

    #[test]
    fn snapshot_round_trips(user in any::<u64>(), pos in arb_pos(), health in 0i32..=MAX_HEALTH) {
        let s = AvatarSnapshot { user: UserId(user), pos, health };
        prop_assert_eq!(AvatarSnapshot::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn damage_sequence_preserves_health_invariants(damages in proptest::collection::vec(1u16..80, 0..50)) {
        let world = World::default();
        let mut a = Avatar::spawn(UserId(1), world.spawn_point(UserId(1)));
        let mut kills_expected = 0u32;
        for d in damages {
            if a.take_damage(d, world.spawn_point(UserId(1))) {
                kills_expected += 1;
            }
            prop_assert!(a.health > 0 && a.health <= MAX_HEALTH, "health {}", a.health);
        }
        prop_assert_eq!(a.deaths, kills_expected);
    }

    #[test]
    fn spawn_points_always_inside(user in any::<u64>()) {
        let world = World::default();
        let p = world.spawn_point(UserId(user));
        prop_assert!(world.bounds.contains(&p));
    }
}

proptest! {
    /// The spatial-hash fast path must be observably identical to the
    /// paper's quadratic scan for map-backed callers (unique ids,
    /// ascending iteration): same visible set, and counters that follow
    /// the quadratic formulas the virtual cost model charges.
    #[test]
    fn grid_aoi_matches_quadratic_scan(
        side in 200.0f32..4000.0,
        radius in 1.0f32..800.0,
        fracs in proptest::collection::vec((0.0f32..1.0, 0.0f32..1.0), 1..60),
    ) {
        let world = World {
            bounds: Rect::square(side),
            aoi_radius: radius,
            ..World::default()
        };
        let avatars: Vec<(UserId, Vec2)> = fracs
            .iter()
            .enumerate()
            .map(|(i, &(fx, fy))| (UserId(i as u64), Vec2::new(fx * side, fy * side)))
            .collect();
        let mut grid = AoiGrid::default();
        grid.rebuild(&world, &avatars);
        for &(observer, pos) in &avatars {
            let quad = compute_aoi(&world, observer, &pos, avatars.iter().copied());
            let fast = grid.query(&world, observer, &pos, avatars.len() - 1);
            prop_assert_eq!(&fast.visible, &quad.visible, "observer {:?}", observer);
            prop_assert_eq!(fast.pairs_checked, avatars.len() - 1, "quadratic scan count");
            prop_assert_eq!(fast.pairs_checked, quad.pairs_checked);
            let v = fast.visible.len();
            prop_assert_eq!(fast.dedup_scans, v * v.saturating_sub(1) / 2);
            prop_assert_eq!(fast.dedup_scans, quad.dedup_scans);
        }
    }
}
