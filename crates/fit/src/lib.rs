//! # roia-fit — nonlinear least squares for ROIA model calibration
//!
//! The scalability model of Meiländer et al. (ICPP 2013) is instantiated for
//! a particular application by *measuring* per-task CPU times at runtime and
//! approximating each as a simple function of the user count. The paper did
//! this with gnuplot's Levenberg–Marquardt fitter; this crate provides the
//! same capability as a library:
//!
//! * [`matrix`] — small dense matrices with LU and Cholesky solvers,
//! * [`model`] — the parametric model families (linear/quadratic
//!   polynomials, power law, saturating exponential),
//! * [`lm`] — the Levenberg–Marquardt optimizer itself,
//! * [`stats`] — fit-quality statistics (R², RMSE) and sample summaries.
//!
//! ## Example
//!
//! ```
//! use roia_fit::model::Polynomial;
//! use roia_fit::lm::fit_default;
//!
//! // "Measured" cost samples that actually follow 2 + 0.5·x.
//! let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 0.5 * x).collect();
//!
//! let fit = fit_default(&Polynomial::linear(), &xs, &ys).unwrap();
//! assert!((fit.beta[0] - 2.0).abs() < 1e-8);
//! assert!((fit.beta[1] - 0.5).abs() < 1e-8);
//! assert!(fit.r_squared > 0.999999);
//! ```

#![warn(missing_docs)]

pub mod lm;
pub mod matrix;
pub mod model;
pub mod stats;

pub use lm::{fit, fit_default, FitError, FitResult, LmConfig, StopReason};
pub use matrix::{Matrix, MatrixError};
pub use model::{FitModel, Polynomial, PowerLaw, SaturatingExp};
