//! Levenberg–Marquardt nonlinear least squares.
//!
//! The paper fits its measured per-task CPU times with "the nonlinear
//! least-squares Levenberg-Marquardt algorithm [Marquardt 1963] implemented in
//! the visualization tool gnuplot". This module is a from-scratch
//! implementation of the same algorithm: minimize
//! `S(β) = Σᵢ (f(β; xᵢ) − yᵢ)²` by iterating
//!
//! ```text
//! (JᵀJ + λ·diag(JᵀJ)) · δ = Jᵀ·r,     β ← β − δ
//! ```
//!
//! with the damping factor `λ` decreased after successful steps and increased
//! after rejected ones (the classic Marquardt schedule, which interpolates
//! between Gauss–Newton and gradient descent).

use crate::matrix::{norm_inf, Matrix, MatrixError};
use crate::model::FitModel;
use crate::stats::{r_squared, rmse};
use std::fmt;

/// Configuration of the Levenberg–Marquardt optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmConfig {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the infinity norm of the gradient `Jᵀr`.
    pub gradient_tolerance: f64,
    /// Convergence threshold on the relative step size `‖δ‖ / (‖β‖ + ε)`.
    pub step_tolerance: f64,
    /// Convergence threshold on the relative cost reduction.
    pub cost_tolerance: f64,
    /// Initial damping factor λ.
    pub lambda_init: f64,
    /// Multiplier applied to λ after a rejected step.
    pub lambda_up: f64,
    /// Divisor applied to λ after an accepted step.
    pub lambda_down: f64,
    /// Upper bound on λ before declaring failure to progress.
    pub lambda_max: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            gradient_tolerance: 1e-12,
            step_tolerance: 1e-12,
            cost_tolerance: 1e-14,
            lambda_init: 1e-3,
            lambda_up: 10.0,
            lambda_down: 10.0,
            lambda_max: 1e12,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Gradient norm below tolerance — a (local) minimum was reached.
    GradientSmall,
    /// Step size below tolerance.
    StepSmall,
    /// Relative cost improvement below tolerance.
    CostConverged,
    /// Damping factor exceeded `lambda_max` without making progress.
    StalledAtLambdaMax,
    /// Iteration budget exhausted.
    MaxIterations,
}

/// Result of a fit: coefficients plus diagnostics.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Fitted coefficients β.
    pub beta: Vec<f64>,
    /// Final sum of squared residuals.
    pub cost: f64,
    /// Root-mean-square error of the fit.
    pub rmse: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Why the optimizer terminated.
    pub stop: StopReason,
    /// Asymptotic standard error of each coefficient,
    /// `sqrt(s² · diag((JᵀJ)⁻¹))` with `s² = SSR / (m − p)` — what gnuplot
    /// prints as "asymptotic standard error" after a fit. Empty when the
    /// system is degenerate (m = p or singular JᵀJ).
    pub std_errors: Vec<f64>,
}

impl FitResult {
    /// Whether the optimizer reached one of the convergence criteria
    /// (as opposed to running out of iterations or stalling).
    pub fn converged(&self) -> bool {
        matches!(
            self.stop,
            StopReason::GradientSmall | StopReason::StepSmall | StopReason::CostConverged
        )
    }
}

/// Errors from [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// `xs` and `ys` have different lengths or are empty.
    BadData {
        /// Number of x samples provided.
        xs: usize,
        /// Number of y samples provided.
        ys: usize,
    },
    /// Fewer data points than model coefficients.
    Underdetermined {
        /// Number of data points.
        points: usize,
        /// Number of model coefficients.
        params: usize,
    },
    /// The model produced a non-finite value during optimization.
    NonFiniteModel,
    /// The damped normal equations could not be solved.
    LinearSolve(MatrixError),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::BadData { xs, ys } => write!(f, "bad data: {xs} xs vs {ys} ys"),
            FitError::Underdetermined { points, params } => {
                write!(
                    f,
                    "underdetermined fit: {points} points for {params} params"
                )
            }
            FitError::NonFiniteModel => write!(f, "model produced a non-finite value"),
            FitError::LinearSolve(e) => write!(f, "linear solve failed: {e}"),
        }
    }
}

impl std::error::Error for FitError {}

fn residuals_and_cost<M: FitModel>(
    model: &M,
    beta: &[f64],
    xs: &[f64],
    ys: &[f64],
) -> Result<(Vec<f64>, f64), FitError> {
    let mut r = Vec::with_capacity(xs.len());
    let mut cost = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let v = model.eval(beta, x) - y;
        if !v.is_finite() {
            return Err(FitError::NonFiniteModel);
        }
        r.push(v);
        cost += v * v;
    }
    Ok((r, cost))
}

fn jacobian<M: FitModel>(model: &M, beta: &[f64], xs: &[f64]) -> Matrix {
    let p = model.num_params();
    let mut j = Matrix::zeros(xs.len(), p);
    let mut grad = vec![0.0; p];
    for (row, &x) in xs.iter().enumerate() {
        model.gradient(beta, x, &mut grad);
        for (col, &g) in grad.iter().enumerate() {
            j[(row, col)] = g;
        }
    }
    j
}

/// Fits `model` to the data `(xs, ys)` starting from `beta0` (or the model's
/// built-in initial guess if `beta0` is `None`).
pub fn fit<M: FitModel>(
    model: &M,
    xs: &[f64],
    ys: &[f64],
    beta0: Option<&[f64]>,
    config: &LmConfig,
) -> Result<FitResult, FitError> {
    if xs.len() != ys.len() || xs.is_empty() {
        return Err(FitError::BadData {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    let p = model.num_params();
    if xs.len() < p {
        return Err(FitError::Underdetermined {
            points: xs.len(),
            params: p,
        });
    }

    let mut beta: Vec<f64> = match beta0 {
        Some(b) => {
            assert_eq!(b.len(), p, "beta0 length must equal model.num_params()");
            b.to_vec()
        }
        None => model.initial_guess(),
    };

    let (mut residuals, mut cost) = residuals_and_cost(model, &beta, xs, ys)?;
    let mut lambda = config.lambda_init;
    let mut stop = StopReason::MaxIterations;
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let j = jacobian(model, &beta, xs);
        let jtj = j.gram();
        let jtr = j
            .t_matvec(&residuals)
            .expect("jacobian rows match residuals");

        if norm_inf(&jtr) < config.gradient_tolerance {
            stop = StopReason::GradientSmall;
            break;
        }

        // Inner loop: raise λ until a step reduces the cost.
        let mut accepted = false;
        while lambda <= config.lambda_max {
            // A = JᵀJ + λ·diag(JᵀJ); guard zero diagonal entries so the
            // system stays positive definite for unused coefficients.
            let mut a = jtj.clone();
            for i in 0..p {
                let d = jtj[(i, i)];
                a[(i, i)] = d + lambda * if d > 0.0 { d } else { 1.0 };
            }
            let delta = match a.solve_cholesky(&jtr) {
                Ok(d) => d,
                Err(_) => match a.solve_lu(&jtr) {
                    Ok(d) => d,
                    Err(e) => return Err(FitError::LinearSolve(e)),
                },
            };

            let candidate: Vec<f64> = beta.iter().zip(&delta).map(|(b, d)| b - d).collect();
            let (cand_res, cand_cost) = match residuals_and_cost(model, &candidate, xs, ys) {
                Ok(rc) => rc,
                Err(FitError::NonFiniteModel) => {
                    // Treat like a rejected step: damp harder.
                    lambda *= config.lambda_up;
                    continue;
                }
                Err(e) => return Err(e),
            };

            if cand_cost < cost {
                let step_norm = crate::matrix::norm(&delta);
                let beta_norm = crate::matrix::norm(&beta);
                let cost_drop = (cost - cand_cost) / cost.max(f64::MIN_POSITIVE);

                beta = candidate;
                residuals = cand_res;
                cost = cand_cost;
                lambda = (lambda / config.lambda_down).max(1e-12);
                accepted = true;

                if step_norm <= config.step_tolerance * (beta_norm + 1e-12) {
                    stop = StopReason::StepSmall;
                }
                if cost_drop <= config.cost_tolerance {
                    stop = StopReason::CostConverged;
                }
                break;
            }
            lambda *= config.lambda_up;
        }

        if !accepted {
            stop = StopReason::StalledAtLambdaMax;
            break;
        }
        if matches!(stop, StopReason::StepSmall | StopReason::CostConverged) {
            break;
        }
    }

    let predictions: Vec<f64> = xs.iter().map(|&x| model.eval(&beta, x)).collect();

    // Asymptotic standard errors from the final Jacobian.
    let std_errors = if xs.len() > p {
        let j = jacobian(model, &beta, xs);
        let s2 = cost / (xs.len() - p) as f64;
        match j.gram().inverse() {
            Ok(cov) => (0..p).map(|i| (s2 * cov[(i, i)].max(0.0)).sqrt()).collect(),
            Err(_) => Vec::new(),
        }
    } else {
        Vec::new()
    };

    Ok(FitResult {
        rmse: rmse(&predictions, ys),
        r_squared: r_squared(&predictions, ys),
        beta,
        cost,
        iterations,
        stop,
        std_errors,
    })
}

/// Convenience wrapper: fit with the default configuration and the model's
/// initial guess.
pub fn fit_default<M: FitModel>(model: &M, xs: &[f64], ys: &[f64]) -> Result<FitResult, FitError> {
    fit(model, xs, ys, None, &LmConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Polynomial, PowerLaw, SaturatingExp};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn recovers_exact_linear_coefficients() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.5 * x).collect();
        let r = fit_default(&Polynomial::linear(), &xs, &ys).unwrap();
        assert!(r.converged(), "{:?}", r.stop);
        assert_close(&r.beta, &[3.0, 0.5], 1e-8);
        assert!(r.r_squared > 0.999999);
    }

    #[test]
    fn recovers_exact_quadratic_coefficients() {
        let xs: Vec<f64> = (1..40).map(|i| i as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1e-4 + 2e-6 * x + 3e-9 * x * x).collect();
        let r = fit_default(&Polynomial::quadratic(), &xs, &ys).unwrap();
        assert!(r.converged());
        assert!((r.beta[0] - 1e-4).abs() < 1e-8);
        assert!((r.beta[1] - 2e-6).abs() < 1e-10);
        assert!((r.beta[2] - 3e-9).abs() < 1e-12);
    }

    #[test]
    fn robust_to_noise() {
        // Deterministic pseudo-noise so the test is reproducible.
        let xs: Vec<f64> = (1..=300).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let noise = ((i as f64 * 12.9898).sin() * 43758.5453).abs().fract() - 0.5;
                2.0 + 0.1 * x + noise * 0.5
            })
            .collect();
        let r = fit_default(&Polynomial::linear(), &xs, &ys).unwrap();
        assert!((r.beta[0] - 2.0).abs() < 0.2, "intercept {}", r.beta[0]);
        assert!((r.beta[1] - 0.1).abs() < 0.01, "slope {}", r.beta[1]);
        assert!(r.r_squared > 0.99);
    }

    #[test]
    fn fits_nonlinear_power_law() {
        let xs: Vec<f64> = (1..60).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x.powf(1.7)).collect();
        let r = fit(&PowerLaw, &xs, &ys, Some(&[1.0, 1.0]), &LmConfig::default()).unwrap();
        assert!((r.beta[0] - 0.5).abs() < 1e-4, "beta {:?}", r.beta);
        assert!((r.beta[1] - 1.7).abs() < 1e-4, "beta {:?}", r.beta);
    }

    #[test]
    fn fits_saturating_exponential() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 200.0 * (1.0 - (-x / 4.0).exp()))
            .collect();
        let r = fit(
            &SaturatingExp,
            &xs,
            &ys,
            Some(&[100.0, 1.0]),
            &LmConfig::default(),
        )
        .unwrap();
        assert!((r.beta[0] - 200.0).abs() < 1e-3, "beta {:?}", r.beta);
        assert!((r.beta[1] - 4.0).abs() < 1e-4, "beta {:?}", r.beta);
    }

    #[test]
    fn rejects_mismatched_data() {
        let e = fit_default(&Polynomial::linear(), &[1.0, 2.0], &[1.0]).unwrap_err();
        assert!(matches!(e, FitError::BadData { .. }));
    }

    #[test]
    fn rejects_empty_data() {
        let e = fit_default(&Polynomial::linear(), &[], &[]).unwrap_err();
        assert!(matches!(e, FitError::BadData { .. }));
    }

    #[test]
    fn rejects_underdetermined() {
        let e = fit_default(&Polynomial::quadratic(), &[1.0, 2.0], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(
            e,
            FitError::Underdetermined {
                points: 2,
                params: 3
            }
        ));
    }

    #[test]
    fn perfect_fit_has_near_zero_cost() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0, 5.0];
        let r = fit_default(&Polynomial::new(0), &xs, &ys).unwrap();
        assert!(r.cost < 1e-20);
        assert!((r.beta[0] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn std_errors_shrink_with_less_noise() {
        let xs: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let make = |amp: f64| -> Vec<f64> {
            xs.iter()
                .enumerate()
                .map(|(i, x)| {
                    let noise = ((i as f64 * 12.9898).sin() * 43758.5453).abs().fract() - 0.5;
                    2.0 + 0.1 * x + amp * noise
                })
                .collect()
        };
        let noisy = fit_default(&Polynomial::linear(), &xs, &make(1.0)).unwrap();
        let clean = fit_default(&Polynomial::linear(), &xs, &make(0.01)).unwrap();
        assert_eq!(noisy.std_errors.len(), 2);
        assert!(clean.std_errors[1] < noisy.std_errors[1]);
        // The true slope lies within ~3 standard errors of the estimate.
        assert!((noisy.beta[1] - 0.1).abs() < 3.0 * noisy.std_errors[1] + 1e-9);
    }

    #[test]
    fn exact_fit_has_negligible_std_errors() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x).collect();
        let r = fit_default(&Polynomial::linear(), &xs, &ys).unwrap();
        assert!(r.std_errors.iter().all(|e| *e < 1e-6), "{:?}", r.std_errors);
    }

    #[test]
    fn iteration_budget_respected() {
        let xs: Vec<f64> = (1..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x.powf(1.7)).collect();
        let cfg = LmConfig {
            max_iterations: 2,
            ..LmConfig::default()
        };
        let r = fit(&PowerLaw, &xs, &ys, Some(&[1.0, 1.0]), &cfg).unwrap();
        assert!(r.iterations <= 2);
    }
}
