//! Small dense matrices and direct solvers.
//!
//! The Levenberg–Marquardt fitter in [`crate::lm`] only ever solves systems
//! whose dimension equals the number of model coefficients (2–4 for the
//! linear/quadratic approximation functions of the paper), so a simple
//! row-major dense matrix with LU and Cholesky decompositions is all we need.
//! Everything is `f64`; no SIMD or blocking is warranted at these sizes.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced by matrix construction and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factorized.
    Singular,
    /// Cholesky factorization requires a (symmetric) positive-definite matrix.
    NotPositiveDefinite,
    /// The operation requires a square matrix.
    NotSquare,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { left, right } => {
                write!(
                    f,
                    "shape mismatch: {}x{} vs {}x{}",
                    left.0, left.1, right.0, right.1
                )
            }
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            MatrixError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                // lint: allow(float_cmp, "sparsity skip: only exactly-zero entries may be skipped without changing the product")
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.cols != v.len() {
            return Err(MatrixError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Computes `Aᵀ·A`, the normal-equations matrix, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }

    /// Computes `Aᵀ·v`.
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.rows != v.len() {
            return Err(MatrixError::ShapeMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let vr = v[r];
            for c in 0..self.cols {
                out[c] += self[(r, c)] * vr;
            }
        }
        Ok(out)
    }

    /// Solves `self * x = b` by LU decomposition with partial pivoting.
    pub fn solve_lu(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        if b.len() != n {
            return Err(MatrixError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivoting: find the largest magnitude entry in this column.
            let mut pivot_row = col;
            let mut pivot_val = a[perm[col] * n + col].abs();
            for (row, &p_row) in perm.iter().enumerate().take(n).skip(col + 1) {
                let v = a[p_row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return Err(MatrixError::Singular);
            }
            perm.swap(col, pivot_row);

            let p = perm[col];
            let pivot = a[p * n + col];
            for &r in perm.iter().take(n).skip(col + 1) {
                let factor = a[r * n + col] / pivot;
                a[r * n + col] = 0.0;
                for c in (col + 1)..n {
                    a[r * n + c] -= factor * a[p * n + c];
                }
                x[r] -= factor * x[p];
            }
        }

        // Back substitution in permuted order.
        let mut out = vec![0.0; n];
        for col in (0..n).rev() {
            let p = perm[col];
            let mut s = x[p];
            for c in (col + 1)..n {
                s -= a[p * n + c] * out[c];
            }
            out[col] = s / a[p * n + col];
        }
        Ok(out)
    }

    /// Solves `self * x = b` by Cholesky decomposition.
    ///
    /// Requires `self` to be symmetric positive definite (as `JᵀJ + λ·diag`
    /// is in Levenberg–Marquardt whenever the Jacobian has full column rank).
    pub fn solve_cholesky(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        if b.len() != n {
            return Err(MatrixError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Lower-triangular factor L with self = L·Lᵀ.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(MatrixError::NotPositiveDefinite);
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        // Forward solve L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[i * n + k] * y[k];
            }
            y[i] = s / l[i * n + i];
        }
        // Backward solve Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= l[k * n + i] * x[k];
            }
            x[i] = s / l[i * n + i];
        }
        Ok(x)
    }

    /// Inverts a square matrix by solving against the identity columns
    /// (LU with partial pivoting). Errors if singular.
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0f64; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve_lu(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
            e[col] = 0.0;
        }
        Ok(inv)
    }

    /// Maximum absolute difference to another matrix (used by tests).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a vector.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (maximum absolute component) of a vector.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn identity_solves_to_rhs() {
        let m = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_close(&m.solve_lu(&b).unwrap(), &b, 1e-12);
        assert_close(&m.solve_cholesky(&b).unwrap(), &b, 1e-12);
    }

    #[test]
    fn lu_solves_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = m.solve_lu(&[5.0, 10.0]).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve_lu(&[2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(m.solve_lu(&[1.0, 2.0]), Err(MatrixError::Singular));
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let m = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = m.solve_cholesky(&[8.0, 7.0]).unwrap();
        // Verify by substitution.
        let b = m.matvec(&x).unwrap();
        assert_close(&b, &[8.0, 7.0], 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            m.solve_cholesky(&[1.0, 1.0]),
            Err(MatrixError::NotPositiveDefinite)
        );
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn gram_equals_transpose_times_self() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let v = [1.0, -1.0, 2.0];
        let got = a.t_matvec(&v).unwrap();
        let expected = a.transpose().matvec(&v).unwrap();
        assert_close(&got, &expected, 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd() {
        let m = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let b = [1.0, 2.0, 3.0];
        let x1 = m.solve_lu(&b).unwrap();
        let x2 = m.solve_cholesky(&b).unwrap();
        assert_close(&x1, &x2, 1e-10);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let m = Matrix::from_rows(&[&[4.0, 2.0, 0.5], &[2.0, 5.0, 1.0], &[0.5, 1.0, 3.0]]);
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(m.inverse(), Err(MatrixError::Singular));
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }
}
