//! Parametric model functions for curve fitting.
//!
//! Section V-A of the paper approximates each measured cost parameter with a
//! function `f(x) = Σ cᵢ·xⁱ` whose coefficients are found by the
//! Levenberg–Marquardt algorithm — linear functions for the
//! (de)serialization and migration costs, quadratic polynomials for `t_ua`
//! and `t_aoi`. This module defines the [`FitModel`] trait those fits are
//! expressed against, plus the concrete model families used in the
//! reproduction.

/// A parametric scalar model `y = f(beta; x)` with analytic gradient.
pub trait FitModel {
    /// Number of free coefficients `beta`.
    fn num_params(&self) -> usize;

    /// Evaluates the model at `x` with coefficients `beta`.
    fn eval(&self, beta: &[f64], x: f64) -> f64;

    /// Writes `∂f/∂betaᵢ` at `x` into `grad` (length `num_params()`).
    ///
    /// The default implementation uses central finite differences; models
    /// with cheap analytic gradients should override it.
    fn gradient(&self, beta: &[f64], x: f64, grad: &mut [f64]) {
        debug_assert_eq!(grad.len(), self.num_params());
        let mut b = beta.to_vec();
        for i in 0..self.num_params() {
            let h = 1e-6 * beta[i].abs().max(1e-6);
            let orig = b[i];
            b[i] = orig + h;
            let up = self.eval(&b, x);
            b[i] = orig - h;
            let down = self.eval(&b, x);
            b[i] = orig;
            grad[i] = (up - down) / (2.0 * h);
        }
    }

    /// A reasonable starting point for the optimizer.
    fn initial_guess(&self) -> Vec<f64> {
        vec![0.1; self.num_params()]
    }
}

/// Polynomial model `f(x) = beta[0] + beta[1]·x + … + beta[d]·x^d`.
///
/// `degree = 1` is the linear approximation the paper uses for
/// `t_ua_dser`, `t_fa`, `t_fa_dser`, `t_su`, `t_mig_ini` and `t_mig_rcv`;
/// `degree = 2` is the quadratic used for `t_ua` and `t_aoi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Polynomial {
    degree: usize,
}

impl Polynomial {
    /// Creates a polynomial model of the given degree (`>= 0`).
    pub fn new(degree: usize) -> Self {
        Self { degree }
    }

    /// The linear model `c0 + c1·x`.
    pub fn linear() -> Self {
        Self::new(1)
    }

    /// The quadratic model `c0 + c1·x + c2·x²`.
    pub fn quadratic() -> Self {
        Self::new(2)
    }

    /// Degree of the polynomial.
    pub fn degree(&self) -> usize {
        self.degree
    }
}

impl FitModel for Polynomial {
    fn num_params(&self) -> usize {
        self.degree + 1
    }

    fn eval(&self, beta: &[f64], x: f64) -> f64 {
        // Horner's rule, highest coefficient first.
        beta.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    fn gradient(&self, beta: &[f64], x: f64, grad: &mut [f64]) {
        debug_assert_eq!(beta.len(), self.num_params());
        let mut p = 1.0;
        for g in grad.iter_mut() {
            *g = p;
            p *= x;
        }
    }

    fn initial_guess(&self) -> Vec<f64> {
        vec![0.0; self.num_params()]
    }
}

/// Power-law model `f(x) = beta[0] · x^beta[1]`.
///
/// Not used by the paper's fits but useful for diagnosing whether a measured
/// cost grows super-linearly before committing to a polynomial degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerLaw;

impl FitModel for PowerLaw {
    fn num_params(&self) -> usize {
        2
    }

    fn eval(&self, beta: &[f64], x: f64) -> f64 {
        beta[0] * x.powf(beta[1])
    }

    fn gradient(&self, beta: &[f64], x: f64, grad: &mut [f64]) {
        let xp = x.powf(beta[1]);
        grad[0] = xp;
        // d/db1 (b0 * x^b1) = b0 * x^b1 * ln(x); guard ln(0).
        grad[1] = if x > 0.0 { beta[0] * xp * x.ln() } else { 0.0 };
    }

    fn initial_guess(&self) -> Vec<f64> {
        vec![1.0, 1.0]
    }
}

/// Saturating-exponential model `f(x) = beta[0]·(1 - exp(-x / beta[1]))`.
///
/// Models quantities that approach a ceiling, such as the effective user
/// capacity as replicas are added (§III-A's diminishing returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturatingExp;

impl FitModel for SaturatingExp {
    fn num_params(&self) -> usize {
        2
    }

    fn eval(&self, beta: &[f64], x: f64) -> f64 {
        beta[0] * (1.0 - (-x / beta[1]).exp())
    }

    fn gradient(&self, beta: &[f64], x: f64, grad: &mut [f64]) {
        let e = (-x / beta[1]).exp();
        grad[0] = 1.0 - e;
        grad[1] = -beta[0] * e * x / (beta[1] * beta[1]);
    }

    fn initial_guess(&self) -> Vec<f64> {
        vec![1.0, 1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_gradient<M: FitModel>(model: &M, beta: &[f64], x: f64) {
        let mut analytic = vec![0.0; model.num_params()];
        model.gradient(beta, x, &mut analytic);

        // Finite-difference reference.
        let mut b = beta.to_vec();
        for i in 0..model.num_params() {
            let h = 1e-6 * beta[i].abs().max(1e-6);
            let orig = b[i];
            b[i] = orig + h;
            let up = model.eval(&b, x);
            b[i] = orig - h;
            let down = model.eval(&b, x);
            b[i] = orig;
            let fd = (up - down) / (2.0 * h);
            let scale = analytic[i].abs().max(fd.abs()).max(1.0);
            assert!(
                (analytic[i] - fd).abs() / scale < 1e-4,
                "param {i}: analytic {} vs fd {}",
                analytic[i],
                fd
            );
        }
    }

    #[test]
    fn polynomial_eval_horner() {
        let p = Polynomial::quadratic();
        // 1 + 2x + 3x² at x = 2 => 17
        assert_eq!(p.eval(&[1.0, 2.0, 3.0], 2.0), 17.0);
    }

    #[test]
    fn polynomial_degree_zero_is_constant() {
        let p = Polynomial::new(0);
        assert_eq!(p.num_params(), 1);
        assert_eq!(p.eval(&[4.5], 123.0), 4.5);
    }

    #[test]
    fn polynomial_gradient_is_powers_of_x() {
        let p = Polynomial::new(3);
        let mut g = vec![0.0; 4];
        p.gradient(&[0.0; 4], 2.0, &mut g);
        assert_eq!(g, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn polynomial_gradient_matches_fd() {
        check_gradient(&Polynomial::quadratic(), &[0.5, -1.0, 2.0], 3.0);
    }

    #[test]
    fn power_law_gradient_matches_fd() {
        check_gradient(&PowerLaw, &[2.0, 1.5], 3.0);
    }

    #[test]
    fn saturating_exp_gradient_matches_fd() {
        check_gradient(&SaturatingExp, &[10.0, 5.0], 2.0);
    }

    #[test]
    fn saturating_exp_approaches_ceiling() {
        let m = SaturatingExp;
        let beta = [42.0, 1.0];
        assert!(m.eval(&beta, 100.0) > 41.99);
        assert!(m.eval(&beta, 0.0).abs() < 1e-12);
    }

    #[test]
    fn default_fd_gradient_works() {
        // A model that does not override `gradient`.
        struct Cubic;
        impl FitModel for Cubic {
            fn num_params(&self) -> usize {
                1
            }
            fn eval(&self, beta: &[f64], x: f64) -> f64 {
                beta[0] * x * x * x
            }
        }
        let mut g = [0.0];
        Cubic.gradient(&[2.0], 3.0, &mut g);
        assert!((g[0] - 27.0).abs() < 1e-3);
    }
}
