//! Fit-quality statistics and small summary helpers.
//!
//! The paper judges its approximation functions visually (Fig. 4/6); we
//! additionally report R² and RMSE so EXPERIMENTS.md can state fit quality
//! numerically, and provide the mean/variance helpers the measurement
//! campaigns use to aggregate noisy per-tick samples.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median of the samples (averages the middle pair for even lengths);
/// 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between ranks.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Residual vector `prediction − observation`.
pub fn residuals(predictions: &[f64], observations: &[f64]) -> Vec<f64> {
    debug_assert_eq!(predictions.len(), observations.len());
    predictions
        .iter()
        .zip(observations)
        .map(|(p, o)| p - o)
        .collect()
}

/// Root-mean-square error between predictions and observations.
pub fn rmse(predictions: &[f64], observations: &[f64]) -> f64 {
    debug_assert_eq!(predictions.len(), observations.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let ss: f64 = predictions
        .iter()
        .zip(observations)
        .map(|(p, o)| (p - o) * (p - o))
        .sum();
    (ss / predictions.len() as f64).sqrt()
}

/// Coefficient of determination R² = 1 − SS_res / SS_tot.
///
/// Returns 1.0 when the observations are constant and perfectly predicted,
/// and can be negative for fits worse than predicting the mean.
pub fn r_squared(predictions: &[f64], observations: &[f64]) -> f64 {
    debug_assert_eq!(predictions.len(), observations.len());
    if observations.is_empty() {
        return 1.0;
    }
    let m = mean(observations);
    let ss_tot: f64 = observations.iter().map(|o| (o - m) * (o - m)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(observations)
        .map(|(p, o)| (p - o) * (p - o))
        .sum();
    // lint: allow(float_cmp, "exact-zero guards: sums of squares are 0.0 only when every term is exactly 0.0 (R² degenerate case)")
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 }; // lint: allow(float_cmp, "same exact-zero degenerate-case guard as the line above")
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_of_known_values() {
        // Population variance of [2, 4, 4, 4, 5, 5, 7, 9] is 4.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_degenerate_cases() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 0.25), 2.5);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, -1.0), 1.0);
        assert_eq!(quantile(&xs, 2.0), 3.0);
    }

    #[test]
    fn rmse_known_value() {
        // Errors 1 and -1 => RMSE 1.
        assert!((rmse(&[1.0, 3.0], &[0.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&obs, &obs) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &obs).abs() < 1e-12);
    }

    #[test]
    fn r_squared_constant_observations() {
        let obs = [5.0; 3];
        assert_eq!(r_squared(&[5.0; 3], &obs), 1.0);
        assert_eq!(r_squared(&[4.0; 3], &obs), 0.0);
    }

    #[test]
    fn residuals_signs() {
        assert_eq!(residuals(&[2.0, 1.0], &[1.0, 2.0]), vec![1.0, -1.0]);
    }
}
