//! Property-based tests for the linear algebra and the Levenberg–Marquardt
//! fitter: solver correctness on random well-conditioned systems and exact
//! coefficient recovery on noiseless data.

use proptest::prelude::*;
use roia_fit::lm::fit_default;
use roia_fit::matrix::{norm_inf, Matrix};
use roia_fit::model::{FitModel, Polynomial};
use roia_fit::stats::{mean, quantile, r_squared, rmse};

/// A strictly diagonally dominant matrix (guaranteed nonsingular, and SPD
/// when symmetrized) of size `n`.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = vals[i * n + j];
            }
            m[(i, i)] = n as f64 + 1.0 + vals[i * n + i].abs();
        }
        m
    })
}

proptest! {
    #[test]
    fn lu_solves_dominant_systems(
        m in (2usize..6).prop_flat_map(dominant_matrix),
        scale in 0.1f64..10.0,
    ) {
        let n = m.rows();
        let b: Vec<f64> = (0..n).map(|i| scale * (i as f64 + 1.0)).collect();
        let x = m.solve_lu(&b).unwrap();
        let back = m.matvec(&x).unwrap();
        let err: Vec<f64> = back.iter().zip(&b).map(|(a, c)| a - c).collect();
        prop_assert!(norm_inf(&err) < 1e-8, "residual {err:?}");
    }

    #[test]
    fn cholesky_matches_lu_on_spd(m in (2usize..6).prop_flat_map(dominant_matrix)) {
        // Symmetrize: (M + Mᵀ)/2 keeps diagonal dominance ⇒ SPD.
        let n = m.rows();
        let mt = m.transpose();
        let mut spd = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                spd[(i, j)] = 0.5 * (m[(i, j)] + mt[(i, j)]);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let x1 = spd.solve_lu(&b).unwrap();
        let x2 = spd.solve_cholesky(&b).unwrap();
        for (a, c) in x1.iter().zip(&x2) {
            prop_assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn gram_is_symmetric_and_psd_diagonal(
        rows in 2usize..8,
        cols in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut m = Matrix::zeros(rows, cols);
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for i in 0..rows {
            for j in 0..cols {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                m[(i, j)] = ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0;
            }
        }
        let g = m.gram();
        for i in 0..cols {
            prop_assert!(g[(i, i)] >= 0.0, "diagonal of JᵀJ is nonnegative");
            for j in 0..cols {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lm_recovers_linear_coefficients(
        c0 in -10.0f64..10.0,
        c1 in -1.0f64..1.0,
    ) {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 5.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| c0 + c1 * x).collect();
        let fit = fit_default(&Polynomial::linear(), &xs, &ys).unwrap();
        prop_assert!((fit.beta[0] - c0).abs() < 1e-6, "c0: {} vs {}", fit.beta[0], c0);
        prop_assert!((fit.beta[1] - c1).abs() < 1e-7, "c1: {} vs {}", fit.beta[1], c1);
    }

    #[test]
    fn lm_recovers_quadratic_coefficients(
        c0 in 0.0f64..1e-3,
        c1 in 0.0f64..1e-5,
        c2 in 0.0f64..1e-8,
    ) {
        // Coefficient magnitudes matching the paper's cost fits.
        let xs: Vec<f64> = (1..40).map(|i| i as f64 * 8.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| c0 + c1 * x + c2 * x * x).collect();
        let fit = fit_default(&Polynomial::quadratic(), &xs, &ys).unwrap();
        let model = Polynomial::quadratic();
        for &x in &[50.0, 150.0, 300.0] {
            let truth = c0 + c1 * x + c2 * x * x;
            let got = model.eval(&fit.beta, x);
            prop_assert!(
                (got - truth).abs() <= 1e-9 + truth.abs() * 1e-6,
                "at {x}: {got} vs {truth}"
            );
        }
    }

    #[test]
    fn perfect_fit_has_r2_one_and_zero_rmse(
        c0 in -5.0f64..5.0,
        c1 in -0.5f64..0.5,
    ) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| c0 + c1 * x).collect();
        prop_assert!((r_squared(&ys, &ys) - 1.0).abs() < 1e-12);
        prop_assert!(rmse(&ys, &ys) < 1e-12);
    }

    #[test]
    fn quantile_is_monotone_and_bounded(
        mut xs in proptest::collection::vec(-100.0f64..100.0, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = quantile(&xs, lo);
        let v_hi = quantile(&xs, hi);
        prop_assert!(v_lo <= v_hi + 1e-12);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v_lo >= xs[0] - 1e-12 && v_hi <= xs[xs.len() - 1] + 1e-12);
    }

    #[test]
    fn mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}
