// Golden bad fixture for A1: annotations without justification / with an
// unknown tag are findings themselves.
// lint: allow(panic)
pub fn f(v: &[u32]) -> u32 {
    v[0]
}

// lint: allow(determinism, "not a known tag")
pub fn g() {}
