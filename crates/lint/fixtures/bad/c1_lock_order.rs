// C1 true positive: `forward` takes a then b, `backward` takes b then a.
// Two threads running one each can deadlock holding the other's next lock.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga - *gb
    }
}
