// C2 true positives: a guard held across a channel recv (every other
// contender stalls until a message arrives), and a mutex acquisition on
// the Server::tick hot path.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Pump {
    state: Mutex<Vec<u32>>,
}

impl Pump {
    pub fn drain(&self, rx: &Receiver<u32>) {
        let mut state = self.state.lock().unwrap();
        if let Ok(v) = rx.recv() {
            state.push(v);
        }
    }
}

pub struct Server {
    state: Mutex<Vec<u32>>,
}

impl Server {
    pub fn tick(&mut self) -> usize {
        let state = self.state.lock().unwrap();
        state.len()
    }
}
