// C3 true positive: a wall-clock read flows through an ordinary-looking
// helper into a trace emission. Two same-seed runs emit different
// events, so replay digests diverge even though no single function
// looks nondeterministic on its own.
use std::time::Instant;

pub fn sample_clock() -> f64 {
    let t = Instant::now(); // lint: allow(nondet, "span measurement")
    t.elapsed().as_secs_f64()
}

pub fn tick_cost() -> f64 {
    sample_clock() * 2.0
}

pub struct Reporter {
    tracer: Tracer,
}

impl Reporter {
    pub fn publish(&mut self) {
        let cost = tick_cost();
        self.tracer.emit(cost);
    }
}
