// C4 true positive: the worker closure handed to the parallel fan-out
// locks state captured from the enclosing scope. Workers then contend
// on (and mutate) shared state mid-fan-out, which breaks the engine's
// order-free contract: each worker may only touch its own item.
use std::sync::Mutex;

pub fn fan_out(items: &mut [u32], shared: &Mutex<u64>) {
    map_mut(items, 4, |item| {
        let mut total = shared.lock().unwrap();
        *total += u64::from(*item);
        *item
    });
}
