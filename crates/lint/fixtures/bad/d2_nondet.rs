// Golden bad fixture for D2: wall-clock and ambient randomness.
use std::time::Instant;

pub fn measure() -> f64 {
    let start = Instant::now();
    let jitter: f64 = rand::random();
    start.elapsed().as_secs_f64() + jitter
}
