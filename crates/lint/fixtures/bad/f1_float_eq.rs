// Golden bad fixture for F1: exact float comparison.
pub fn converged(residual: f64) -> bool {
    residual == 0.0
}
