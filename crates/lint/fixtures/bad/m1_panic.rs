// Golden bad fixture for M1: panics in a hot path.
pub fn hot(v: &[u32], o: Option<u32>) -> u32 {
    let first = v[0];
    first + o.unwrap() + o.expect("present")
}
