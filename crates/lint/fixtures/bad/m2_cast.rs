// Golden bad fixture for M2: bare numeric casts on model quantities.
pub fn lossy(users: u64, t: f64) -> (u32, u64) {
    (users as u32, t as u64)
}
