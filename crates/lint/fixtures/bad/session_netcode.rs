// Golden bad fixture for the transport session hot path: the mistakes
// the D1/D2/M1 scope extension to `crates/transport/src/session.rs`
// must catch — an unordered peer map, a wall-clock read inside the tick
// and a panicking frame decode.
use std::collections::HashMap;
use std::time::Instant;

pub fn tick(peers: &mut HashMap<u64, Vec<u8>>, frame: &[u8]) -> f64 {
    let t0 = Instant::now();
    let first = peers.values_mut().next().unwrap();
    first.push(frame[0]);
    t0.elapsed().as_secs_f64()
}
