// Golden bad fixture for the worker-pool hot path: the mistakes the
// M1/D2 scope extension to `crates/sim/src/parallel.rs` must catch —
// a panicking join in the fan-out and thread-timing nondeterminism.
use std::time::Instant;

pub fn fan_out(parts: &mut [Vec<u32>]) -> f64 {
    let started = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in parts.iter_mut() {
            handles.push(scope.spawn(move || part.len()));
        }
        let first = handles.remove(0).join().unwrap();
        let _ = first;
    });
    started.elapsed().as_secs_f64()
}
