// Golden good fixture: every would-be finding carries a justified allow.
// lint: allow-file(nondet, "this module is the wall-clock boundary for Wall mode")
use std::time::Instant;

// lint: allow(unordered, "insert/get only; never iterated, so order cannot leak")
use std::collections::HashMap;

// lint: allow(unordered, "read-only view over the map imported above")
pub fn lookup(m: &HashMap<u32, u32>, k: u32, v: &[u32]) -> u32 {
    let base = m.get(&k).copied().unwrap_or(0);
    let first = v[0]; // lint: allow(panic, "caller guarantees non-empty by construction")
    let t = Instant::now().elapsed().as_secs_f64();
    let scaled = t as u64; // lint: allow(cast, "diagnostic only, precision loss is fine")
    base + first + scaled as u32 // lint: allow(cast, "bounded by protocol to < 2^32")
}

pub fn is_sentinel(x: f64) -> bool {
    x == -1.0 // lint: allow(float_cmp, "-1.0 is an exact sentinel, never computed")
}
