// C1 clean: every path acquires a before b, so the pairwise order
// relation has no cycle and no interleaving can deadlock.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga - *gb
    }
}
