// C2 clean: the receive happens before the lock is taken, so no one
// waits on a guard while the channel is idle, and the hot tick path
// owns its state without a mutex.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Pump {
    state: Mutex<Vec<u32>>,
}

impl Pump {
    pub fn drain(&self, rx: &Receiver<u32>) {
        if let Ok(v) = rx.recv() {
            let mut state = self.state.lock().unwrap();
            state.push(v);
        }
    }
}

pub struct Server {
    state: Vec<u32>,
}

impl Server {
    pub fn tick(&mut self) -> usize {
        self.state.len()
    }
}
