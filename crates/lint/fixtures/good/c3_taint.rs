// C3 clean: the clock read sits behind a sanctioned boundary — the
// annotation on the declaration asserts its output never feeds a
// digest-affecting value, so taint stops there instead of cascading
// into every caller.
use std::time::Instant;

pub fn sample_clock() -> f64 { // lint: allow(taint, "feeds a wall-clock gauge that replay digests never read")
    let t = Instant::now(); // lint: allow(nondet, "span measurement")
    t.elapsed().as_secs_f64()
}

pub fn tick_cost() -> f64 {
    sample_clock() * 2.0
}

pub struct Reporter {
    tracer: Tracer,
}

impl Reporter {
    pub fn publish(&mut self) {
        let cost = tick_cost();
        self.tracer.emit(cost);
    }
}
