// C4 clean: the worker closure touches only its own item and locals,
// so the fan-out stays order-free — no captured state is mutated
// behind the other workers' backs.
pub fn fan_out(items: &mut [u32]) {
    map_mut(items, 4, |item| {
        let next = *item + 1;
        *item = next;
        next
    });
}
