// Golden good fixture: idiomatic deterministic code — nothing to flag.
use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn safe_first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn widen(n: u32) -> f64 {
    f64::from(n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_and_hash() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(*m.get(&1).unwrap(), 2);
        let v = [1, 2, 3];
        assert_eq!(v[0] as f64, 1.0);
    }
}
