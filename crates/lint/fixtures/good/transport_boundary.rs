// Golden good fixture: the real-I/O boundary pattern from the transport
// crate — a connect-retry deadline on the wall clock, justified inline,
// so the D2 rule stays armed without flagging the one legitimate use.
pub fn wait_deadline(budget_ms: u64) -> bool {
    let deadline = std::time::Instant::now() // lint: allow(nondet, "connect retry deadline; real-I/O boundary, never inside the deterministic sim")
        + std::time::Duration::from_millis(budget_ms);
    let now = std::time::Instant::now(); // lint: allow(nondet, "same retry-deadline clock as above")
    now < deadline
}
