//! The concurrency rule family (C1–C4) and hot-path inference.
//!
//! These rules run on the [`crate::model::Workspace`] — the call-graph /
//! lock / taint model — instead of single tokens:
//!
//! * **C1 — consistent lock order.** For every guard extent, the set of
//!   locks acquired while it is live (directly, or transitively through
//!   calls) yields ordered pairs `(outer, inner)`. Two pairs `(A, B)` and
//!   `(B, A)` anywhere in the workspace are a deadlock-shaped conflict.
//!   Lock identity is the heuristic `crate:receiver_field` key — distinct
//!   fields are distinct locks, and two instances behind one field are
//!   conservatively merged.
//! * **C2 — no blocking under a guard, no locks on the hot path.** A
//!   guard extent containing a blocking call (`recv`, no-arg `join`,
//!   `thread::sleep`, filesystem/socket setup I/O — directly or through
//!   callees) starves every other contender of that lock for the
//!   blocking call's duration (tag `blocking`). Separately, any lock
//!   acquisition inside a hot-path function is flagged (tag `hot_lock`)
//!   so the tick loop's lock discipline is an explicit, justified list.
//! * **C3 — interprocedural determinism taint.** Functions containing a
//!   D2 source (`Instant`, `thread_rng`, …) are tainted — even when the
//!   use site carries `allow(nondet)`, because the justification usually
//!   says "this never reaches the deterministic core", which is exactly
//!   what C3 checks. Taint propagates caller-ward along call edges and is
//!   stopped by `allow(taint, …)` on the boundary function. A tainted
//!   function that emits trace events, feeds a digest, or builds a
//!   `SessionReport` is flagged.
//! * **C4 — capture escape into worker closures.** Closures handed to
//!   `map_mut`/`for_each_mut`/`spawn` must only mutate worker-owned state
//!   (their parameters and locals). Mutating a *captured* binding through
//!   shared/interior mutability (`.lock()`, `.borrow_mut()`, `.store()`,
//!   `.send()`, `.write()`, `fetch_*`) makes the result depend on worker
//!   interleaving; the documented pattern is take/restore — swap state
//!   out before the fan-out, merge it back in a deterministic order after
//!   the join (see `crates/sim/src/parallel.rs`).
//!
//! Hot-path inference replaces the old hand-maintained M1 file list: the
//! hot set is every function reachable (by name, owner hint preferred)
//! from `Server::tick` / `Client::tick` / `Cluster::step` /
//! `MultiZoneWorld::step` / `*Controller::control` / `run_session`. M1
//! token checks then apply to hot function bodies inside the
//! deterministic-runtime crates.

use crate::model::{capture_escapes, CallSite, FnInfo, Workspace};
use crate::rules::{Finding, RuleId};
use std::collections::{BTreeMap, BTreeSet};

/// Hot-path roots: `(owner must contain, fn name)`; `None` owner = free fn.
const ROOTS: &[(Option<&str>, &str)] = &[
    (Some("Server"), "tick"),
    (Some("Client"), "tick"),
    (Some("Cluster"), "step"),
    (Some("MultiZoneWorld"), "step"),
    (Some("Controller"), "control"),
    (None, "run_session"),
];

/// Crates whose hot functions get M1 (panic-freedom) enforcement.
const M1_CRATES: &[&str] = &["rtf", "net", "rms", "sim", "transport"];

/// Output of the concurrency analysis.
pub struct Analysis {
    /// C1–C4 findings, unsorted (the caller merges and sorts).
    pub findings: Vec<Finding>,
    /// Per-file 1-based line ranges of hot functions in M1-enforced
    /// crates — the inferred replacement for the old M1 file list.
    pub m1_ranges: BTreeMap<String, Vec<(u32, u32)>>,
    /// Qualified names of every hot function (for `--report`).
    pub hot_fns: Vec<String>,
}

/// Resolves a call site to candidate workspace functions.
///
/// Owner hints filter hard: `Type::name(…)` and `self.name(…)` only match
/// functions implemented on `Type`; a lowercase hint matches by module
/// file. A hinted call that matches nothing is treated as external (no
/// edge) rather than falling back to every same-named function.
fn resolve(ws: &Workspace, caller: &FnInfo, call: &CallSite) -> Vec<usize> {
    let Some(cands) = ws.by_name.get(&call.name) else {
        return Vec::new();
    };
    let live: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| !ws.fns[i].is_test)
        .collect();
    if let Some(hint) = &call.owner_hint {
        let upper = hint.chars().next().is_some_and(|c| c.is_uppercase());
        return live
            .into_iter()
            .filter(|&i| {
                let f = &ws.fns[i];
                if upper {
                    f.owner.as_deref() == Some(hint.as_str())
                } else {
                    f.file.contains(&format!("/{hint}.rs")) || f.file.contains(&format!("/{hint}/"))
                }
            })
            .collect();
    }
    if call.method {
        // Unhinted method call: any same-named method (over-approximate —
        // this is what lets `.tick()` fan to every ticked type).
        return live
            .into_iter()
            .filter(|&i| ws.fns[i].owner.is_some())
            .collect();
    }
    // Free call: prefer same-file functions, else free functions anywhere.
    let same_file: Vec<usize> = live
        .iter()
        .copied()
        .filter(|&i| ws.fns[i].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    live.into_iter()
        .filter(|&i| ws.fns[i].owner.is_none())
        .collect()
}

fn is_root(f: &FnInfo) -> bool {
    !f.is_test
        && ROOTS.iter().any(|(owner, name)| {
            f.name == *name
                && match owner {
                    Some(o) => f.owner.as_deref().is_some_and(|fo| fo.contains(o)),
                    None => f.owner.is_none(),
                }
        })
}

/// BFS over resolved call edges from the hot roots.
fn hot_set(ws: &Workspace) -> BTreeSet<usize> {
    let mut hot: BTreeSet<usize> = (0..ws.fns.len()).filter(|&i| is_root(&ws.fns[i])).collect();
    let mut work: Vec<usize> = hot.iter().copied().collect();
    while let Some(i) = work.pop() {
        let calls = ws.fns[i].calls.clone();
        for call in &calls {
            for j in resolve(ws, &ws.fns[i], call) {
                if hot.insert(j) {
                    work.push(j);
                }
            }
        }
    }
    hot
}

/// Lock keys acquired by `i` transitively (memoized; cycles contribute
/// their partial set).
fn trans_locks<'a>(
    ws: &Workspace,
    i: usize,
    memo: &'a mut BTreeMap<usize, BTreeSet<String>>,
    visiting: &mut BTreeSet<usize>,
) -> BTreeSet<String> {
    if let Some(s) = memo.get(&i) {
        return s.clone();
    }
    if !visiting.insert(i) {
        return BTreeSet::new();
    }
    let mut set: BTreeSet<String> = ws.fns[i].locks.iter().map(|l| l.key.clone()).collect();
    let calls = ws.fns[i].calls.clone();
    for call in &calls {
        for j in resolve(ws, &ws.fns[i], call) {
            set.extend(trans_locks(ws, j, memo, visiting));
        }
    }
    visiting.remove(&i);
    memo.insert(i, set.clone());
    set
}

/// Why `i` blocks (transitively), if it does.
fn trans_blocking(
    ws: &Workspace,
    i: usize,
    memo: &mut BTreeMap<usize, Option<String>>,
    visiting: &mut BTreeSet<usize>,
) -> Option<String> {
    if let Some(s) = memo.get(&i) {
        return s.clone();
    }
    if !visiting.insert(i) {
        return None;
    }
    let mut why = ws.fns[i].blocking.first().map(|b| b.what.clone());
    if why.is_none() {
        let calls = ws.fns[i].calls.clone();
        'outer: for call in &calls {
            for j in resolve(ws, &ws.fns[i], call) {
                if let Some(inner) = trans_blocking(ws, j, memo, visiting) {
                    why = Some(format!("{} -> {}", ws.fns[j].qualified(), inner));
                    break 'outer;
                }
            }
        }
    }
    visiting.remove(&i);
    memo.insert(i, why.clone());
    why
}

/// Whether `i` is determinism-tainted; returns the witness chain.
fn tainted(
    ws: &Workspace,
    allows: &BTreeMap<&str, &crate::rules::Allows>,
    i: usize,
    memo: &mut BTreeMap<usize, Option<String>>,
    visiting: &mut BTreeSet<usize>,
) -> Option<String> {
    if let Some(s) = memo.get(&i) {
        return s.clone();
    }
    if !visiting.insert(i) {
        return None;
    }
    let f = &ws.fns[i];
    let boundary = allows
        .get(f.file.as_str())
        .is_some_and(|a| a.suppressed("taint", f.line));
    let mut why = None;
    if !boundary {
        if let Some((line, what)) = f.taints.first() {
            why = Some(format!(
                "{} ({}:{} uses {what})",
                f.qualified(),
                f.file,
                line
            ));
        } else {
            let calls = f.calls.clone();
            'outer: for call in &calls {
                let call_allowed = allows
                    .get(f.file.as_str())
                    .is_some_and(|a| a.suppressed("taint", call.line));
                if call_allowed {
                    continue;
                }
                for j in resolve(ws, &ws.fns[i], call) {
                    if let Some(inner) = tainted(ws, allows, j, memo, visiting) {
                        why = Some(format!("{} -> {inner}", ws.fns[i].qualified()));
                        break 'outer;
                    }
                }
            }
        }
    }
    visiting.remove(&i);
    memo.insert(i, why.clone());
    why
}

/// Runs C1–C4 and hot-path inference over the workspace model.
pub fn analyze(ws: &Workspace) -> Analysis {
    let allows: BTreeMap<&str, &crate::rules::Allows> = ws
        .files
        .iter()
        .map(|f| (f.rel.as_str(), &f.allows))
        .collect();
    let suppressed = |tag: &str, file: &str, line: u32| {
        allows.get(file).is_some_and(|a| a.suppressed(tag, line))
    };
    let hot = hot_set(ws);
    let mut findings = Vec::new();

    // ---- C1: globally consistent lock order ------------------------------
    // First witness per ordered (outer, inner) pair.
    let mut pairs: BTreeMap<(String, String), (String, u32, String, String)> = BTreeMap::new();
    let mut lock_memo = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for l in &f.locks {
            let mut inner: BTreeSet<(String, String)> = BTreeSet::new();
            for l2 in &f.locks {
                if l.guard.0 < l2.tok && l2.tok < l.guard.1 && l2.key != l.key {
                    inner.insert((
                        l2.key.clone(),
                        format!("`{}.{}()`", l2.receiver, l2.op.name()),
                    ));
                }
            }
            for call in &f.calls {
                if !(l.guard.0 < call.tok && call.tok < l.guard.1) {
                    continue;
                }
                for j in resolve(ws, &ws.fns[i], call) {
                    for k in trans_locks(ws, j, &mut lock_memo, &mut BTreeSet::new()) {
                        if k != l.key {
                            inner.insert((k, format!("call to `{}`", ws.fns[j].qualified())));
                        }
                    }
                }
            }
            for (k, via) in inner {
                pairs
                    .entry((l.key.clone(), k))
                    .or_insert_with(|| (f.file.clone(), l.line, via, f.qualified()));
            }
        }
    }
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), (file, line, via, holder)) in &pairs {
        if a >= b || reported.contains(&(a.clone(), b.clone())) {
            continue;
        }
        if let Some((rfile, rline, rvia, rholder)) = pairs.get(&(b.clone(), a.clone())) {
            reported.insert((a.clone(), b.clone()));
            if suppressed("lock_order", file, *line) || suppressed("lock_order", rfile, *rline) {
                continue;
            }
            findings.push(Finding {
                rule: RuleId::C1.id(),
                file: file.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "conflicting lock order: `{holder}` holds `{a}` while acquiring `{b}` \
                     ({via}), but `{rholder}` ({rfile}:{rline}) holds `{b}` while acquiring \
                     `{a}` ({rvia}); two threads taking these paths concurrently can deadlock \
                     — pick one global order or annotate `// lint: allow(lock_order, \"...\")`"
                ),
            });
        }
    }

    // ---- C2: blocking under a guard + hot-path locks ---------------------
    let mut block_memo = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for l in &f.locks {
            for b in &f.blocking {
                if l.guard.0 < b.tok
                    && b.tok < l.guard.1
                    && !suppressed("blocking", &f.file, b.line)
                {
                    findings.push(Finding {
                        rule: RuleId::C2.id(),
                        file: f.file.clone(),
                        line: b.line,
                        col: 1,
                        message: format!(
                            "`{}` guard (acquired line {}) is held across blocking {}; every \
                             other contender stalls for the call's duration — move the blocking \
                             work outside the guard or annotate \
                             `// lint: allow(blocking, \"...\")`",
                            l.receiver, l.line, b.what
                        ),
                    });
                }
            }
            for call in &f.calls {
                if !(l.guard.0 < call.tok && call.tok < l.guard.1) {
                    continue;
                }
                if suppressed("blocking", &f.file, call.line) {
                    continue;
                }
                for j in resolve(ws, &ws.fns[i], call) {
                    if let Some(why) = trans_blocking(ws, j, &mut block_memo, &mut BTreeSet::new())
                    {
                        findings.push(Finding {
                            rule: RuleId::C2.id(),
                            file: f.file.clone(),
                            line: call.line,
                            col: 1,
                            message: format!(
                                "`{}` guard (acquired line {}) is held across `{}` which blocks \
                                 ({why}); move the call outside the guard or annotate \
                                 `// lint: allow(blocking, \"...\")`",
                                l.receiver,
                                l.line,
                                ws.fns[j].qualified()
                            ),
                        });
                        break;
                    }
                }
            }
        }
    }
    for &i in &hot {
        let f = &ws.fns[i];
        for l in &f.locks {
            if suppressed("hot_lock", &f.file, l.line) {
                continue;
            }
            findings.push(Finding {
                rule: RuleId::C2.id(),
                file: f.file.clone(),
                line: l.line,
                col: l.col,
                message: format!(
                    "`{}.{}()` acquires a lock inside `{}`, which is on the tick/control \
                     hot path; a contended or poisoned lock here stalls the whole round — \
                     keep the hot path lock-free or annotate each justified acquisition \
                     `// lint: allow(hot_lock, \"...\")`",
                    l.receiver,
                    l.op.name(),
                    f.qualified()
                ),
            });
        }
    }

    // ---- C3: interprocedural determinism taint ---------------------------
    let mut taint_memo = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some(sink) = f.sink else { continue };
        let Some(why) = tainted(ws, &allows, i, &mut taint_memo, &mut BTreeSet::new()) else {
            continue;
        };
        if suppressed("taint", &f.file, f.line) {
            continue;
        }
        findings.push(Finding {
            rule: RuleId::C3.id(),
            file: f.file.clone(),
            line: f.line,
            col: 1,
            message: format!(
                "`{}` {sink} but is reachable from nondeterministic input: {why}; seeded \
                 reruns will diverge — thread sim-time/seeded RNG through, or mark the \
                 sanctioned boundary fn `// lint: allow(taint, \"...\")`",
                f.qualified()
            ),
        });
    }

    // ---- C4: capture escape into worker closures -------------------------
    for fm in &ws.files {
        for &i in &fm.fns {
            let f = &ws.fns[i];
            if f.is_test {
                continue;
            }
            for closure in &f.closures {
                for (line, root, trigger) in capture_escapes(&fm.lexed.tokens, closure) {
                    if suppressed("capture", &fm.rel, line) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: RuleId::C4.id(),
                        file: fm.rel.clone(),
                        line,
                        col: 1,
                        message: format!(
                            "worker closure passed to `{}` mutates captured `{root}` via \
                             `.{trigger}()`; worker interleaving decides the order, so \
                             same-seed runs can diverge — use the take/restore pattern \
                             (swap state out before the fan-out, merge in deterministic \
                             order after the join; see parallel.rs) or annotate \
                             `// lint: allow(capture, \"...\")`",
                            closure.host
                        ),
                    });
                }
            }
        }
    }

    // ---- Hot-path M1 ranges ----------------------------------------------
    let mut m1_ranges: BTreeMap<String, Vec<(u32, u32)>> = BTreeMap::new();
    let mut hot_fns = Vec::new();
    for fm in &ws.files {
        for &i in &fm.fns {
            if !hot.contains(&i) || ws.fns[i].is_test {
                continue;
            }
            let f = &ws.fns[i];
            hot_fns.push(format!("{} ({})", f.qualified(), f.file));
            if !M1_CRATES.contains(&f.crate_name.as_str()) {
                continue;
            }
            let end_line = fm
                .lexed
                .tokens
                .get(f.body.1)
                .or_else(|| fm.lexed.tokens.last())
                .map(|t| t.line)
                .unwrap_or(f.line);
            m1_ranges
                .entry(fm.rel.clone())
                .or_default()
                .push((f.line, end_line));
        }
    }
    hot_fns.sort();
    hot_fns.dedup();

    Analysis {
        findings,
        m1_ranges,
        hot_fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        analyze(&build(&owned)).findings
    }

    #[test]
    fn c1_conflicting_order_across_fns() {
        let src = "\
fn ab(a: &Mutex<u8>, b: &Mutex<u8>) { let g = a.lock().unwrap(); let h = b.lock().unwrap(); }
fn ba(a: &Mutex<u8>, b: &Mutex<u8>) { let h = b.lock().unwrap(); let g = a.lock().unwrap(); }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert_eq!(f.iter().filter(|f| f.rule == "C1").count(), 1, "{f:?}");
    }

    #[test]
    fn c1_interprocedural_via_callee() {
        let src = "\
fn inner_b(b: &Mutex<u8>) { let h = b.lock().unwrap(); }
fn ab(a: &Mutex<u8>, b: &Mutex<u8>) { let g = a.lock().unwrap(); inner_b(b); }
fn ba(a: &Mutex<u8>, b: &Mutex<u8>) { let h = b.lock().unwrap(); let g = a.lock().unwrap(); }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert_eq!(f.iter().filter(|f| f.rule == "C1").count(), 1, "{f:?}");
    }

    #[test]
    fn c1_consistent_order_is_clean() {
        let src = "\
fn ab(a: &Mutex<u8>, b: &Mutex<u8>) { let g = a.lock().unwrap(); let h = b.lock().unwrap(); }
fn ab2(a: &Mutex<u8>, b: &Mutex<u8>) { let g = a.lock().unwrap(); let h = b.lock().unwrap(); }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert!(f.iter().all(|f| f.rule != "C1"), "{f:?}");
    }

    #[test]
    fn c2_blocking_under_guard() {
        let src = "\
fn f(m: &Mutex<u8>, rx: &Receiver<u8>) { let g = m.lock().unwrap(); rx.recv(); }
fn ok(m: &Mutex<u8>, rx: &Receiver<u8>) { { let g = m.lock().unwrap(); } rx.recv(); }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert_eq!(f.iter().filter(|f| f.rule == "C2").count(), 1, "{f:?}");
    }

    #[test]
    fn c2_transitive_blocking_callee() {
        let src = "\
fn slow() { thread::sleep(d); }
fn f(m: &Mutex<u8>) { let g = m.lock().unwrap(); slow(); }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert!(
            f.iter()
                .any(|f| f.rule == "C2" && f.message.contains("slow")),
            "{f:?}"
        );
    }

    #[test]
    fn c2_hot_lock_flagged_cold_lock_not() {
        let src = "\
impl Server { fn tick(&mut self) { self.hotwork(); } fn hotwork(&mut self) { self.m.lock().unwrap(); } }
fn cold(m: &Mutex<u8>) { let g = m.lock().unwrap(); }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        let hot: Vec<_> = f.iter().filter(|f| f.rule == "C2").collect();
        assert_eq!(hot.len(), 1, "{hot:?}");
        assert!(hot[0].message.contains("hotwork"));
    }

    #[test]
    fn c3_taint_reaches_sink_through_calls() {
        let src = "\
fn now_s() -> f64 { let t = Instant::now(); 0.0 }
fn mid() -> f64 { now_s() }
impl Report { fn finish(&self, tr: &Tracer) { let x = mid(); tr.emit(x); } }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert_eq!(f.iter().filter(|f| f.rule == "C3").count(), 1, "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("now_s")));
    }

    #[test]
    fn c3_allow_taint_marks_boundary() {
        let src = "\
// lint: allow(taint, \"wall mode only; virtual mode never calls this\")
fn now_s() -> f64 { let t = Instant::now(); 0.0 }
impl Report { fn finish(&self, tr: &Tracer) { let x = now_s(); tr.emit(x); } }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert!(f.iter().all(|f| f.rule != "C3"), "{f:?}");
    }

    #[test]
    fn c4_capture_escape_flagged_param_ok() {
        let src = "\
fn bad(items: &mut [u8], out: &Mutex<Vec<u8>>) { map_mut(items, 4, |h| { out.lock().unwrap().push(*h); }); }
fn good(items: &mut [H]) { map_mut(items, 4, |h| h.server.tick()); }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        let c4: Vec<_> = f.iter().filter(|f| f.rule == "C4").collect();
        assert_eq!(c4.len(), 1, "{c4:?}");
        assert!(c4[0].message.contains("`out`"));
    }

    #[test]
    fn hot_inference_walks_call_graph() {
        let files = [
            (
                "crates/rtf/src/server.rs",
                "impl Server { pub fn tick(&mut self) { self.apply(); helper(); } fn apply(&mut self) { v[0]; } }\nfn helper() { w.unwrap(); }\nfn cold() { z.unwrap(); }",
            ),
        ];
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let a = analyze(&build(&owned));
        let ranges = &a.m1_ranges["crates/rtf/src/server.rs"];
        assert_eq!(
            ranges.len(),
            3,
            "tick, apply and helper are hot: {ranges:?}"
        );
        let covered = |line: u32| ranges.iter().any(|(s, e)| *s <= line && line <= *e);
        assert!(covered(1), "tick/apply on line 1");
        assert!(covered(2), "helper on line 2");
        assert!(!covered(3), "cold fn not hot");
    }

    #[test]
    fn test_fns_do_not_produce_findings() {
        let src = "\
#[cfg(test)]
mod tests { fn f(m: &Mutex<u8>, rx: &Receiver<u8>) { let g = m.lock().unwrap(); rx.recv(); } }
";
        let f = run(&[("crates/sim/src/x.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }
}
