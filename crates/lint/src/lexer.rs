//! A minimal Rust lexer — just enough structure for the roia-lint rules.
//!
//! The analyzer cannot use `syn` (it must build in hermetic environments
//! with no registry access), so it works on a token stream produced here.
//! The lexer understands the parts of the grammar that matter for not
//! mis-firing: line and nested block comments, string/raw-string/byte-string
//! and char literals (so `"HashMap"` in a string is not an identifier),
//! lifetimes vs char literals, numeric literals with suffixes and exponents,
//! and a small set of multi-char operators (`::`, `==`, `!=`, ...).

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including suffix, e.g. `1.5e-3f64`).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Punctuation / operator (possibly multi-char).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation `op`.
    pub fn is_punct(&self, op: &str) -> bool {
        self.kind == TokKind::Punct && self.text == op
    }
}

/// One comment (the rules scan these for `lint: allow(...)` annotations).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether code tokens precede the comment on its starting line.
    pub trailing: bool,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens.
    pub tokens: Vec<Tok>,
    /// Comments.
    pub comments: Vec<Comment>,
}

/// Two-character operators recognized as single tokens (maximal munch over
/// this table only; everything else is a single-char punct).
const TWO_CHAR_OPS: &[&str] = &[
    "::", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "|=", "&=",
];

struct Scanner {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Scanner {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn cur(&self) -> Option<char> {
        self.peek(0)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.cur()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Unterminated literals are tolerated
/// (the rest of the file becomes one literal token): the linter must never
/// panic on weird input, fixtures included.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner::new(src);
    let mut out = Lexed::default();
    let mut code_on_line: u32 = 0; // last line that produced a code token

    while let Some(c) = s.cur() {
        let (line, col) = (s.line, s.col);

        // Whitespace.
        if c.is_whitespace() {
            s.bump();
            continue;
        }

        // Comments.
        if c == '/' && s.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(c) = s.cur() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                s.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                trailing: code_on_line == line,
            });
            continue;
        }
        if c == '/' && s.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0u32;
            while let Some(c) = s.cur() {
                if c == '/' && s.peek(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    s.bump();
                    s.bump();
                } else if c == '*' && s.peek(1) == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    s.bump();
                    s.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    s.bump();
                }
            }
            out.comments.push(Comment {
                text,
                line,
                trailing: code_on_line == line,
            });
            continue;
        }

        // Raw identifiers and raw/byte string prefixes.
        if c == 'r' || c == 'b' {
            let p1 = s.peek(1);
            let p2 = s.peek(2);
            // r"..." | r#"..."# | br"..." | b"..." | b'x' | r#ident
            let (is_raw_str, hash_offset) = match (c, p1, p2) {
                ('r', Some('"'), _) => (true, 1),
                ('r', Some('#'), _) => {
                    // distinguish r#"…"# from r#ident
                    let mut k = 1;
                    while s.peek(k) == Some('#') {
                        k += 1;
                    }
                    if s.peek(k) == Some('"') {
                        (true, 1)
                    } else {
                        (false, 0)
                    }
                }
                ('b', Some('"'), _) => (true, 1),
                ('b', Some('r'), Some('"' | '#')) => (true, 2),
                _ => (false, 0),
            };
            if is_raw_str {
                let mut text = String::new();
                for _ in 0..hash_offset {
                    text.push(s.bump().unwrap_or_default());
                }
                // count hashes
                let mut hashes = 0usize;
                while s.cur() == Some('#') {
                    hashes += 1;
                    text.push(s.bump().unwrap_or_default());
                }
                if s.cur() == Some('"') {
                    text.push(s.bump().unwrap_or_default());
                    'body: while let Some(c) = s.bump() {
                        text.push(c);
                        if c == '"' {
                            // need `hashes` following '#'
                            for k in 0..hashes {
                                if s.peek(k) != Some('#') {
                                    continue 'body;
                                }
                            }
                            for _ in 0..hashes {
                                text.push(s.bump().unwrap_or_default());
                            }
                            break;
                        }
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
                code_on_line = line;
                continue;
            }
            if c == 'b' && p1 == Some('\'') {
                // byte char b'x'
                let mut text = String::new();
                text.push(s.bump().unwrap_or_default()); // b
                text.push(s.bump().unwrap_or_default()); // '
                while let Some(c) = s.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(e) = s.bump() {
                            text.push(e);
                        }
                    } else if c == '\'' {
                        break;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
                code_on_line = line;
                continue;
            }
            if c == 'r' && p1 == Some('#') {
                // raw identifier r#ident
                let mut text = String::from("r#");
                s.bump();
                s.bump();
                while let Some(c) = s.cur() {
                    if is_ident_continue(c) {
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
                code_on_line = line;
                continue;
            }
            // plain identifier starting with r/b — fall through.
        }

        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = s.cur() {
                if is_ident_continue(c) {
                    text.push(c);
                    s.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            code_on_line = line;
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let radix_prefix = c == '0' && matches!(s.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O'));
            text.push(s.bump().unwrap_or_default());
            if radix_prefix {
                text.push(s.bump().unwrap_or_default());
                while let Some(c) = s.cur() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
            } else {
                while let Some(c) = s.cur() {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
                // Fraction: `1.5` but not `1..2` and not `1.method()`.
                if s.cur() == Some('.') && s.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    text.push(s.bump().unwrap_or_default());
                    while let Some(c) = s.cur() {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            s.bump();
                        } else {
                            break;
                        }
                    }
                } else if s.cur() == Some('.')
                    && s.peek(1) != Some('.')
                    && !s.peek(1).is_some_and(is_ident_start)
                {
                    // trailing-dot float `1.`
                    text.push(s.bump().unwrap_or_default());
                }
                // Exponent.
                if matches!(s.cur(), Some('e' | 'E'))
                    && (s.peek(1).is_some_and(|d| d.is_ascii_digit())
                        || (matches!(s.peek(1), Some('+' | '-'))
                            && s.peek(2).is_some_and(|d| d.is_ascii_digit())))
                {
                    text.push(s.bump().unwrap_or_default());
                    if matches!(s.cur(), Some('+' | '-')) {
                        text.push(s.bump().unwrap_or_default());
                    }
                    while let Some(c) = s.cur() {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            s.bump();
                        } else {
                            break;
                        }
                    }
                }
                // Type suffix (`u32`, `f64`, ...).
                while let Some(c) = s.cur() {
                    if is_ident_continue(c) {
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text,
                line,
                col,
            });
            code_on_line = line;
            continue;
        }

        // Strings.
        if c == '"' {
            let mut text = String::new();
            text.push(s.bump().unwrap_or_default());
            while let Some(c) = s.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(e) = s.bump() {
                        text.push(e);
                    }
                } else if c == '"' {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            code_on_line = line;
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let next = s.peek(1);
            let after = s.peek(2);
            let is_lifetime = next.is_some_and(is_ident_start) && after != Some('\'');
            if is_lifetime {
                let mut text = String::from("'");
                s.bump();
                while let Some(c) = s.cur() {
                    if is_ident_continue(c) {
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                let mut text = String::new();
                text.push(s.bump().unwrap_or_default());
                while let Some(c) = s.bump() {
                    text.push(c);
                    if c == '\\' {
                        if let Some(e) = s.bump() {
                            text.push(e);
                        }
                    } else if c == '\'' {
                        break;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
            }
            code_on_line = line;
            continue;
        }

        // Punctuation, with two-char maximal munch.
        let mut text = String::new();
        text.push(c);
        if let Some(n) = s.peek(1) {
            let pair: String = [c, n].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                text = pair;
            }
        }
        for _ in 0..text.chars().count() {
            s.bump();
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text,
            line,
            col,
        });
        code_on_line = line;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a::b();");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert!(toks.iter().any(|t| t == &(TokKind::Punct, "::".into())));
    }

    #[test]
    fn string_contents_are_not_idents() {
        let lexed = lex(r#"let s = "HashMap is fine here";"#);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let lexed = lex(r###"let s = r#"a " b"#; let t = 1;"###);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("t")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn comments_are_separated_and_classified() {
        let lexed = lex("let a = 1; // trailing\n// standalone\nlet b = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a u8) -> char { 'b' }");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn float_literals_keep_exponents() {
        let toks = kinds("let x = 1.5e-3f64 + 2e6 + 0x1f;");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3f64", "2e6", "0x1f"]);
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Num, "10".into())));
    }

    #[test]
    fn positions_are_tracked() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
