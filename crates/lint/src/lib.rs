//! roia-lint: the workspace determinism & model-integrity analyzer.
//!
//! The compiler and clippy cannot express the properties this repo's value
//! rests on: seeded runs must be bit-for-bit deterministic, and model code
//! must not silently panic, truncate or compare floats exactly. PR 1
//! shipped a real nondeterminism bug (`HashMap` iteration order in
//! `Bus::advance`) that only an accident surfaced — this crate makes that
//! whole bug class a CI failure.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p roia-lint -- check
//! ```
//!
//! Rules (see DESIGN.md §8 for the full catalogue):
//!
//! | id | scope | what it forbids |
//! |----|-------|-----------------|
//! | D1 | rtf-core, rtf-net, rtf-rms, roia-sim, rtf-transport | `HashMap`/`HashSet` |
//! | D2 | those + roia-model, roia-fit, roia-autocal, rtfdemo | `Instant`, `SystemTime`, `thread_rng`, `rand::random` |
//! | M1 | tick & control-round hot-path files | `.unwrap()`, `.expect()`, slice indexing |
//! | M2 | roia-model, rtf-rms | bare numeric `as` casts |
//! | F1 | model crates | `==`/`!=` against float literals |
//! | A1 | everywhere scanned | malformed `lint: allow` annotations |
//!
//! Suppressions carry mandatory justifications:
//! `// lint: allow(panic, "why this cannot fire")` (line) or
//! `// lint: allow-file(nondet, "why")` (file).

pub mod lexer;
pub mod rules;

pub use rules::{scan_source, Finding, RuleId};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose containers must iterate deterministically (D1).
const D1_SCOPE: &[&str] = &[
    "crates/rtf/src",
    "crates/net/src",
    "crates/rms/src",
    "crates/sim/src",
    "crates/transport/src",
];

/// Sim/model code paths that must not read wall clocks or ambient
/// randomness (D2).
const D2_SCOPE: &[&str] = &[
    "crates/rtf/src",
    "crates/net/src",
    "crates/rms/src",
    "crates/sim/src",
    "crates/core/src",
    "crates/fit/src",
    "crates/autocal/src",
    "crates/demo/src",
    "crates/transport/src",
];

/// The tick and control-round hot paths (M1). A panic here takes down a
/// server mid-session instead of degrading.
const M1_SCOPE: &[&str] = &[
    "crates/rtf/src/server.rs",
    "crates/rtf/src/client.rs",
    "crates/net/src/bus.rs",
    "crates/net/src/link.rs",
    "crates/rms/src/controller.rs",
    "crates/rms/src/policy",
    "crates/sim/src/cluster.rs",
    "crates/sim/src/parallel.rs",
    "crates/transport/src/session.rs",
];

/// Model-quantity code where bare `as` casts silently corrupt results (M2).
const M2_SCOPE: &[&str] = &["crates/core/src", "crates/rms/src"];

/// Crates computing on model floats (F1).
const F1_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/rms/src",
    "crates/fit/src",
    "crates/autocal/src",
    "crates/sim/src",
    "crates/demo/src",
];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
}

/// The rules that apply to a workspace-relative path. `A1` (annotation
/// hygiene) applies to every scanned file.
pub fn rules_for(rel: &str) -> Vec<RuleId> {
    let mut rules = vec![RuleId::A1];
    if in_scope(rel, D1_SCOPE) {
        rules.push(RuleId::D1);
    }
    if in_scope(rel, D2_SCOPE) {
        rules.push(RuleId::D2);
    }
    if in_scope(rel, M1_SCOPE) {
        rules.push(RuleId::M1);
    }
    if in_scope(rel, M2_SCOPE) {
        rules.push(RuleId::M2);
    }
    if in_scope(rel, F1_SCOPE) {
        rules.push(RuleId::F1);
    }
    rules
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// All source files the scope tables cover, workspace-relative, sorted.
pub fn scoped_files(root: &Path) -> io::Result<Vec<String>> {
    let mut roots: Vec<&str> = Vec::new();
    for scope in [D1_SCOPE, D2_SCOPE, M2_SCOPE, F1_SCOPE] {
        for p in scope {
            if !roots.contains(p) {
                roots.push(p);
            }
        }
    }
    let mut files = Vec::new();
    for r in roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rels: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    rels.sort();
    rels.dedup();
    Ok(rels)
}

/// Scans the whole workspace under `root` and returns every finding, sorted
/// by file, line, column.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in scoped_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_source(&rel, &src, &rules_for(&rel)));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(findings)
}

/// Locates the workspace root: an explicit `--root`, else the nearest
/// ancestor of the current directory containing `Cargo.toml` + `crates/`,
/// else this crate's grandparent (for `cargo run -p roia-lint` from
/// anywhere inside the repo).
pub fn find_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return dir;
            }
            if !dir.pop() {
                break;
            }
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Renders findings as a JSON array (hand-rolled — the crate is
/// dependency-free by design).
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                f.rule,
                esc(&f.file),
                f.line,
                f.col,
                esc(&f.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tables_route_rules() {
        let bus = rules_for("crates/net/src/bus.rs");
        assert!(bus.contains(&RuleId::D1));
        assert!(bus.contains(&RuleId::M1));
        assert!(!bus.contains(&RuleId::M2));

        let tick = rules_for("crates/core/src/tick.rs");
        assert!(tick.contains(&RuleId::M2));
        assert!(tick.contains(&RuleId::F1));
        assert!(!tick.contains(&RuleId::D1), "core may use HashMap");

        let policy = rules_for("crates/rms/src/policy/model_driven.rs");
        assert!(policy.contains(&RuleId::M1));

        let monitor = rules_for("crates/rms/src/monitor.rs");
        assert!(!monitor.contains(&RuleId::M1), "not a hot-path file");
        assert!(monitor.contains(&RuleId::A1));

        let pool = rules_for("crates/sim/src/parallel.rs");
        assert!(pool.contains(&RuleId::M1), "worker pool is tick hot path");
        assert!(
            pool.contains(&RuleId::D2),
            "worker pool must stay clock-free"
        );
        let workload = rules_for("crates/sim/src/workload.rs");
        assert!(!workload.contains(&RuleId::M1), "not a hot-path file");

        let session = rules_for("crates/transport/src/session.rs");
        assert!(session.contains(&RuleId::D1));
        assert!(
            session.contains(&RuleId::D2),
            "netcode must stay clock-free"
        );
        assert!(session.contains(&RuleId::M1), "per-tick netcode hot path");
        let tcp = rules_for("crates/transport/src/tcp.rs");
        assert!(tcp.contains(&RuleId::D2), "socket I/O clocks need allows");
        assert!(!tcp.contains(&RuleId::M1), "I/O layer is not the tick path");
    }

    #[test]
    fn json_escapes() {
        let f = vec![Finding {
            rule: "D1",
            file: "a\"b.rs".into(),
            line: 1,
            col: 2,
            message: "x\ny".into(),
        }];
        let j = to_json(&f);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
    }
}
