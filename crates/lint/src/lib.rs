//! roia-lint: the workspace determinism & model-integrity analyzer.
//!
//! The compiler and clippy cannot express the properties this repo's value
//! rests on: seeded runs must be bit-for-bit deterministic, and model code
//! must not silently panic, truncate or compare floats exactly. PR 1
//! shipped a real nondeterminism bug (`HashMap` iteration order in
//! `Bus::advance`) that only an accident surfaced — this crate makes that
//! whole bug class a CI failure.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p roia-lint -- check
//! ```
//!
//! Rules (see DESIGN.md §8 for the full catalogue):
//!
//! | id | scope | what it forbids |
//! |----|-------|-----------------|
//! | D1 | rtf-core, rtf-net, rtf-rms, roia-sim, rtf-transport | `HashMap`/`HashSet` |
//! | D2 | those + roia-model, roia-fit, roia-autocal, rtfdemo | `Instant`, `SystemTime`, `thread_rng`, `rand::random` |
//! | M1 | *inferred* hot paths: fns reachable from `Server::tick`/`Client::tick`/`Cluster::step`/`MultiZoneWorld::step`/`*Controller::control`/`run_session` | `.unwrap()`, `.expect()`, slice indexing |
//! | M2 | roia-model, rtf-rms | bare numeric `as` casts |
//! | F1 | model crates | `==`/`!=` against float literals |
//! | A1 | everywhere scanned | malformed `lint: allow` annotations |
//! | C1 | everywhere scanned | conflicting lock-acquisition orders |
//! | C2 | everywhere scanned | guards held across blocking calls; locks on the hot path |
//! | C3 | everywhere scanned | determinism taint reaching a trace/digest/report |
//! | C4 | everywhere scanned | capture escape into worker closures |
//!
//! The C rules and the M1 hot set come from a workspace-wide call-graph
//! model ([`model`], [`conc`]) built with the same dependency-free lexer —
//! parse every scanned file once, connect call sites by name (owner hints
//! preferred), then walk guards, taint and closures across functions.
//!
//! Suppressions carry mandatory justifications:
//! `// lint: allow(panic, "why this cannot fire")` (line) or
//! `// lint: allow-file(nondet, "why")` (file).

pub mod conc;
pub mod lexer;
pub mod model;
pub mod rules;

pub use rules::{scan_source, scan_source_ranged, Finding, RuleId};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose containers must iterate deterministically (D1).
const D1_SCOPE: &[&str] = &[
    "crates/rtf/src",
    "crates/net/src",
    "crates/rms/src",
    "crates/sim/src",
    "crates/transport/src",
];

/// Sim/model code paths that must not read wall clocks or ambient
/// randomness (D2).
const D2_SCOPE: &[&str] = &[
    "crates/rtf/src",
    "crates/net/src",
    "crates/rms/src",
    "crates/sim/src",
    "crates/core/src",
    "crates/fit/src",
    "crates/autocal/src",
    "crates/demo/src",
    "crates/transport/src",
];

/// Everything the concurrency rules (C1–C4) and the call-graph model see.
/// The bench harness is deliberately excluded: its binaries are
/// measurement drivers that use wall clocks and ad-hoc threads by design.
const C_SCOPE: &[&str] = &[
    "crates/rtf/src",
    "crates/net/src",
    "crates/rms/src",
    "crates/sim/src",
    "crates/core/src",
    "crates/fit/src",
    "crates/autocal/src",
    "crates/demo/src",
    "crates/transport/src",
    "crates/obs/src",
];

/// Model-quantity code where bare `as` casts silently corrupt results (M2).
const M2_SCOPE: &[&str] = &["crates/core/src", "crates/rms/src"];

/// Crates computing on model floats (F1).
const F1_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/rms/src",
    "crates/fit/src",
    "crates/autocal/src",
    "crates/sim/src",
    "crates/demo/src",
];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope
        .iter()
        .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
}

/// The token rules that apply to a workspace-relative path. `A1`
/// (annotation hygiene) applies to every scanned file. M1 is *not* routed
/// here any more: the hot-path file list was replaced by call-graph
/// inference — [`check_workspace`] applies M1 to the hot function ranges
/// [`conc::analyze`] returns.
pub fn rules_for(rel: &str) -> Vec<RuleId> {
    let mut rules = vec![RuleId::A1];
    if in_scope(rel, D1_SCOPE) {
        rules.push(RuleId::D1);
    }
    if in_scope(rel, D2_SCOPE) {
        rules.push(RuleId::D2);
    }
    if in_scope(rel, M2_SCOPE) {
        rules.push(RuleId::M2);
    }
    if in_scope(rel, F1_SCOPE) {
        rules.push(RuleId::F1);
    }
    rules
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// All source files the scope tables cover, workspace-relative, sorted.
pub fn scoped_files(root: &Path) -> io::Result<Vec<String>> {
    let mut roots: Vec<&str> = Vec::new();
    for scope in [D1_SCOPE, D2_SCOPE, M2_SCOPE, F1_SCOPE, C_SCOPE] {
        for p in scope {
            if !roots.contains(p) {
                roots.push(p);
            }
        }
    }
    let mut files = Vec::new();
    for r in roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rels: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    rels.sort();
    rels.dedup();
    Ok(rels)
}

/// Full workspace scan result: findings plus the inferred hot set.
pub struct WorkspaceReport {
    /// Every finding, sorted by file, line, column.
    pub findings: Vec<Finding>,
    /// Qualified names of the inferred hot-path functions.
    pub hot_fns: Vec<String>,
}

/// Scans the whole workspace under `root`: token rules per file, then the
/// call-graph concurrency rules across files, with M1 applied to the
/// inferred hot-path function ranges.
pub fn check_workspace_report(root: &Path) -> io::Result<WorkspaceReport> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in scoped_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    let ws = model::build(&sources);
    let analysis = conc::analyze(&ws);
    let mut findings = analysis.findings;
    for (rel, src) in &sources {
        let mut rules = rules_for(rel);
        let ranges = analysis.m1_ranges.get(rel);
        if ranges.is_some() {
            rules.push(RuleId::M1);
        }
        findings.extend(scan_source_ranged(
            rel,
            src,
            &rules,
            ranges.map(|r| r.as_slice()),
        ));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(WorkspaceReport {
        findings,
        hot_fns: analysis.hot_fns,
    })
}

/// Scans the whole workspace under `root` and returns every finding, sorted
/// by file, line, column.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(check_workspace_report(root)?.findings)
}

/// Locates the workspace root: an explicit `--root`, else the nearest
/// ancestor of the current directory containing `Cargo.toml` + `crates/`,
/// else this crate's grandparent (for `cargo run -p roia-lint` from
/// anywhere inside the repo).
pub fn find_root(explicit: Option<&str>) -> PathBuf {
    if let Some(r) = explicit {
        return PathBuf::from(r);
    }
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return dir;
            }
            if !dir.pop() {
                break;
            }
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (hand-rolled — the crate is
/// dependency-free by design).
pub fn to_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Rule ids with one-line descriptions, for the SARIF rule table.
const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("D1", "No HashMap/HashSet in deterministic crates"),
    (
        "D2",
        "No wall-clock or ambient randomness in sim/model code",
    ),
    ("M1", "No unwrap/expect/indexing on inferred hot paths"),
    ("M2", "No bare numeric `as` casts on model quantities"),
    ("F1", "No ==/!= against float literals"),
    ("A1", "Allow-annotation hygiene"),
    ("C1", "Globally consistent lock-acquisition order"),
    ("C2", "No guard across blocking calls; no hot-path locks"),
    (
        "C3",
        "Interprocedural determinism taint must not reach sinks",
    ),
    ("C4", "No capture escape into worker closures"),
];

/// Renders findings as a minimal SARIF 2.1.0 document — the format GitHub
/// code scanning ingests to annotate PRs. `--json` stays the stable
/// machine interface; SARIF is additive.
pub fn to_sarif(findings: &[Finding]) -> String {
    let rules: Vec<String> = RULE_DESCRIPTIONS
        .iter()
        .map(|(id, desc)| {
            format!(
                "{{\"id\":\"{id}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                json_escape(desc)
            )
        })
        .collect();
    let results: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
                f.rule,
                json_escape(&f.message),
                json_escape(&f.file),
                f.line.max(1),
                f.col.max(1)
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"roia-lint\",\
         \"informationUri\":\"DESIGN.md\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tables_route_rules() {
        let bus = rules_for("crates/net/src/bus.rs");
        assert!(bus.contains(&RuleId::D1));
        assert!(!bus.contains(&RuleId::M2));

        let tick = rules_for("crates/core/src/tick.rs");
        assert!(tick.contains(&RuleId::M2));
        assert!(tick.contains(&RuleId::F1));
        assert!(!tick.contains(&RuleId::D1), "core may use HashMap");

        let pool = rules_for("crates/sim/src/parallel.rs");
        assert!(
            pool.contains(&RuleId::D2),
            "worker pool must stay clock-free"
        );

        let session = rules_for("crates/transport/src/session.rs");
        assert!(session.contains(&RuleId::D1));
        assert!(
            session.contains(&RuleId::D2),
            "netcode must stay clock-free"
        );
        let tcp = rules_for("crates/transport/src/tcp.rs");
        assert!(tcp.contains(&RuleId::D2), "socket I/O clocks need allows");

        // M1 is no longer routed by file: the hot set is inferred.
        for rel in [
            "crates/net/src/bus.rs",
            "crates/rms/src/policy/model_driven.rs",
            "crates/sim/src/cluster.rs",
        ] {
            assert!(
                !rules_for(rel).contains(&RuleId::M1),
                "{rel}: M1 comes from hot-path inference now"
            );
        }
    }

    #[test]
    fn obs_is_in_concurrency_scope() {
        assert!(in_scope("crates/obs/src/sink.rs", C_SCOPE));
        assert!(
            !in_scope("crates/bench/src/bin/scale.rs", C_SCOPE),
            "bench measurement harnesses are exempt by design"
        );
    }

    #[test]
    fn json_escapes() {
        let f = vec![Finding {
            rule: "D1",
            file: "a\"b.rs".into(),
            line: 1,
            col: 2,
            message: "x\ny".into(),
        }];
        let j = to_json(&f);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let f = vec![Finding {
            rule: "C1",
            file: "crates/sim/src/cluster.rs".into(),
            line: 10,
            col: 3,
            message: "conflicting lock order".into(),
        }];
        let s = to_sarif(&f);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"roia-lint\""));
        assert!(s.contains("\"ruleId\":\"C1\""));
        assert!(s.contains("\"startLine\":10"));
        for (id, _) in RULE_DESCRIPTIONS {
            assert!(
                s.contains(&format!("\"id\":\"{id}\"")),
                "{id} in rule table"
            );
        }
        // Empty findings still produce a valid document with an empty
        // results array (code scanning treats that as "all clear").
        let empty = to_sarif(&[]);
        assert!(empty.contains("\"results\":[]"));
    }
}
