//! CLI: `cargo run -p roia-lint -- check [--root PATH] [--json] [--report PATH]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use roia_lint::{check_workspace, find_root, to_json};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut json = false;
    let mut report = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--json" => json = true,
            "--root" => {
                i += 1;
                root = args.get(i).cloned();
                if root.is_none() {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            }
            "--report" => {
                i += 1;
                report = args.get(i).cloned();
                if report.is_none() {
                    eprintln!("--report needs a path");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: roia-lint check [--root PATH] [--json] [--report PATH]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command != Some("check") {
        eprintln!("usage: roia-lint check [--root PATH] [--json] [--report PATH]");
        return ExitCode::from(2);
    }

    let root = find_root(root.as_deref());
    let findings = match check_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("roia-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = if json {
        to_json(&findings)
    } else {
        let mut out = String::new();
        for f in &findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "roia-lint: {} finding{} in {}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            root.display()
        ));
        out
    };
    print!("{rendered}");

    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("roia-lint: failed to write report {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
