//! CLI: `cargo run -p roia-lint -- check [--root PATH] [--json]
//! [--format sarif] [--report PATH] [--hot]`.
//!
//! `--json` (stable machine interface) and `--format sarif` (GitHub
//! code-scanning annotations) are mutually exclusive. `--hot` lists the
//! inferred hot-path functions on stderr — useful when deciding where an
//! M1 finding came from; `--report` appends the same list to the report
//! file.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use roia_lint::{check_workspace_report, find_root, to_json, to_sarif};
use std::process::ExitCode;

const USAGE: &str =
    "usage: roia-lint check [--root PATH] [--json] [--format sarif] [--report PATH] [--hot]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut json = false;
    let mut sarif = false;
    let mut hot = false;
    let mut report = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--json" => json = true,
            "--hot" => hot = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("sarif") => sarif = true,
                    Some("json") => json = true,
                    Some(other) => {
                        eprintln!("unknown format `{other}` (known: json, sarif)");
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("--format needs a value (json or sarif)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => {
                i += 1;
                root = args.get(i).cloned();
                if root.is_none() {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            }
            "--report" => {
                i += 1;
                report = args.get(i).cloned();
                if report.is_none() {
                    eprintln!("--report needs a path");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command != Some("check") || (json && sarif) {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = find_root(root.as_deref());
    let scan = match check_workspace_report(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("roia-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = scan.findings;

    if hot {
        eprintln!("inferred hot-path functions ({}):", scan.hot_fns.len());
        for f in &scan.hot_fns {
            eprintln!("  {f}");
        }
    }

    let rendered = if sarif {
        let mut s = to_sarif(&findings);
        s.push('\n');
        s
    } else if json {
        to_json(&findings)
    } else {
        let mut out = String::new();
        for f in &findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "roia-lint: {} finding{} in {}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            root.display()
        ));
        out
    };
    print!("{rendered}");

    if let Some(path) = report {
        // The report artifact also records the inferred hot set, so a CI
        // reader can see exactly which functions M1/hot_lock covered.
        let mut full = rendered.clone();
        full.push_str(&format!(
            "\ninferred hot-path functions ({}):\n",
            scan.hot_fns.len()
        ));
        for f in &scan.hot_fns {
            full.push_str(&format!("  {f}\n"));
        }
        if let Err(e) = std::fs::write(&path, &full) {
            eprintln!("roia-lint: failed to write report {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
