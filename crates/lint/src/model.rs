//! The workspace model — a lightweight item/block parser over the lexer.
//!
//! The token rules (D1/D2/M1/M2/F1) fire on single tokens; the concurrency
//! rules (C1–C4, see [`crate::conc`]) need *structure*: which function a
//! token belongs to, what that function calls, which lock guards are live
//! across which spans, and which closures escape into worker pools. This
//! module recovers exactly that much structure — no types, no name
//! resolution beyond "same identifier, owner hint preferred" — from the
//! [`crate::lexer`] token stream, so the analyzer stays dependency-free
//! (`syn` needs registry access; hermetic CI has none).
//!
//! What the parser recovers per function:
//!
//! * the `impl`/`trait` owner and the body token range,
//! * call sites (`free(…)`, `recv.method(…)`, `Type::assoc(…)`) with the
//!   qualifier kept as an *owner hint* for resolution,
//! * lock acquisitions (`.lock()` always; `.read()`/`.write()` only when
//!   the receiver field/binding is declared as an `RwLock` somewhere in
//!   the workspace) together with the **guard extent** — the token span
//!   the guard is assumed live over (binding → enclosing block,
//!   `if let`/`while let` → the conditional's block, expression
//!   temporary → its statement, shortened by an explicit `drop(guard)`),
//! * determinism-taint sources (the D2 token set),
//! * directly blocking calls (channel `recv`, `JoinHandle::join`,
//!   `thread::sleep`, filesystem and socket setup I/O),
//! * determinism sinks (`.emit(…)`/`.record(…)` or `SessionReport`/
//!   `HashSink`/`RunDigest` mentions),
//! * worker closures — closure literals passed to `map_mut`/
//!   `for_each_mut`/`spawn` — with their parameters and local bindings so
//!   capture-escape (C4) can tell captures from locals.
//!
//! Everything here is a deliberate over/under-approximation; the C-rule
//! fixtures in `tests/fixtures.rs` pin the behaviour and DESIGN.md §8
//! documents the limits.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::rules::{collect_allows, test_exempt_mask, Allows};
use std::collections::{BTreeMap, BTreeSet};

/// How a lock guard was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOp {
    /// `Mutex::lock` (std or parking_lot).
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl LockOp {
    /// The method name as written.
    pub fn name(self) -> &'static str {
        match self {
            LockOp::Lock => "lock",
            LockOp::Read => "read",
            LockOp::Write => "write",
        }
    }
}

/// One lock acquisition and the span its guard is assumed live over.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Canonical lock identity: `crate:receiver_field` (e.g. `net:inner`).
    pub key: String,
    /// Receiver text as written (for messages).
    pub receiver: String,
    /// Acquisition flavour.
    pub op: LockOp,
    /// 1-based line / column of the method name token.
    pub line: u32,
    pub col: u32,
    /// Token index of the method name.
    pub tok: usize,
    /// Guard extent as a half-open token range `(start, end)`: the guard
    /// is considered live for call/lock sites with `start < tok < end`.
    pub guard: (usize, usize),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Qualifier: `Type` from `Type::name(…)`, the enclosing impl owner
    /// for `self.name(…)`, or a lowercase module hint from `mod::name(…)`.
    pub owner_hint: Option<String>,
    /// Whether this was a `.name(…)` method call.
    pub method: bool,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// Token index of the callee name.
    pub tok: usize,
}

/// A closure literal passed to a worker-pool entry point.
#[derive(Debug, Clone)]
pub struct WorkerClosure {
    /// The pool entry point it was passed to (`map_mut`, `spawn`, …).
    pub host: String,
    /// 1-based line of the closure's `|`.
    pub line: u32,
    /// Token range of the closure body (half-open).
    pub body: (usize, usize),
    /// Parameter names (treated as worker-owned, not captures).
    pub params: BTreeSet<String>,
}

/// A direct potentially-blocking call.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// Human-readable description (`.recv()`, `fs::write`, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// Token index.
    pub tok: usize,
}

/// One parsed function (or trait default method).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Workspace-relative file path.
    pub file: String,
    /// Crate short name (`sim`, `obs`, …) derived from the path.
    pub crate_name: String,
    /// `impl`/`trait` owner type name, if any.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range (half-open, brace tokens excluded).
    pub body: (usize, usize),
    /// Calls made from the body (closures included).
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockSite>,
    /// Determinism-taint source lines (D2 token set), with the token text.
    pub taints: Vec<(u32, String)>,
    /// Directly blocking calls.
    pub blocking: Vec<BlockingSite>,
    /// Worker closures created in the body.
    pub closures: Vec<WorkerClosure>,
    /// Why this function is a determinism sink, if it is.
    pub sink: Option<&'static str>,
    /// Inside `#[cfg(test)]`/`#[test]` code.
    pub is_test: bool,
}

impl FnInfo {
    /// `Owner::name` or plain `name` — for messages.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed file: lexed tokens, allow annotations, and its functions.
pub struct FileModel {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate short name.
    pub crate_name: String,
    /// Lexer output (kept for line lookups).
    pub lexed: Lexed,
    /// Parsed allow annotations.
    pub allows: Allows,
    /// Indices into [`Workspace::fns`] for this file's functions.
    pub fns: Vec<usize>,
}

/// The whole workspace as the concurrency rules see it.
pub struct Workspace {
    /// All parsed functions across all files.
    pub fns: Vec<FnInfo>,
    /// Per-file models in scan order.
    pub files: Vec<FileModel>,
    /// Function indices by name.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Pool entry points whose closure argument runs on worker threads.
const WORKER_HOSTS: &[&str] = &["map_mut", "for_each_mut", "spawn"];

/// Methods that block the calling thread (no-argument `join` is
/// `JoinHandle::join`; `join(", ")` on slices is not matched).
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "park",
    "park_timeout",
    "wait",
    "wait_timeout",
    "accept",
];

/// Path-qualified calls that block (I/O and sleeps).
const BLOCKING_PATHS: &[(&str, &str)] = &[
    ("thread", "sleep"),
    ("fs", "write"),
    ("fs", "read"),
    ("fs", "read_to_string"),
    ("fs", "create_dir_all"),
    ("fs", "remove_dir_all"),
    ("File", "create"),
    ("File", "open"),
    ("TcpStream", "connect"),
    ("TcpListener", "bind"),
];

/// Methods on captured state that mutate through shared/interior
/// mutability — the C4 trigger set.
const CAPTURE_TRIGGERS: &[&str] = &["lock", "borrow_mut", "store", "send", "write"];

/// Crate short name from a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
        .to_string()
}

/// Builds the workspace model from `(relative_path, source)` pairs.
///
/// A first pass collects the names of fields/bindings declared with an
/// `RwLock` type anywhere in the workspace, so `.read()`/`.write()` can be
/// told apart from `io::Read`/`io::Write` calls; the second pass parses
/// each file.
pub fn build(files: &[(String, String)]) -> Workspace {
    let lexed: Vec<Lexed> = files.iter().map(|(_, src)| lex(src)).collect();
    let mut rwlock_names: BTreeSet<String> = BTreeSet::new();
    for l in &lexed {
        collect_rwlock_names(&l.tokens, &mut rwlock_names);
    }
    let mut ws = Workspace {
        fns: Vec::new(),
        files: Vec::new(),
        by_name: BTreeMap::new(),
    };
    for ((rel, _src), lx) in files.iter().zip(lexed) {
        let file = parse_file(rel, lx, &rwlock_names, &mut ws.fns);
        ws.files.push(file);
    }
    for (i, f) in ws.fns.iter().enumerate() {
        ws.by_name.entry(f.name.clone()).or_default().push(i);
    }
    ws
}

/// Records identifiers declared with an `RwLock` type or initializer:
/// `name: RwLock<…>`, `name: Arc<RwLock<…>>`, `let name = RwLock::new(…)`.
fn collect_rwlock_names(tokens: &[Tok], out: &mut BTreeSet<String>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : … RwLock` within a short window (type ascription).
        if tokens.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let window = tokens.iter().skip(i + 2).take(6);
            if window
                .take_while(|w| !w.is_punct(";") && !w.is_punct(","))
                .any(|w| w.is_ident("RwLock"))
            {
                out.insert(t.text.clone());
            }
        }
        // `let name = … RwLock :: new` within a short window.
        if t.is_ident("let") {
            let name = tokens
                .iter()
                .skip(i + 1)
                .take(3)
                .find(|w| w.kind == TokKind::Ident && !w.is_ident("mut"));
            if let Some(name) = name {
                let window = tokens.iter().skip(i + 2).take(10);
                if window
                    .take_while(|w| !w.is_punct(";"))
                    .any(|w| w.is_ident("RwLock"))
                {
                    out.insert(name.text.clone());
                }
            }
        }
    }
}

/// For each token, the index of the `}` closing the innermost enclosing
/// block (or `usize::MAX` at top level).
fn enclosing_block_end(tokens: &[Tok]) -> Vec<usize> {
    let mut out = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<usize> = Vec::new(); // open-brace token indices
                                            // First pass: match braces.
    let mut matches: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                matches.insert(open, i);
            }
        }
    }
    stack.clear();
    for (i, t) in tokens.iter().enumerate() {
        if let Some(&top) = stack.last() {
            out[i] = matches.get(&top).copied().unwrap_or(usize::MAX);
        }
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            stack.pop();
        }
    }
    out
}

/// Index of the token closing the bracket opened at `open_idx`, scanning
/// only `open`/`close` punct tokens.
fn match_punct(tokens: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Keywords that never start a call even when followed by `(`.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "else", "move", "fn",
    "Some", "Ok", "Err", "None", "Box",
];

/// Parses one file into [`FnInfo`] records appended to `fns`.
fn parse_file(
    rel: &str,
    lexed: Lexed,
    rwlock_names: &BTreeSet<String>,
    fns: &mut Vec<FnInfo>,
) -> FileModel {
    let tokens = &lexed.tokens;
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let allows = collect_allows(&lexed.comments, &code_lines);
    let exempt = test_exempt_mask(tokens);
    let encl_end = enclosing_block_end(tokens);
    let crate_name = crate_of(rel);

    // Frames of currently open braces that carry meaning.
    #[derive(Clone)]
    enum Frame {
        /// Inside an `impl`/`trait` block for this owner.
        Owner(String, usize),
        /// Inside a function body (index into `fns`).
        Fn(usize, usize),
        /// Any other brace.
        Block(usize),
    }
    let mut stack: Vec<Frame> = Vec::new();
    // Pending classification for a `{` we already know the meaning of.
    let mut pending: BTreeMap<usize, Frame> = BTreeMap::new();
    let mut file_fns: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];

        // Close frames whose brace ends here.
        if t.is_punct("}") {
            if let Some(pos) = stack.iter().rposition(
                |f| matches!(f, Frame::Owner(_, c) | Frame::Fn(_, c) | Frame::Block(c) if *c == i),
            ) {
                stack.truncate(pos);
            }
            i += 1;
            continue;
        }

        if t.is_punct("{") {
            let frame = pending.remove(&i).unwrap_or(Frame::Block(0));
            let close = match_punct(tokens, i, "{", "}").unwrap_or(tokens.len());
            stack.push(match frame {
                Frame::Owner(o, _) => Frame::Owner(o, close),
                Frame::Fn(id, _) => Frame::Fn(id, close),
                Frame::Block(_) => Frame::Block(close),
            });
            i += 1;
            continue;
        }

        // `impl`/`trait` items (not `-> impl Trait` / `&dyn` positions).
        if (t.is_ident("impl") || t.is_ident("trait")) && item_position(tokens, i) {
            if let Some((owner, open)) = parse_owner_header(tokens, i) {
                pending.insert(open, Frame::Owner(owner, 0));
                i += 1;
                continue;
            }
        }

        // `fn name(…) … {` items (skip `fn(…)` pointer types and
        // body-less trait declarations).
        if t.is_ident("fn") && tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            if let Some(open) = fn_body_open(tokens, i) {
                let owner = stack.iter().rev().find_map(|f| match f {
                    Frame::Owner(o, _) => Some(o.clone()),
                    _ => None,
                });
                let close = match_punct(tokens, open, "{", "}").unwrap_or(tokens.len());
                // Sink types named in the signature (e.g. a
                // `-> SessionReport` return) count as sink markers too.
                let sig_sink = tokens[i..open]
                    .iter()
                    .any(|t| {
                        t.is_ident("SessionReport")
                            || t.is_ident("HashSink")
                            || t.is_ident("RunDigest")
                    })
                    .then_some("feeds a session report/digest");
                let id = fns.len();
                fns.push(FnInfo {
                    file: rel.to_string(),
                    crate_name: crate_name.clone(),
                    owner,
                    name: tokens[i + 1].text.clone(),
                    line: t.line,
                    body: (open + 1, close),
                    calls: Vec::new(),
                    locks: Vec::new(),
                    taints: Vec::new(),
                    blocking: Vec::new(),
                    closures: Vec::new(),
                    sink: sig_sink,
                    is_test: exempt.get(i).copied().unwrap_or(false),
                });
                file_fns.push(id);
                pending.insert(open, Frame::Fn(id, 0));
                i += 1;
                continue;
            }
        }

        // Body-level detectors feed the innermost enclosing function.
        let fn_id = stack.iter().rev().find_map(|f| match f {
            Frame::Fn(id, _) => Some(*id),
            _ => None,
        });
        if let Some(id) = fn_id {
            scan_body_token(
                tokens,
                i,
                rwlock_names,
                &encl_end,
                &crate_name,
                &mut fns[id],
            );
        }
        i += 1;
    }

    FileModel {
        rel: rel.to_string(),
        crate_name,
        lexed,
        allows,
        fns: file_fns,
    }
}

/// Whether the token at `i` sits in item position (start of file, after
/// `;`/`{`/`}`/`]`, or after `pub`/`unsafe` chains).
fn item_position(tokens: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &tokens[j - 1];
        if p.is_ident("pub") || p.is_ident("unsafe") || p.is_punct(")") {
            // `pub(crate)` chains: step over the visibility group.
            j -= 1;
            continue;
        }
        return p.is_punct(";") || p.is_punct("{") || p.is_punct("}") || p.is_punct("]");
    }
    true
}

/// Parses an `impl`/`trait` header starting at `i`; returns the owner type
/// name and the token index of the body's `{`.
fn parse_owner_header(tokens: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut in_where = false;
    let mut owner: Option<String> = None;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct("{") {
                return owner.map(|o| (o, j));
            }
            if t.is_punct(";") {
                return None;
            }
            if t.is_ident("for") {
                // `impl Trait for Type`: the type after `for` wins.
                owner = None;
            } else if t.is_ident("where") {
                in_where = true; // owner settled; keep scanning for `{`.
            } else if !in_where
                && t.kind == TokKind::Ident
                && !t.is_ident("dyn")
                && !t.is_ident("mut")
            {
                // Last path segment at angle depth 0 wins (skips module
                // qualifiers in `impl foo::Bar { … }`).
                owner = Some(t.text.clone());
            }
        }
    }
    None
}

/// Token index of the `{` opening the body of the `fn` at `i`, or `None`
/// for body-less declarations.
fn fn_body_open(tokens: &[Tok], i: usize) -> Option<usize> {
    let mut paren = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if paren == 0 {
            if t.is_punct("{") {
                return Some(j);
            }
            if t.is_punct(";") {
                return None;
            }
        }
    }
    None
}

/// Runs the per-token detectors for the function body token at `i`.
fn scan_body_token(
    tokens: &[Tok],
    i: usize,
    rwlock_names: &BTreeSet<String>,
    encl_end: &[usize],
    crate_name: &str,
    f: &mut FnInfo,
) {
    let t = &tokens[i];
    let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
    let next = tokens.get(i + 1);

    // Determinism-taint sources (the D2 token set).
    let named = t.is_ident("Instant")
        || t.is_ident("SystemTime")
        || t.is_ident("UNIX_EPOCH")
        || t.is_ident("thread_rng")
        || t.is_ident("from_entropy");
    let rand_random = t.is_ident("rand")
        && next.is_some_and(|n| n.is_punct("::"))
        && tokens.get(i + 2).is_some_and(|n| n.is_ident("random"));
    if named || rand_random {
        f.taints.push((t.line, t.text.clone()));
    }

    // Determinism sinks.
    if (t.is_ident("emit") || t.is_ident("record"))
        && prev.is_some_and(|p| p.is_punct("."))
        && next.is_some_and(|n| n.is_punct("("))
    {
        f.sink = Some("emits trace/metrics events");
    }
    if t.is_ident("SessionReport") || t.is_ident("HashSink") || t.is_ident("RunDigest") {
        f.sink = Some("feeds a session report/digest");
    }

    if t.kind != TokKind::Ident || !next.is_some_and(|n| n.is_punct("(")) {
        return;
    }
    // From here on `t` is `name (` — a call-shaped token.
    if prev.is_some_and(|p| p.is_ident("fn")) || NON_CALL_IDENTS.contains(&t.text.as_str()) {
        return;
    }

    let is_method = prev.is_some_and(|p| p.is_punct("."));
    let path_qual = (prev.is_some_and(|p| p.is_punct("::")) && i >= 2)
        .then(|| tokens[i - 2].text.clone())
        .filter(|_| tokens[i - 2].kind == TokKind::Ident);

    // Blocking calls.
    if is_method && BLOCKING_METHODS.contains(&t.text.as_str()) {
        f.blocking.push(BlockingSite {
            what: format!(".{}()", t.text),
            line: t.line,
            tok: i,
        });
    }
    // `.join()` with no arguments is JoinHandle::join.
    if is_method && t.is_ident("join") && tokens.get(i + 2).is_some_and(|n| n.is_punct(")")) {
        f.blocking.push(BlockingSite {
            what: ".join()".to_string(),
            line: t.line,
            tok: i,
        });
    }
    if let Some(q) = &path_qual {
        if BLOCKING_PATHS.iter().any(|(m, n)| q == m && t.text == *n) {
            f.blocking.push(BlockingSite {
                what: format!("{q}::{}", t.text),
                line: t.line,
                tok: i,
            });
        }
    }

    // Lock acquisitions.
    let lock_op = if t.is_ident("lock") && tokens.get(i + 2).is_some_and(|n| n.is_punct(")")) {
        Some(LockOp::Lock)
    } else if t.is_ident("read") || t.is_ident("write") {
        let recv_is_rwlock =
            is_method && prev_receiver_ident(tokens, i).is_some_and(|r| rwlock_names.contains(&r));
        if recv_is_rwlock && tokens.get(i + 2).is_some_and(|n| n.is_punct(")")) {
            Some(if t.is_ident("read") {
                LockOp::Read
            } else {
                LockOp::Write
            })
        } else {
            None
        }
    } else {
        None
    };
    if let (true, Some(op)) = (is_method, lock_op) {
        let field = prev_receiver_ident(tokens, i).unwrap_or_else(|| "<expr>".to_string());
        let receiver = receiver_text(tokens, i);
        let guard = guard_extent(tokens, i, encl_end);
        f.locks.push(LockSite {
            key: format!("{crate_name}:{field}"),
            receiver,
            op,
            line: t.line,
            col: t.col,
            tok: i,
            guard,
        });
    }

    // Plain call sites (for the call graph). Skip macro-shaped `name!(`.
    if prev.is_some_and(|p| p.is_punct("!")) {
        return;
    }
    let owner_hint = if is_method {
        prev_receiver_ident(tokens, i)
            .filter(|r| r == "self")
            .and(f.owner.clone())
    } else {
        path_qual
    };
    f.calls.push(CallSite {
        name: t.text.clone(),
        owner_hint,
        method: is_method,
        line: t.line,
        tok: i,
    });

    // Worker closures.
    if WORKER_HOSTS.contains(&t.text.as_str()) {
        if let Some(c) = parse_worker_closure(tokens, i) {
            f.closures.push(c);
        }
    }
}

/// The identifier immediately left of the `.` of the method call at `i`
/// (`self.field.lock()` → `field`; `buffer.lock()` → `buffer`).
fn prev_receiver_ident(tokens: &[Tok], i: usize) -> Option<String> {
    let dot = i.checked_sub(1)?;
    if !tokens[dot].is_punct(".") {
        return None;
    }
    let r = &tokens[dot.checked_sub(1)?];
    (r.kind == TokKind::Ident).then(|| r.text.clone())
}

/// Receiver chain rendered left of the method call at `i`, for messages.
fn receiver_text(tokens: &[Tok], i: usize) -> String {
    let mut j = i.saturating_sub(1); // the `.`
    let mut parts: Vec<&str> = Vec::new();
    while j > 0 {
        let t = &tokens[j - 1];
        if t.kind == TokKind::Ident || t.is_punct(".") {
            parts.push(&t.text);
            j -= 1;
        } else {
            break;
        }
    }
    parts.reverse();
    parts.concat()
}

/// Computes the guard extent for the lock call at token `i` (the method
/// name). See the module docs for the binding/conditional/temporary cases.
fn guard_extent(tokens: &[Tok], i: usize, encl_end: &[usize]) -> (usize, usize) {
    // Find the statement start: scan back to the nearest `;`, `{` or `}`.
    let mut s = i;
    while s > 0 {
        let p = &tokens[s - 1];
        if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") {
            break;
        }
        s -= 1;
    }
    let first = &tokens[s];
    // `if let` / `while let`: the guard lives for the conditional's block.
    if first.is_ident("if") || first.is_ident("while") {
        if let Some(open) = next_block_open(tokens, i) {
            let close = match_punct(tokens, open, "{", "}").unwrap_or(tokens.len());
            return (open, close);
        }
    }
    // `let g = recv.lock()[.unwrap()/.expect(…)…];` → guard bound: lives
    // to the end of the enclosing block (or an explicit `drop(g)`).
    if first.is_ident("let") && lock_chain_is_binding(tokens, i) {
        let guard_name = tokens
            .iter()
            .skip(s + 1)
            .take(6)
            .find(|t| {
                t.kind == TokKind::Ident
                    && !t.is_ident("mut")
                    && !t.is_ident("Ok")
                    && !t.is_ident("Some")
                    && !t.is_ident("Err")
            })
            .map(|t| t.text.clone());
        let mut end = encl_end.get(i).copied().unwrap_or(tokens.len());
        if end == usize::MAX {
            end = tokens.len();
        }
        if let Some(g) = guard_name {
            let mut j = i;
            while j + 2 < end.min(tokens.len()) {
                if tokens[j].is_ident("drop")
                    && tokens[j + 1].is_punct("(")
                    && tokens[j + 2].is_ident(&g)
                {
                    end = j;
                    break;
                }
                j += 1;
            }
        }
        return (i, end);
    }
    // Expression temporary: the guard dies at the statement's `;`.
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(i) {
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("}") {
            if depth == 0 {
                return (i, j);
            }
            depth -= 1;
        } else if t.is_punct(";") && depth <= 0 {
            return (i, j);
        }
    }
    (i, tokens.len())
}

/// Whether the chain after the lock call at `i` ends the statement via at
/// most guard-preserving adapters (`.unwrap()`, `.expect(…)`, …) — i.e.
/// the `let` binds the guard itself, not a value extracted from it.
fn lock_chain_is_binding(tokens: &[Tok], i: usize) -> bool {
    // tokens[i] = lock/read/write, tokens[i+1] = `(`, tokens[i+2] = `)`.
    let mut j = i + 3;
    const ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "ok", "map_err"];
    loop {
        match tokens.get(j) {
            Some(t) if t.is_punct(";") => return true,
            Some(t) if t.is_punct(".") => {
                let Some(m) = tokens.get(j + 1) else {
                    return false;
                };
                if !ADAPTERS.contains(&m.text.as_str()) {
                    return false;
                }
                let Some(open) = tokens.get(j + 2).filter(|t| t.is_punct("(")) else {
                    return false;
                };
                let _ = open;
                match match_punct(tokens, j + 2, "(", ")") {
                    Some(close) => j = close + 1,
                    None => return false,
                }
            }
            _ => return false,
        }
    }
}

/// First `{` after `i` at paren/bracket depth 0 — the conditional's block.
fn next_block_open(tokens: &[Tok], i: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(i) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("{") && depth <= 0 {
            return Some(j);
        } else if t.is_punct(";") && depth <= 0 {
            return None;
        }
    }
    None
}

/// Parses the closure literal argument of the worker-pool call at `i`.
fn parse_worker_closure(tokens: &[Tok], i: usize) -> Option<WorkerClosure> {
    let open = i + 1; // `(`
    let close = match_punct(tokens, open, "(", ")")?;
    // Find the closure's opening `|` (or `||`) at paren depth 1, skipping
    // an optional leading `move`.
    let mut depth = 0i32;
    let mut j = open;
    let (bar, params) = loop {
        if j > close {
            return None;
        }
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 1 && t.is_punct("||") {
            break (j, BTreeSet::new());
        } else if depth == 1 && t.is_punct("|") {
            // Collect parameter names up to the closing `|`.
            let mut params = BTreeSet::new();
            let mut k = j + 1;
            let mut expecting_name = true;
            while k < close && !tokens[k].is_punct("|") {
                let t = &tokens[k];
                if t.is_punct(",") {
                    expecting_name = true;
                } else if t.is_punct(":") {
                    expecting_name = false; // type follows
                } else if expecting_name && t.kind == TokKind::Ident && !t.is_ident("mut") {
                    params.insert(t.text.clone());
                    expecting_name = false;
                }
                k += 1;
            }
            break (k, params);
        }
        j += 1;
    };
    // Closure body: a block, or an expression running to the call's `)`.
    let mut k = bar + 1;
    while k < close && !tokens[k].is_punct("{") && !tokens[k].is_punct(",") {
        k += 1;
    }
    let body = if tokens.get(k).is_some_and(|t| t.is_punct("{")) {
        let body_close = match_punct(tokens, k, "{", "}").unwrap_or(close);
        (k + 1, body_close)
    } else {
        (bar + 1, close)
    };
    Some(WorkerClosure {
        host: tokens[i].text.clone(),
        line: tokens[bar].line,
        body,
        params,
    })
}

/// Identifiers bound by `let`/`for` inside the token range — closure
/// locals that are not captures.
pub fn local_bindings(tokens: &[Tok], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = range.0;
    while i < range.1.min(tokens.len()) {
        let t = &tokens[i];
        if t.is_ident("let") || t.is_ident("for") {
            let stop = if t.is_ident("let") { "=" } else { "in" };
            let mut j = i + 1;
            while j < range.1 {
                let b = &tokens[j];
                if b.is_punct(stop) || b.is_ident(stop) || b.is_punct(";") || b.is_punct("{") {
                    break;
                }
                if b.kind == TokKind::Ident
                    && !b.is_ident("mut")
                    && !b.is_ident("Ok")
                    && !b.is_ident("Some")
                    && !b.is_ident("Err")
                    && !b.is_ident("ref")
                {
                    out.insert(b.text.clone());
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Mutation-through-capture sites inside a worker closure: `root.trigger(…)`
/// where `root` is neither a closure parameter nor a closure-local binding.
/// Returns `(line, root, trigger)` triples.
pub fn capture_escapes(tokens: &[Tok], closure: &WorkerClosure) -> Vec<(u32, String, String)> {
    let locals = local_bindings(tokens, closure.body);
    let mut out = Vec::new();
    for i in closure.body.0..closure.body.1.min(tokens.len()) {
        let t = &tokens[i];
        let is_trigger = t.kind == TokKind::Ident
            && (CAPTURE_TRIGGERS.contains(&t.text.as_str()) || t.text.starts_with("fetch_"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && i > 0
            && tokens[i - 1].is_punct(".");
        if !is_trigger {
            continue;
        }
        // Root of the receiver chain: first ident walking left over
        // `ident . ident . trigger(`.
        let mut j = i - 1; // the `.`
        let mut root: Option<&Tok> = None;
        while j > 0 {
            let p = &tokens[j - 1];
            if p.kind == TokKind::Ident {
                root = Some(p);
                j -= 1;
            } else if p.is_punct(".") {
                j -= 1;
            } else {
                break;
            }
        }
        let Some(root) = root else { continue };
        if closure.params.contains(&root.text) || locals.contains(&root.text) {
            continue;
        }
        out.push((t.line, root.text.clone(), t.text.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        build(&[("crates/sim/src/x.rs".to_string(), src.to_string())])
    }

    #[test]
    fn fn_and_owner_parsed() {
        let w = ws(
            "impl Server { pub fn tick(&mut self) -> u64 { self.step(); 0 } }\n\
                    fn free() { helper(1); }\n",
        );
        assert_eq!(w.fns.len(), 2);
        assert_eq!(w.fns[0].owner.as_deref(), Some("Server"));
        assert_eq!(w.fns[0].name, "tick");
        assert_eq!(w.fns[0].calls.len(), 1);
        assert_eq!(w.fns[0].calls[0].name, "step");
        assert_eq!(
            w.fns[0].calls[0].owner_hint.as_deref(),
            Some("Server"),
            "self.step() resolves against the impl owner"
        );
        assert_eq!(w.fns[1].owner, None);
        assert_eq!(w.fns[1].calls[0].name, "helper");
    }

    #[test]
    fn trait_impl_owner_is_the_type() {
        let w = ws("impl TraceSink for FlightRecorder { fn record(&mut self) {} }\n");
        assert_eq!(w.fns[0].owner.as_deref(), Some("FlightRecorder"));
    }

    #[test]
    fn return_position_impl_is_not_an_item() {
        let w =
            ws("fn f() -> impl Iterator<Item = u8> { let g = m.lock().unwrap(); v.into_iter() }\n");
        assert_eq!(w.fns.len(), 1);
        assert_eq!(w.fns[0].name, "f");
        assert_eq!(w.fns[0].locks.len(), 1);
    }

    #[test]
    fn lock_guard_extents() {
        // Binding: lives to end of block. Temporary: dies at `;`.
        let w =
            ws("fn f() { let g = a.lock().unwrap(); use_it(&g); b.lock().unwrap().push(1); }\n");
        let f = &w.fns[0];
        assert_eq!(f.locks.len(), 2);
        let (a, b) = (&f.locks[0], &f.locks[1]);
        assert!(a.guard.1 > b.tok, "binding guard spans the later lock");
        assert!(
            b.guard.1 < f.body.1,
            "temporary guard ends at its statement"
        );
    }

    #[test]
    fn drop_ends_binding_guard() {
        let w = ws("fn f() { let g = a.lock().unwrap(); drop(g); b.lock().unwrap().push(1); }\n");
        let f = &w.fns[0];
        assert!(
            f.locks[0].guard.1 < f.locks[1].tok,
            "drop(g) ends the extent"
        );
    }

    #[test]
    fn if_let_guard_spans_conditional_block() {
        let w = ws("fn f() { if let Ok(mut g) = a.lock() { g.push(other.lock().unwrap()); } b.lock().unwrap(); }\n");
        let f = &w.fns[0];
        assert_eq!(f.locks.len(), 3);
        let a = &f.locks[0];
        assert!(a.guard.0 < f.locks[1].tok && f.locks[1].tok < a.guard.1);
        assert!(f.locks[2].tok > a.guard.1, "later lock outside the if-let");
    }

    #[test]
    fn rwlock_read_write_detected_io_read_not() {
        let w = ws("struct S { current: RwLock<u32> }\n\
                    fn f(s: &S, stream: &mut TcpStream) { let v = s.current.read(); stream.read(&mut buf); }\n");
        let f = &w.fns[0];
        assert_eq!(f.locks.len(), 1, "{:?}", f.locks);
        assert_eq!(f.locks[0].op, LockOp::Read);
        assert_eq!(f.locks[0].key, "sim:current");
    }

    #[test]
    fn blocking_and_taint_detected() {
        let w = ws("fn f(rx: &Receiver<u8>, h: JoinHandle<()>) { rx.recv(); h.join(); thread::sleep(d); let t = Instant::now(); v.join(\", \"); }\n");
        let f = &w.fns[0];
        let whats: Vec<&str> = f.blocking.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(whats, vec![".recv()", ".join()", "thread::sleep"]);
        assert_eq!(f.taints.len(), 1);
    }

    #[test]
    fn worker_closure_captures_vs_params() {
        let w = ws("fn f(items: &mut [u8], out: &Mutex<Vec<u8>>) {\n\
                    map_mut(items, 4, |h| { let x = h; out.lock().unwrap().push(*x); });\n}\n");
        let f = &w.fns[0];
        assert_eq!(f.closures.len(), 1);
        let esc = capture_escapes(&w.files[0].lexed.tokens, &f.closures[0]);
        assert_eq!(esc.len(), 1);
        assert_eq!(esc[0].1, "out");
        assert_eq!(esc[0].2, "lock");
    }

    #[test]
    fn closure_param_mutation_is_not_escape() {
        let w = ws("fn f(items: &mut [H]) { map_mut(items, 4, |h| h.server.tick()); }\n");
        let f = &w.fns[0];
        assert_eq!(f.closures.len(), 1);
        let esc = capture_escapes(&w.files[0].lexed.tokens, &f.closures[0]);
        assert!(esc.is_empty(), "{esc:?}");
    }

    #[test]
    fn sinks_detected() {
        let w = ws("fn f(tr: &Tracer) { tr.emit(ev); }\nfn g() -> SessionReport { todo() }\nfn h() { other(); }\n");
        assert!(w.fns[0].sink.is_some());
        assert!(w.fns[1].sink.is_some());
        assert!(w.fns[2].sink.is_none());
    }

    #[test]
    fn test_code_marked() {
        let w =
            ws("#[cfg(test)]\nmod tests { fn helper() { a.lock().unwrap(); } }\nfn live() {}\n");
        assert!(w.fns[0].is_test);
        assert!(!w.fns[1].is_test);
    }
}
