//! The lint rules and the allowlist machinery.
//!
//! Every rule has a stable id (`D1`, `D2`, `M1`, `M2`, `F1`, plus `A1` for
//! the allowlist syntax itself). A finding can be suppressed with an
//! annotation comment carrying a justification:
//!
//! ```text
//! // lint: allow(panic, "pool sizing is a constructor precondition")
//! // lint: allow-file(nondet, "wall-clock timing is this module's job")
//! ```
//!
//! `allow(...)` applies to its own line when trailing, or to the next code
//! line when the comment stands alone. `allow-file(...)` applies to the
//! whole file. The justification string is mandatory; an annotation without
//! one (or with an unknown tag) is itself a finding (`A1`).

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::collections::BTreeSet;

/// Stable identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `HashMap`/`HashSet` in deterministic crates.
    D1,
    /// No wall-clock or ambient randomness in sim/model code paths.
    D2,
    /// No `unwrap`/`expect`/slice-indexing in tick & control-round hot paths.
    M1,
    /// No bare `as` casts on model quantities.
    M2,
    /// No `==`/`!=` on floating-point values.
    F1,
    /// Allow-annotation hygiene (malformed tag or missing justification).
    A1,
    /// Globally consistent lock-acquisition order (see [`crate::conc`]).
    C1,
    /// No guard held across a blocking call; no locks on the hot path.
    C2,
    /// Interprocedural determinism taint reaching a trace/digest/report.
    C3,
    /// Capture escape of shared-mutable state into worker closures.
    C4,
}

impl RuleId {
    /// The rule id as printed in reports.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::M1 => "M1",
            RuleId::M2 => "M2",
            RuleId::F1 => "F1",
            RuleId::A1 => "A1",
            RuleId::C1 => "C1",
            RuleId::C2 => "C2",
            RuleId::C3 => "C3",
            RuleId::C4 => "C4",
        }
    }

    /// The allow-annotation tag that suppresses this rule, if any.
    /// C2 has two tags: `blocking` (guard across a blocking call) and
    /// `hot_lock` (lock on the hot path) — [`crate::conc`] picks per site.
    pub fn allow_tag(self) -> Option<&'static str> {
        match self {
            RuleId::D1 => Some("unordered"),
            RuleId::D2 => Some("nondet"),
            RuleId::M1 => Some("panic"),
            RuleId::M2 => Some("cast"),
            RuleId::F1 => Some("float_cmp"),
            RuleId::A1 => None,
            RuleId::C1 => Some("lock_order"),
            RuleId::C2 => Some("blocking"),
            RuleId::C3 => Some("taint"),
            RuleId::C4 => Some("capture"),
        }
    }

    /// Every suppressible rule tag (for annotation validation).
    pub const TAGS: [&'static str; 10] = [
        "unordered",
        "nondet",
        "panic",
        "cast",
        "float_cmp",
        "lock_order",
        "blocking",
        "hot_lock",
        "taint",
        "capture",
    ];
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`"D1"`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// `RULE file:line:col message` — the report line format.
    pub fn render(&self) -> String {
        format!(
            "{} {}:{}:{} {}",
            self.rule, self.file, self.line, self.col, self.message
        )
    }
}

/// A parsed `lint: allow(...)` annotation.
#[derive(Debug)]
struct Allow {
    tag: String,
    /// Line the annotation suppresses (`None` = whole file).
    applies_to: Option<u32>,
}

/// Result of parsing the annotations of one file.
#[derive(Debug, Default)]
pub struct Allows {
    /// (tag, line) pairs suppressed by line annotations.
    by_line: BTreeSet<(String, u32)>,
    /// Tags suppressed file-wide.
    file_wide: BTreeSet<String>,
    /// Malformed annotations (A1 findings).
    malformed: Vec<(u32, String)>,
}

impl Allows {
    /// Whether findings with `tag` on `line` are suppressed.
    pub fn suppressed(&self, tag: &str, line: u32) -> bool {
        self.file_wide.contains(tag) || self.by_line.contains(&(tag.to_string(), line))
    }
}

/// Parses `lint: allow(tag, "justification")` out of one comment. Returns
/// `Ok(None)` when the comment carries no annotation at all.
fn parse_allow(comment: &Comment, code_lines: &BTreeSet<u32>) -> Result<Vec<Allow>, String> {
    let text = &comment.text;
    let Some(pos) = text.find("lint:") else {
        return Ok(Vec::new());
    };
    let rest = text[pos + "lint:".len()..].trim_start();
    let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        return Err("expected `allow(tag, \"justification\")` after `lint:`".to_string());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `lint: allow`".to_string());
    };
    // Tag runs to the first `,` (or `)` when the justification is missing).
    let tag_end = rest.find([',', ')']).unwrap_or(rest.len());
    let tag = rest[..tag_end].trim();
    if !RuleId::TAGS.contains(&tag) {
        return Err(format!(
            "unknown allow tag `{tag}` (known: {})",
            RuleId::TAGS.join(", ")
        ));
    }
    if !rest[tag_end..].starts_with(',') {
        return Err(format!(
            "missing justification: write `lint: allow({tag}, \"why this is sound\")`"
        ));
    }
    // The justification is a double-quoted string (which may itself contain
    // parentheses), followed by the closing `)`.
    let after_comma = rest[tag_end + 1..].trim_start();
    let justification = after_comma
        .strip_prefix('"')
        .and_then(|j| j.split_once('"'))
        .map(|(inner, tail)| (inner, tail.trim_start()))
        .filter(|(_, tail)| tail.starts_with(')'))
        .map(|(inner, _)| inner)
        .unwrap_or("");
    if justification.trim().is_empty() {
        return Err(format!(
            "empty justification for `allow({tag})`: say why this is sound"
        ));
    }

    let applies_to = if file_wide {
        None
    } else if comment.trailing {
        Some(comment.line)
    } else {
        // Standalone annotation: applies to the next line that has code
        // (skipping further comment-only lines so annotations can stack).
        let mut target = comment.line + 1;
        while !code_lines.contains(&target) {
            target += 1;
            if target > comment.line + 50 {
                break; // orphaned annotation — points nowhere close
            }
        }
        Some(target)
    };
    Ok(vec![Allow {
        tag: tag.to_string(),
        applies_to,
    }])
}

pub(crate) fn collect_allows(comments: &[Comment], code_lines: &BTreeSet<u32>) -> Allows {
    let mut allows = Allows::default();
    for comment in comments {
        match parse_allow(comment, code_lines) {
            Ok(list) => {
                for a in list {
                    match a.applies_to {
                        Some(line) => {
                            allows.by_line.insert((a.tag, line));
                        }
                        None => {
                            allows.file_wide.insert(a.tag);
                        }
                    }
                }
            }
            Err(msg) => allows.malformed.push((comment.line, msg)),
        }
    }
    allows
}

/// Marks the token ranges covered by test-only items: any item annotated
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]` and the braced body
/// that follows. Returns one flag per token.
pub(crate) fn test_exempt_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut exempt = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // find matching `]` of this attribute
            let Some(attr_end) = match_bracket(tokens, i + 1, "[", "]") else {
                break;
            };
            let mentions_test = tokens[i + 2..attr_end].iter().any(|t| t.is_ident("test"));
            if !mentions_test {
                i = attr_end + 1;
                continue;
            }
            // Skip any further attributes (`#[should_panic]`, docs ...).
            let mut k = attr_end + 1;
            while k < tokens.len()
                && tokens[k].is_punct("#")
                && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
            {
                match match_bracket(tokens, k + 1, "[", "]") {
                    Some(e) => k = e + 1,
                    None => break,
                }
            }
            // The exempt region ends at a top-level `;` (e.g. a `use`) or at
            // the closing brace of the first braced body.
            let mut end = tokens.len() - 1;
            let mut j = k;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct(";") {
                    end = j;
                    break;
                }
                if t.is_punct("{") {
                    end = match_bracket(tokens, j, "{", "}").unwrap_or(tokens.len() - 1);
                    break;
                }
                j += 1;
            }
            for flag in exempt.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    exempt
}

/// Index of the token closing the bracket opened at `open_idx`.
fn match_bracket(tokens: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Keywords that can legally precede `[` without it being an indexing
/// expression (slice patterns, array types after `as`/`in`, ...).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "in", "as", "ref", "mut", "return", "else", "match", "if", "while", "box", "move",
    "static", "const", "dyn", "impl", "where", "for", "loop", "break", "continue", "unsafe", "pub",
    "crate", "fn", "use", "type", "struct", "enum", "trait", "mod", "await",
];

/// Numeric primitive names (the `as` targets M2 flags).
const NUMERIC_PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

fn is_float_literal(t: &Tok) -> bool {
    t.kind == TokKind::Num
        && !t.text.starts_with("0x")
        && !t.text.starts_with("0X")
        && (t.text.contains('.')
            || t.text.contains('e')
            || t.text.contains('E')
            || t.text.ends_with("f32")
            || t.text.ends_with("f64"))
}

/// Scans one file's source with the given rules and returns its findings.
/// `rel_path` is only used to fill in [`Finding::file`].
pub fn scan_source(rel_path: &str, src: &str, rules: &[RuleId]) -> Vec<Finding> {
    scan_source_ranged(rel_path, src, rules, None)
}

/// [`scan_source`] with M1 restricted to 1-based line ranges (the hot
/// functions inferred by [`crate::conc::analyze`]). `None` keeps M1
/// file-wide; `Some(&[])` disables it for the file.
pub fn scan_source_ranged(
    rel_path: &str,
    src: &str,
    rules: &[RuleId],
    m1_ranges: Option<&[(u32, u32)]>,
) -> Vec<Finding> {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let allows = collect_allows(&lexed.comments, &code_lines);
    let exempt = test_exempt_mask(tokens);
    let mut findings = Vec::new();

    // A1 runs unconditionally: annotation hygiene is never waivable.
    for (line, msg) in &allows.malformed {
        findings.push(Finding {
            rule: RuleId::A1.id(),
            file: rel_path.to_string(),
            line: *line,
            col: 1,
            message: msg.clone(),
        });
    }

    let emit = |rule: RuleId, t: &Tok, message: String, out: &mut Vec<Finding>| {
        let tag = rule.allow_tag().unwrap_or_default();
        if !allows.suppressed(tag, t.line) {
            out.push(Finding {
                rule: rule.id(),
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                message,
            });
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        if exempt[i] {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(i + 1);

        if rules.contains(&RuleId::D1) && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            emit(
                RuleId::D1,
                t,
                format!(
                    "{} in a deterministic crate: iteration order varies run-to-run; \
                     use BTreeMap/BTreeSet or annotate `// lint: allow(unordered, \"...\")`",
                    t.text
                ),
                &mut findings,
            );
        }

        if rules.contains(&RuleId::D2) {
            let named =
                t.is_ident("Instant") || t.is_ident("SystemTime") || t.is_ident("UNIX_EPOCH");
            let entropy = t.is_ident("thread_rng") || t.is_ident("from_entropy");
            let rand_random = t.is_ident("rand")
                && next.is_some_and(|n| n.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|n| n.is_ident("random"));
            if named || entropy || rand_random {
                emit(
                    RuleId::D2,
                    t,
                    format!(
                        "{} is wall-clock/ambient-randomness: seeded runs stop being \
                         reproducible; thread sim-time or a seeded RNG through instead, \
                         or annotate `// lint: allow(nondet, \"...\")`",
                        t.text
                    ),
                    &mut findings,
                );
            }
        }

        let m1_here = rules.contains(&RuleId::M1)
            && m1_ranges
                .map(|rs| rs.iter().any(|(s, e)| *s <= t.line && t.line <= *e))
                .unwrap_or(true);
        if m1_here {
            let method_panic = prev.is_some_and(|p| p.is_punct("."))
                && (t.is_ident("unwrap") || t.is_ident("expect") || t.is_ident("unwrap_unchecked"))
                && next.is_some_and(|n| n.is_punct("("));
            if method_panic {
                emit(
                    RuleId::M1,
                    t,
                    format!(
                        ".{}() can panic in a tick/control-round hot path; convert to a \
                         Result/Option flow or annotate `// lint: allow(panic, \"...\")`",
                        t.text
                    ),
                    &mut findings,
                );
            }
            let indexing = t.is_punct("[")
                && prev.is_some_and(|p| {
                    (p.kind == TokKind::Ident && !NON_INDEX_PRECEDERS.contains(&p.text.as_str()))
                        || p.is_punct("]")
                        || p.is_punct(")")
                });
            if indexing {
                emit(
                    RuleId::M1,
                    t,
                    "slice/array indexing can panic in a tick/control-round hot path; use \
                     .get()/.get_mut() or annotate `// lint: allow(panic, \"...\")`"
                        .to_string(),
                    &mut findings,
                );
            }
        }

        if rules.contains(&RuleId::M2)
            && t.is_ident("as")
            && next.is_some_and(|n| {
                n.kind == TokKind::Ident && NUMERIC_PRIMITIVES.contains(&n.text.as_str())
            })
        {
            emit(
                RuleId::M2,
                t,
                format!(
                    "bare `as {}` cast on a model quantity silently wraps/truncates; use \
                     From/TryFrom or the roia_model::convert helpers, or annotate \
                     `// lint: allow(cast, \"...\")`",
                    next.map(|n| n.text.as_str()).unwrap_or_default()
                ),
                &mut findings,
            );
        }

        if rules.contains(&RuleId::F1)
            && (t.is_punct("==") || t.is_punct("!="))
            && (prev.is_some_and(is_float_literal) || next.is_some_and(is_float_literal))
        {
            emit(
                RuleId::F1,
                t,
                format!(
                    "`{}` against a floating-point literal: exact float equality is almost \
                     never the intended model predicate; compare against a tolerance or \
                     annotate `// lint: allow(float_cmp, \"...\")`",
                    t.text
                ),
                &mut findings,
            );
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [RuleId; 6] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::M1,
        RuleId::M2,
        RuleId::F1,
        RuleId::A1,
    ];

    fn scan(src: &str) -> Vec<Finding> {
        scan_source("test.rs", src, &ALL)
    }

    #[test]
    fn hashmap_flagged_and_allow_suppresses() {
        let f = scan("use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D1");

        let ok = scan(
            "// lint: allow(unordered, \"only get/insert, never iterated\")\n\
             use std::collections::HashMap;\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let ok = scan("let t = Instant::now(); // lint: allow(nondet, \"wall mode only\")\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn allow_justification_may_contain_parens_and_commas() {
        let ok = scan(
            "let n = x.floor() as u32; // lint: allow(cast, \"saturates (NaN→0, see docs) since 1.45\")\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn allow_without_justification_is_a1() {
        let f = scan("// lint: allow(unordered)\nuse std::collections::HashMap;\n");
        assert!(f.iter().any(|f| f.rule == "A1"));
        assert!(f.iter().any(|f| f.rule == "D1"), "finding not suppressed");
    }

    #[test]
    fn unknown_tag_is_a1() {
        let f = scan("// lint: allow(everything, \"please\")\nlet x = 1;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A1");
    }

    #[test]
    fn file_wide_allow() {
        let ok = scan(
            "// lint: allow-file(nondet, \"this module is the wall-clock boundary\")\n\
             fn f() { let a = Instant::now(); let b = SystemTime::now(); }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn f() { x.unwrap(); }\n}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unwrap_and_indexing_flagged() {
        let f = scan("fn f() { let x = v[0]; y.unwrap(); z.expect(\"msg\"); }\n");
        assert_eq!(f.iter().filter(|f| f.rule == "M1").count(), 3);
    }

    #[test]
    fn array_types_and_slice_patterns_not_indexing() {
        let f = scan("struct S { wall: [f64; 4] }\nfn f(s: &S) { let [a, b] = pair; }\n");
        assert!(f.iter().all(|f| f.rule != "M1"), "{f:?}");
    }

    #[test]
    fn vec_macro_not_indexing() {
        let f = scan("fn f() { let v = vec![1, 2]; }\n");
        assert!(f.iter().all(|f| f.rule != "M1"), "{f:?}");
    }

    #[test]
    fn casts_flagged_but_use_rename_is_not() {
        let f = scan("fn f(n: u32) -> f64 { n as f64 }\nuse foo as bar;\n");
        assert_eq!(f.iter().filter(|f| f.rule == "M2").count(), 1);
    }

    #[test]
    fn float_eq_flagged_int_eq_not() {
        let f = scan("fn f(x: f64, n: u32) { if x == 0.0 {} if n == 0 {} if 1e-6 != x {} }\n");
        assert_eq!(f.iter().filter(|f| f.rule == "F1").count(), 2);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let f = scan("// HashMap Instant unwrap as f64\nlet s = \"HashMap x == 0.0\";\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
