//! Golden fixture tests: every rule must fire on its known-bad snippet with
//! the documented id and span, stay silent on the good fixtures, and the
//! real workspace must scan clean.

use roia_lint::{check_workspace, rules_for, scan_source, Finding, RuleId};
use std::path::Path;

/// Runs the workspace-model concurrency analysis (C1–C4) over a single
/// fixture file, placed at `rel` so crate attribution works.
fn conc_scan(name: &str, rel: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let files = vec![(rel.to_string(), src)];
    let ws = roia_lint::model::build(&files);
    roia_lint::conc::analyze(&ws).findings
}

const ALL_RULES: [RuleId; 6] = [
    RuleId::D1,
    RuleId::D2,
    RuleId::M1,
    RuleId::M2,
    RuleId::F1,
    RuleId::A1,
];

fn scan_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    scan_source(name, &src, &ALL_RULES)
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn d1_fixture_fires_with_span_and_message() {
    let f = scan_fixture("bad/d1_unordered.rs");
    assert_eq!(rules_fired(&f), vec!["D1"], "{f:?}");
    assert_eq!((f[0].line, f[0].col), (2, 23), "the `use` import");
    assert!(f[0].message.contains("iteration order"));
    assert!(f[0].message.contains("allow(unordered"));
    assert!(
        f.len() >= 3,
        "type, constructor and import all flagged: {f:?}"
    );
}

#[test]
fn d2_fixture_fires_on_clock_and_randomness() {
    let f = scan_fixture("bad/d2_nondet.rs");
    assert_eq!(rules_fired(&f), vec!["D2"], "{f:?}");
    assert!(f
        .iter()
        .any(|f| f.message.contains("Instant") && f.line == 5));
    assert!(f.iter().any(|f| f.line == 6), "rand::random flagged: {f:?}");
    assert!(f[0].message.contains("reproducible"));
}

#[test]
fn m1_fixture_fires_on_each_panic_site() {
    let f = scan_fixture("bad/m1_panic.rs");
    assert_eq!(rules_fired(&f), vec!["M1"], "{f:?}");
    assert_eq!(f.len(), 3, "indexing + unwrap + expect: {f:?}");
    assert_eq!(f[0].line, 3, "v[0]");
    assert!(f[1].message.contains(".unwrap()"));
    assert!(f[2].message.contains(".expect()"));
}

#[test]
fn m2_fixture_fires_per_cast() {
    let f = scan_fixture("bad/m2_cast.rs");
    assert_eq!(rules_fired(&f), vec!["M2"], "{f:?}");
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f[0].message.contains("`as u32`"));
    assert!(f[1].message.contains("`as u64`"));
    assert_eq!(f[0].line, 3);
}

#[test]
fn f1_fixture_fires_on_float_equality() {
    let f = scan_fixture("bad/f1_float_eq.rs");
    assert_eq!(rules_fired(&f), vec!["F1"], "{f:?}");
    assert_eq!(f[0].line, 3);
    assert!(f[0].message.contains("tolerance"));
}

#[test]
fn a1_fixture_fires_on_malformed_allows() {
    let f = scan_fixture("bad/a1_bad_allow.rs");
    let a1: Vec<&Finding> = f.iter().filter(|f| f.rule == "A1").collect();
    assert_eq!(a1.len(), 2, "{f:?}");
    assert!(a1[0].message.contains("missing justification"));
    assert!(a1[1].message.contains("unknown allow tag"));
    // The unjustified allow does NOT suppress the finding underneath.
    assert!(f.iter().any(|f| f.rule == "M1"), "{f:?}");
}

#[test]
fn worker_pool_fixture_fires_d2_and_m1() {
    // Scanned with the rules the scope tables route to the worker-pool
    // module plus M1, which the workspace scan would add here via
    // hot-path inference (fan-out helpers run inside Server::tick), so
    // this pins both the routing and the detections: thread-timing
    // reads and a panicking join must fire.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad/worker_pool.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let mut rules = rules_for("crates/sim/src/parallel.rs");
    assert!(
        !rules.contains(&RuleId::M1),
        "M1 is no longer routed file-wide; it rides on inferred hot ranges"
    );
    rules.push(RuleId::M1);
    let f = scan_source("bad/worker_pool.rs", &src, &rules);
    assert_eq!(rules_fired(&f), vec!["D2", "M1"], "{f:?}");
    assert!(
        f.iter()
            .any(|f| f.rule == "D2" && f.line == 7 && f.message.contains("Instant")),
        "Instant::now in the fan-out flagged: {f:?}"
    );
    assert!(
        f.iter()
            .any(|f| f.rule == "M1" && f.line == 13 && f.message.contains(".unwrap()")),
        "panicking join flagged: {f:?}"
    );
}

#[test]
fn session_netcode_fixture_fires_d1_d2_and_m1() {
    // Scanned with the rules the scope tables route to the transport
    // session module plus M1, which the workspace scan would add here
    // via hot-path inference (SessionServer::tick is a hot root),
    // pinning both the routing and the detections: an unordered peer
    // map, a tick-path clock read and a panicking frame decode must
    // all fire.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("bad/session_netcode.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let mut rules = rules_for("crates/transport/src/session.rs");
    rules.push(RuleId::M1);
    let f = scan_source("bad/session_netcode.rs", &src, &rules);
    // Findings interleave by line (the map fires on both its import and
    // its use), so compare the distinct rule set, not the fired order.
    let mut distinct = rules_fired(&f);
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct, vec!["D1", "D2", "M1"], "{f:?}");
    assert!(
        f.iter()
            .any(|f| f.rule == "D2" && f.line == 9 && f.message.contains("Instant")),
        "Instant::now in the tick flagged: {f:?}"
    );
    assert!(
        f.iter()
            .any(|f| f.rule == "M1" && f.line == 10 && f.message.contains(".unwrap()")),
        "panicking decode flagged: {f:?}"
    );
    assert!(
        f.iter().any(|f| f.rule == "M1" && f.line == 11),
        "frame[0] indexing flagged: {f:?}"
    );
}

#[test]
fn c1_fixture_fires_on_conflicting_lock_order() {
    let f = conc_scan("bad/c1_lock_order.rs", "crates/net/src/fixture.rs");
    let c1: Vec<&Finding> = f.iter().filter(|f| f.rule == "C1").collect();
    assert_eq!(c1.len(), 1, "one conflicting pair: {f:?}");
    assert!(
        c1[0].message.contains("conflicting lock order"),
        "{}",
        c1[0].message
    );
    assert!(
        c1[0].message.contains("forward") && c1[0].message.contains("backward"),
        "both witnesses named: {}",
        c1[0].message
    );
}

#[test]
fn c2_fixture_fires_on_blocking_and_hot_lock() {
    let f = conc_scan("bad/c2_blocking.rs", "crates/net/src/fixture.rs");
    let c2: Vec<&Finding> = f.iter().filter(|f| f.rule == "C2").collect();
    assert!(
        c2.iter()
            .any(|f| f.message.contains("held across") && f.message.contains("recv")),
        "guard across recv flagged: {f:?}"
    );
    assert!(
        c2.iter().any(|f| f.message.contains("hot path")),
        "Server::tick lock flagged: {f:?}"
    );
}

#[test]
fn c3_fixture_fires_at_the_sink_with_a_witness_chain() {
    let f = conc_scan("bad/c3_taint.rs", "crates/obs/src/fixture.rs");
    let c3: Vec<&Finding> = f.iter().filter(|f| f.rule == "C3").collect();
    assert_eq!(c3.len(), 1, "flagged once, at the sink: {f:?}");
    assert!(
        c3[0].message.contains("Reporter::publish"),
        "sink named: {}",
        c3[0].message
    );
    assert!(
        c3[0].message.contains("tick_cost") && c3[0].message.contains("sample_clock"),
        "witness chain spelled out: {}",
        c3[0].message
    );
    assert!(c3[0].message.contains("Instant"), "{}", c3[0].message);
}

#[test]
fn c4_fixture_fires_on_captured_shared_state() {
    let f = conc_scan("bad/c4_capture.rs", "crates/sim/src/fixture.rs");
    let c4: Vec<&Finding> = f.iter().filter(|f| f.rule == "C4").collect();
    assert_eq!(c4.len(), 1, "{f:?}");
    assert!(
        c4[0].message.contains("shared") && c4[0].message.contains("map_mut"),
        "captured root and worker host named: {}",
        c4[0].message
    );
}

#[test]
fn good_fixtures_scan_clean() {
    for name in [
        "good/allowlisted.rs",
        "good/clean.rs",
        "good/transport_boundary.rs",
    ] {
        let f = scan_fixture(name);
        assert!(f.is_empty(), "{name} should be clean: {f:?}");
    }
}

#[test]
fn good_conc_fixtures_scan_clean() {
    for name in [
        "good/c1_lock_order.rs",
        "good/c2_blocking.rs",
        "good/c3_taint.rs",
        "good/c4_capture.rs",
    ] {
        let f = conc_scan(name, "crates/sim/src/fixture.rs");
        assert!(f.is_empty(), "{name} should be clean: {f:?}");
    }
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let findings = check_workspace(root).expect("scan");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
