//! Property tests for the lint lexer and rule pipeline (ISSUE satellite):
//! the analyzer is the thing that judges every other crate, so it must
//! never panic — not on byte soup, not on unterminated literals, not on
//! adversarially nested comments — and every token it emits must point
//! back at the exact source characters it was lexed from (the rules
//! render `file:line:col` findings from those spans).

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use roia_lint::lexer::{lex, TokKind};
use roia_lint::{rules_for, scan_source, RuleId};

/// Rust-ish source fragments: enough structure to reach every lexer arm
/// (raw strings, lifetimes, nested comments, numeric suffixes, allow
/// annotations) while random composition produces the torn, half-formed
/// inputs a text editor mid-keystroke would feed a file watcher.
fn fragment() -> BoxedStrategy<String> {
    prop_oneof![
        Just("fn f<'a>(x: &'a mut u8) -> u8 { *x }".to_string()),
        Just("let s = r#\"raw \" with quote\"#;".to_string()),
        Just("let b = b\"bytes\"; let c = b'x';".to_string()),
        Just("/* outer /* nested */ tail */".to_string()),
        Just("// lint: allow(nondet, \"because\")".to_string()),
        Just("let n = 1.5e-3f64 + 0x_1f + 2e6;".to_string()),
        Just("let m: HashMap<u32, Instant> = HashMap::new();".to_string()),
        Just("\"unterminated".to_string()),
        Just("r###\"deep raw\"###".to_string()),
        Just("'l: loop { break 'l; }".to_string()),
        Just("/*".to_string()),
        Just("r#".to_string()),
        Just("b'".to_string()),
        Just("0.".to_string()),
        Just("..".to_string()),
        Just("::<>".to_string()),
        Just("\n".to_string()),
        Just(" ".to_string()),
    ]
    .boxed()
}

/// Arbitrary bytes forced through lossy UTF-8: genuine soup, including
/// replacement characters, stray quotes and half escape sequences.
fn byte_soup() -> BoxedStrategy<String> {
    vec(any::<u8>(), 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
        .boxed()
}

/// Checks every token's `(line, col)` span points at exactly its text in
/// `src`. The lexer builds token text by copying source characters in
/// order, so the text must reappear verbatim at the recorded position.
fn assert_spans_round_trip(src: &str) -> Result<(), TestCaseError> {
    let lexed = lex(src);
    let lines: Vec<Vec<char>> = src.split('\n').map(|l| l.chars().collect()).collect();
    for t in &lexed.tokens {
        let row = (t.line as usize).checked_sub(1);
        let col = (t.col as usize).checked_sub(1);
        let (Some(row), Some(col)) = (row, col) else {
            return Err(TestCaseError::Fail(
                format!(
                    "token {:?} has zero-based span {}:{}",
                    t.text, t.line, t.col
                )
                .into(),
            ));
        };
        prop_assert!(
            row < lines.len(),
            "token {:?} claims line {} of {}",
            t.text,
            t.line,
            lines.len()
        );
        // Re-read the token's characters from the span, crossing line
        // boundaries for multi-line literals (raw strings).
        let mut at_row = row;
        let mut at_col = col;
        for expect in t.text.chars() {
            let actual = loop {
                match lines.get(at_row).and_then(|l| l.get(at_col)) {
                    Some(&c) => break Some(c),
                    None if at_row + 1 < lines.len() && at_col == lines[at_row].len() => {
                        // Past end-of-line: the next source char is '\n'.
                        break Some('\n');
                    }
                    None => break None,
                }
            };
            prop_assert_eq!(
                actual,
                Some(expect),
                "token {:?} at {}:{} diverges from source",
                &t.text,
                t.line,
                t.col
            );
            if actual == Some('\n') {
                at_row += 1;
                at_col = 0;
            } else {
                at_col += 1;
            }
        }
    }
    Ok(())
}

/// Runs the full rule pipeline over `src` as if it were a scoped file:
/// lexing, allow-annotation parsing and every token rule. The property is
/// simply "no panic, sane findings".
fn scan_everything(src: &str) -> Result<(), TestCaseError> {
    let mut rules = rules_for("crates/sim/src/soup.rs");
    rules.push(RuleId::M1);
    let findings = scan_source("crates/sim/src/soup.rs", src, &rules);
    for f in &findings {
        prop_assert!(f.line >= 1, "finding with zero line: {}", f.render());
    }
    Ok(())
}

proptest! {
    /// Raw byte soup: lexing must not panic and spans must round-trip.
    #[test]
    fn lexer_survives_byte_soup(src in byte_soup()) {
        assert_spans_round_trip(&src)?;
    }

    /// Structured fragments glued together: half-formed Rust is the lexer's
    /// worst case (prefixes like `r#`, `b'`, `/*` decide between arms).
    #[test]
    fn lexer_survives_fragment_salad(parts in vec(fragment(), 0..24)) {
        let src = parts.concat();
        assert_spans_round_trip(&src)?;
    }

    /// Lexing is a pure function: same input, same tokens and comments.
    #[test]
    fn lexing_is_deterministic(parts in vec(fragment(), 0..16)) {
        let src = parts.concat();
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(format!("{:?}", a.tokens), format!("{:?}", b.tokens));
        prop_assert_eq!(format!("{:?}", a.comments), format!("{:?}", b.comments));
    }

    /// Arbitrarily deep comment nesting collapses to one comment and never
    /// swallows the code after the matched close.
    #[test]
    fn nested_block_comments_balance(depth in 1usize..24) {
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/* x ");
        }
        for _ in 0..depth {
            src.push_str(" y */");
        }
        src.push_str(" sentinel");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.comments.len(), 1, "nesting depth {}", depth);
        prop_assert!(lexed.tokens.iter().any(|t| t.is_ident("sentinel")));
        assert_spans_round_trip(&src)?;
    }

    /// Raw strings with any hash depth swallow embedded quotes and smaller
    /// terminators; the sentinel after the real terminator still lexes.
    #[test]
    fn raw_strings_swallow_lesser_terminators(
        hashes in 1usize..8,
        body_bytes in vec(any::<u8>(), 0..32),
    ) {
        const ALPHABET: &[u8] = b"abcz\" # ";
        let body: String = body_bytes
            .iter()
            .map(|b| ALPHABET[*b as usize % ALPHABET.len()] as char)
            .collect();
        let guard = "#".repeat(hashes);
        // Strip any accidental real terminator from the body.
        let terminator = format!("\"{guard}");
        let body = body.replace(&terminator, "");
        let src = format!("let s = r{guard}\"{body}\"{guard}; sentinel");
        let lexed = lex(&src);
        prop_assert_eq!(
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
        prop_assert!(lexed.tokens.iter().any(|t| t.is_ident("sentinel")));
        assert_spans_round_trip(&src)?;
    }

    /// Lifetimes never lex as char literals regardless of the identifier,
    /// and an adjacent real char literal still does.
    #[test]
    fn lifetimes_are_not_char_literals(name_bytes in vec(any::<u8>(), 1..12)) {
        const ALPHABET: &[u8] = b"abcxyz_059";
        let name: String = std::iter::once('l')
            .chain(
                name_bytes
                    .iter()
                    .map(|b| ALPHABET[*b as usize % ALPHABET.len()] as char),
            )
            .collect();
        let src = format!("fn f<'{name}>(x: &'{name} u8) {{ let c = 'q'; }}");
        let lexed = lex(&src);
        prop_assert_eq!(
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2,
            "lifetime '{}' mislexed", name
        );
        prop_assert_eq!(
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
    }

    /// The whole rule pipeline — lexer, allow parser, token rules — never
    /// panics on byte soup and never reports a line 0.
    #[test]
    fn rule_pipeline_survives_byte_soup(src in byte_soup()) {
        scan_everything(&src)?;
    }

    /// Same, over fragment salad (which, unlike soup, actually trips rules
    /// and allow annotations).
    #[test]
    fn rule_pipeline_survives_fragment_salad(parts in vec(fragment(), 0..24)) {
        scan_everything(&parts.concat())?;
    }

    /// The semantic model builder and concurrency analysis never panic on
    /// torn input either (they walk the same token stream).
    #[test]
    fn semantic_analysis_survives_fragment_salad(parts in vec(fragment(), 0..24)) {
        let files = vec![("crates/sim/src/soup.rs".to_string(), parts.concat())];
        let ws = roia_lint::model::build(&files);
        let analysis = roia_lint::conc::analyze(&ws);
        for f in &analysis.findings {
            prop_assert!(f.line >= 1, "finding with zero line: {}", f.render());
        }
    }
}
