//! The in-process message bus connecting servers and clients.
//!
//! The [`Bus`] plays the role of the IP network between RTF processes. Every
//! participant registers an [`Endpoint`]; messages travel over directed
//! links whose latency/bandwidth behaviour comes from [`crate::LinkSpec`].
//! Zero-latency links (the default) deliver synchronously on `send`, so a
//! lock-step simulation needs no extra pumping; links with latency require
//! the driver to call [`Bus::advance`] once per simulation tick.
//!
//! A lock-step driver that ticks nodes concurrently instead calls
//! [`Bus::pause_delivery`] before the phase and [`Bus::resume_delivery`]
//! after it: while paused, sends stage per-link (preserving each sender's
//! program order) and nothing reaches an inbox; `resume_delivery` then
//! flushes the staged links in ascending `(from, to)` key order. Because
//! every directed link has exactly one sender, the resulting inbox order is
//! a pure function of the traffic itself — independent of thread
//! interleaving — which is what makes a parallel tick byte-identical to a
//! serial one.

// lint: allow-file(hot_lock, "the coarse bus mutex is the simulated network itself: every critical section is a short queue push/pop with no I/O or allocation bursts, and the pause/resume staging protocol is what gives parallel ticks their deterministic delivery order")
use crate::link::{LinkSpec, LinkState};
use crate::NodeId;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A delivered network message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Opaque payload (serialized by `rtf-core`'s wire format).
    pub payload: Bytes,
}

/// Errors surfaced by the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination node is not registered (or was shut down).
    UnknownNode(NodeId),
    /// The source node is not registered.
    UnknownSender(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown destination {n}"),
            NetError::UnknownSender(n) => write!(f, "unknown sender {n}"),
        }
    }
}

impl std::error::Error for NetError {}

struct NodeEntry {
    label: String,
    tx: Sender<Message>,
}

#[derive(Default)]
struct BusInner {
    next_id: u32,
    now_tick: u64,
    nodes: BTreeMap<NodeId, NodeEntry>,
    /// Ordered so [`Bus::advance`] flushes links in a stable order — with
    /// jittered links, cross-link delivery order is observable downstream.
    links: BTreeMap<(NodeId, NodeId), LinkState>,
    default_spec: LinkSpec,
    /// Seed mixed into every link's fault generator.
    fault_seed: u64,
    /// Unordered node pairs that cannot reach each other (stored with the
    /// smaller id first).
    partitions: BTreeSet<(NodeId, NodeId)>,
    /// Nodes cut off from everyone (a network-isolated machine).
    isolated: BTreeSet<NodeId>,
    /// While `true`, `send` stages traffic on its link without flushing;
    /// [`Bus::resume_delivery`] flushes in key order.
    deferred: bool,
    /// Links that may hold undelivered traffic. Kept ordered so deferred
    /// flushes and `advance` walk links in a stable order, and so both skip
    /// the (potentially many) idle links entirely.
    pending: BTreeSet<(NodeId, NodeId)>,
}

/// Normalizes an unordered node pair for the partition set.
fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// Derives a per-link fault seed from the bus seed and the link's ends
/// (SplitMix64 finalizer over the mixed ids).
fn link_seed(fault_seed: u64, from: NodeId, to: NodeId) -> u64 {
    let mut z = fault_seed ^ ((from.0 as u64) << 32) ^ (to.0 as u64) ^ 0x5851_F42D_4C95_7F2D;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BusInner {
    /// Whether traffic `from → to` is currently blackholed.
    fn blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.isolated.contains(&from)
            || self.isolated.contains(&to)
            || self.partitions.contains(&pair_key(from, to))
    }
    /// Delivers every message due on a link into its destination inbox.
    fn flush_link(&mut self, key: (NodeId, NodeId)) {
        let now = self.now_tick;
        let (due, emptied) = match self.links.get_mut(&key) {
            Some(link) => {
                let due = link.drain_due(now);
                (due, link.in_flight() == 0)
            }
            None => return,
        };
        if emptied {
            self.pending.remove(&key);
        }
        // A destination may have unregistered (or dropped its inbox) while
        // the message was in flight — a real socket close eats those bytes.
        // The message is still lost traffic, so it must show up in the
        // link's drop counters rather than vanish silently.
        let mut lost_msgs = 0u64;
        let mut lost_bytes = 0u64;
        for msg in due {
            let size = msg.payload.len() as u64;
            let delivered = match self.nodes.get(&msg.to) {
                Some(entry) => entry.tx.send(msg).is_ok(),
                None => false,
            };
            if !delivered {
                lost_msgs += 1;
                lost_bytes += size;
            }
        }
        if lost_msgs > 0 {
            if let Some(link) = self.links.get_mut(&key) {
                link.messages_dropped += lost_msgs;
                // `drain_due` pre-counted these as delivered; undo that.
                link.bytes_delivered = link.bytes_delivered.saturating_sub(lost_bytes);
            }
        }
    }
}

/// The shared message bus. Cheap to clone; all clones refer to the same
/// network.
#[derive(Clone, Default)]
pub struct Bus {
    inner: Arc<Mutex<BusInner>>,
}

impl Bus {
    /// Creates an empty bus whose links default to [`LinkSpec::IDEAL`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bus whose unconfigured links use `default_spec`.
    pub fn with_default_link(default_spec: LinkSpec) -> Self {
        let bus = Self::new();
        bus.inner.lock().default_spec = default_spec;
        bus
    }

    /// Registers a new endpoint with a human-readable label.
    pub fn register(&self, label: &str) -> Endpoint {
        let (tx, rx) = unbounded();
        let mut inner = self.inner.lock();
        let id = NodeId(inner.next_id);
        inner.next_id += 1;
        inner.nodes.insert(
            id,
            NodeEntry {
                label: label.to_owned(),
                tx,
            },
        );
        Endpoint {
            id,
            rx,
            bus: self.clone(),
        }
    }

    /// Removes an endpoint; in-flight messages to it are dropped on arrival.
    pub fn unregister(&self, id: NodeId) {
        self.inner.lock().nodes.remove(&id);
    }

    /// The label an endpoint registered with.
    pub fn label(&self, id: NodeId) -> Option<String> {
        self.inner.lock().nodes.get(&id).map(|e| e.label.clone())
    }

    /// Number of registered endpoints.
    pub fn node_count(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Configures the directed link `from → to`.
    pub fn set_link(&self, from: NodeId, to: NodeId, spec: LinkSpec) {
        let mut inner = self.inner.lock();
        let seed = link_seed(inner.fault_seed, from, to);
        inner
            .links
            .insert((from, to), LinkState::new_seeded(spec, seed));
    }

    /// Sets the spec new (unconfigured) links will be created with.
    pub fn set_default_link(&self, spec: LinkSpec) {
        self.inner.lock().default_spec = spec;
    }

    /// Sets the seed from which per-link fault generators derive. Existing
    /// links are re-seeded; call before injecting faults for reproducible
    /// loss/jitter patterns.
    pub fn set_fault_seed(&self, seed: u64) {
        let mut inner = self.inner.lock();
        inner.fault_seed = seed;
        let keys: Vec<(NodeId, NodeId)> = inner.links.keys().copied().collect();
        for key in keys {
            let s = link_seed(seed, key.0, key.1);
            if let Some(link) = inner.links.get_mut(&key) {
                link.reseed(s);
            }
        }
    }

    /// Applies a drop probability and jitter window to EVERY link — the
    /// ones already carved out (keeping their latency/bandwidth) and, via
    /// the default spec, all links created later.
    pub fn set_link_faults(&self, drop_probability: f64, jitter_ticks: u32) {
        let mut inner = self.inner.lock();
        inner.default_spec = inner
            .default_spec
            .with_faults(drop_probability, jitter_ticks);
        for link in inner.links.values_mut() {
            let spec = link.spec().with_faults(drop_probability, jitter_ticks);
            link.set_spec(spec);
        }
    }

    /// Installs or heals a bidirectional partition between `a` and `b`.
    /// Partitioned traffic is blackholed: `send` succeeds (the sender
    /// cannot tell) but nothing arrives.
    pub fn set_partition(&self, a: NodeId, b: NodeId, active: bool) {
        let mut inner = self.inner.lock();
        if active {
            inner.partitions.insert(pair_key(a, b));
        } else {
            inner.partitions.remove(&pair_key(a, b));
        }
    }

    /// Cuts a node off from (or reconnects it to) everyone — the
    /// whole-machine variant of [`Bus::set_partition`].
    pub fn set_isolated(&self, node: NodeId, active: bool) {
        let mut inner = self.inner.lock();
        if active {
            inner.isolated.insert(node);
        } else {
            inner.isolated.remove(&node);
        }
    }

    /// Whether a node is currently isolated.
    pub fn is_isolated(&self, node: NodeId) -> bool {
        self.inner.lock().isolated.contains(&node)
    }

    /// Sends `payload` from `from` to `to` over the configured link
    /// (creating one with the default spec on first use).
    pub fn send(&self, from: NodeId, to: NodeId, payload: Bytes) -> Result<(), NetError> {
        let mut inner = self.inner.lock();
        if !inner.nodes.contains_key(&from) {
            return Err(NetError::UnknownSender(from));
        }
        if !inner.nodes.contains_key(&to) {
            return Err(NetError::UnknownNode(to));
        }
        let key = (from, to);
        let default_spec = inner.default_spec;
        let seed = link_seed(inner.fault_seed, from, to);
        let now = inner.now_tick;
        let blocked = inner.blocked(from, to);
        let link = inner
            .links
            .entry(key)
            .or_insert_with(|| LinkState::new_seeded(default_spec, seed));
        if blocked {
            link.drop_at_send(payload.len() as u64);
            return Ok(());
        }
        link.enqueue(now, Message { from, to, payload });
        inner.pending.insert(key);
        if !inner.deferred {
            // Zero-latency traffic is deliverable right away.
            inner.flush_link(key);
        }
        Ok(())
    }

    /// Stages subsequent sends on their links without delivering anything.
    /// Per-link send order is preserved; cross-link delivery order is
    /// decided by [`Bus::resume_delivery`], not by call interleaving — the
    /// contract a concurrent lock-step driver relies on.
    pub fn pause_delivery(&self) {
        self.inner.lock().deferred = true;
    }

    /// Ends a [`Bus::pause_delivery`] window and flushes every staged link
    /// in ascending `(from, to)` order.
    pub fn resume_delivery(&self) {
        let mut inner = self.inner.lock();
        inner.deferred = false;
        let keys: Vec<(NodeId, NodeId)> = inner.pending.iter().copied().collect();
        for key in keys {
            inner.flush_link(key);
        }
    }

    /// Advances simulated time to `now_tick` and delivers everything due on
    /// every link. Only needed when links have latency or bandwidth caps.
    pub fn advance(&self, now_tick: u64) {
        let mut inner = self.inner.lock();
        inner.now_tick = now_tick;
        let keys: Vec<(NodeId, NodeId)> = inner.pending.iter().copied().collect();
        for key in keys {
            inner.flush_link(key);
        }
    }

    /// Current simulated tick of the bus clock.
    pub fn now(&self) -> u64 {
        self.inner.lock().now_tick
    }

    /// A snapshot of the per-link traffic counters.
    pub fn stats(&self) -> TrafficStats {
        let inner = self.inner.lock();
        let mut per_link = BTreeMap::new();
        for (key, link) in &inner.links {
            per_link.insert(
                *key,
                LinkTraffic {
                    bytes_sent: link.bytes_sent,
                    bytes_delivered: link.bytes_delivered,
                    messages_sent: link.messages_sent,
                    messages_dropped: link.messages_dropped,
                    in_flight: link.in_flight() as u64,
                },
            );
        }
        TrafficStats { per_link }
    }
}

/// Traffic counters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkTraffic {
    /// Payload bytes ever sent on the link.
    pub bytes_sent: u64,
    /// Payload bytes delivered to the destination inbox.
    pub bytes_delivered: u64,
    /// Messages ever sent on the link.
    pub messages_sent: u64,
    /// Messages lost to drop probability, partitions, isolation or a
    /// destination that unregistered while they were in flight.
    pub messages_dropped: u64,
    /// Messages currently in flight.
    pub in_flight: u64,
}

/// Aggregated traffic statistics for the whole bus.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    per_link: BTreeMap<(NodeId, NodeId), LinkTraffic>,
}

impl TrafficStats {
    /// Counters for the directed link `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkTraffic {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Total payload bytes sent across all links.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_link.values().map(|l| l.bytes_sent).sum()
    }

    /// Total messages sent across all links.
    pub fn total_messages(&self) -> u64 {
        self.per_link.values().map(|l| l.messages_sent).sum()
    }

    /// Total messages lost across all links (faults, partitions, isolation).
    pub fn total_dropped(&self) -> u64 {
        self.per_link.values().map(|l| l.messages_dropped).sum()
    }

    /// Bytes sent from `node` to anyone (the paper's \[10\] observed this
    /// outgoing direction dominating in MMORPGs).
    pub fn bytes_out_of(&self, node: NodeId) -> u64 {
        self.per_link
            .iter()
            .filter(|((from, _), _)| *from == node)
            .map(|(_, l)| l.bytes_sent)
            .sum()
    }

    /// Bytes sent to `node` from anyone.
    pub fn bytes_into(&self, node: NodeId) -> u64 {
        self.per_link
            .iter()
            .filter(|((_, to), _)| *to == node)
            .map(|(_, l)| l.bytes_sent)
            .sum()
    }
}

/// One node's handle on the bus: its identity plus its inbox.
pub struct Endpoint {
    id: NodeId,
    rx: Receiver<Message>,
    bus: Bus,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends from this endpoint.
    pub fn send(&self, to: NodeId, payload: Bytes) -> Result<(), NetError> {
        self.bus.send(self.id, to, payload)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        match self.rx.try_recv() {
            Ok(m) => Some(m),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a timeout (threaded mode; requires zero-latency
    /// links or an external `advance` pump).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Message> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains every message currently in the inbox.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Drains the inbox into a caller-owned buffer (not cleared first), so
    /// per-tick callers can reuse one allocation instead of building a
    /// fresh `Vec` every tick.
    pub fn drain_into(&self, out: &mut Vec<Message>) {
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_unique_ids() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        assert_ne!(a.id(), b.id());
        assert_eq!(bus.node_count(), 2);
        assert_eq!(bus.label(a.id()).as_deref(), Some("a"));
    }

    #[test]
    fn zero_latency_send_is_synchronous() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        a.send(b.id(), Bytes::from_static(b"hi")).unwrap();
        assert_eq!(b.try_recv().unwrap().payload, Bytes::from_static(b"hi"));
    }

    #[test]
    fn latency_link_requires_advance() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.set_link(a.id(), b.id(), LinkSpec::with_latency(2));
        a.send(b.id(), Bytes::from_static(b"later")).unwrap();
        assert!(b.try_recv().is_none());
        bus.advance(1);
        assert!(b.try_recv().is_none());
        bus.advance(2);
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn unknown_destination_errors() {
        let bus = Bus::new();
        let a = bus.register("a");
        let err = a.send(NodeId(999), Bytes::new()).unwrap_err();
        assert_eq!(err, NetError::UnknownNode(NodeId(999)));
    }

    #[test]
    fn unknown_sender_errors() {
        let bus = Bus::new();
        let a = bus.register("a");
        let err = bus.send(NodeId(999), a.id(), Bytes::new()).unwrap_err();
        assert_eq!(err, NetError::UnknownSender(NodeId(999)));
    }

    #[test]
    fn unregister_stops_delivery() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.unregister(b.id());
        let err = a.send(b.id(), Bytes::new()).unwrap_err();
        assert_eq!(err, NetError::UnknownNode(b.id()));
    }

    #[test]
    fn in_order_delivery() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        for i in 0u8..10 {
            a.send(b.id(), Bytes::from(vec![i])).unwrap();
        }
        let got: Vec<u8> = b.drain().iter().map(|m| m.payload[0]).collect();
        assert_eq!(got, (0u8..10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        a.send(b.id(), Bytes::from(vec![0u8; 100])).unwrap();
        a.send(b.id(), Bytes::from(vec![0u8; 50])).unwrap();
        b.send(a.id(), Bytes::from(vec![0u8; 7])).unwrap();
        let stats = bus.stats();
        assert_eq!(stats.link(a.id(), b.id()).bytes_sent, 150);
        assert_eq!(stats.link(a.id(), b.id()).messages_sent, 2);
        assert_eq!(stats.total_bytes_sent(), 157);
        assert_eq!(stats.bytes_out_of(a.id()), 150);
        assert_eq!(stats.bytes_into(a.id()), 7);
    }

    #[test]
    fn partition_blackholes_both_directions() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.set_partition(a.id(), b.id(), true);
        a.send(b.id(), Bytes::from_static(b"x")).unwrap();
        b.send(a.id(), Bytes::from_static(b"y")).unwrap();
        assert!(
            b.try_recv().is_none(),
            "partitioned traffic must not arrive"
        );
        assert!(a.try_recv().is_none());
        assert_eq!(bus.stats().total_dropped(), 2);
        // Healing the partition restores delivery.
        bus.set_partition(a.id(), b.id(), false);
        a.send(b.id(), Bytes::from_static(b"z")).unwrap();
        assert_eq!(&b.try_recv().unwrap().payload[..], b"z");
    }

    #[test]
    fn isolated_node_reaches_no_one() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        let c = bus.register("c");
        bus.set_isolated(b.id(), true);
        assert!(bus.is_isolated(b.id()));
        a.send(b.id(), Bytes::from_static(b"in")).unwrap();
        b.send(c.id(), Bytes::from_static(b"out")).unwrap();
        a.send(c.id(), Bytes::from_static(b"ok")).unwrap();
        assert!(b.try_recv().is_none());
        assert_eq!(c.drain().len(), 1, "unrelated traffic still flows");
        bus.set_isolated(b.id(), false);
        a.send(b.id(), Bytes::from_static(b"back")).unwrap();
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn link_faults_apply_to_existing_links() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        // Carve out the link fault-free first.
        a.send(b.id(), Bytes::from_static(b"pre")).unwrap();
        assert!(b.try_recv().is_some());
        bus.set_fault_seed(0xBEEF);
        bus.set_link_faults(1.0, 0);
        for _ in 0..10 {
            a.send(b.id(), Bytes::from_static(b"lost")).unwrap();
        }
        assert!(b.try_recv().is_none(), "p=1 loses everything");
        assert_eq!(bus.stats().link(a.id(), b.id()).messages_dropped, 10);
        bus.set_link_faults(0.0, 0);
        a.send(b.id(), Bytes::from_static(b"post")).unwrap();
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn paused_delivery_holds_traffic_until_resume() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.pause_delivery();
        a.send(b.id(), Bytes::from_static(b"held")).unwrap();
        assert!(b.try_recv().is_none(), "paused traffic must not arrive");
        bus.resume_delivery();
        assert_eq!(&b.try_recv().unwrap().payload[..], b"held");
        // After resume the bus is synchronous again.
        a.send(b.id(), Bytes::from_static(b"sync")).unwrap();
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn resume_flushes_links_in_key_order_not_send_order() {
        let bus = Bus::new();
        let lo = bus.register("lo"); // NodeId(0)
        let hi = bus.register("hi"); // NodeId(1)
        let dst = bus.register("dst"); // NodeId(2)
        bus.pause_delivery();
        // Send from the higher id first: under synchronous delivery the
        // inbox would read hi-then-lo; the deferred flush must order by
        // link key instead, independent of call interleaving.
        hi.send(dst.id(), Bytes::from_static(b"hi")).unwrap();
        lo.send(dst.id(), Bytes::from_static(b"lo")).unwrap();
        bus.resume_delivery();
        let got: Vec<NodeId> = dst.drain().iter().map(|m| m.from).collect();
        assert_eq!(got, vec![lo.id(), hi.id()]);
    }

    #[test]
    fn paused_sends_preserve_per_link_order() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.pause_delivery();
        for i in 0u8..10 {
            a.send(b.id(), Bytes::from(vec![i])).unwrap();
        }
        bus.resume_delivery();
        let got: Vec<u8> = b.drain().iter().map(|m| m.payload[0]).collect();
        assert_eq!(got, (0u8..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_into_reuses_buffer() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        let mut buf = Vec::with_capacity(4);
        a.send(b.id(), Bytes::from_static(b"one")).unwrap();
        b.drain_into(&mut buf);
        assert_eq!(buf.len(), 1);
        buf.clear();
        let cap = buf.capacity();
        a.send(b.id(), Bytes::from_static(b"two")).unwrap();
        b.drain_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn threaded_send_and_blocking_recv() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        let (a_id, b_id) = (a.id(), b.id());
        let bus2 = bus.clone();
        let handle = std::thread::spawn(move || {
            bus2.send(a_id, b_id, Bytes::from_static(b"cross-thread"))
                .unwrap();
        });
        let msg = b
            .recv_timeout(std::time::Duration::from_secs(1))
            .expect("delivered");
        assert_eq!(&msg.payload[..], b"cross-thread");
        handle.join().unwrap();
    }

    #[test]
    fn unregister_midflight_counts_as_dropped() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.set_link(a.id(), b.id(), LinkSpec::with_latency(2));
        a.send(b.id(), Bytes::from(vec![0u8; 16])).unwrap();
        bus.unregister(b.id());
        bus.advance(2);
        let link = bus.stats().link(a.id(), b.id());
        assert_eq!(link.messages_dropped, 1, "in-flight loss must be counted");
        assert_eq!(link.bytes_delivered, 0, "nothing reached an inbox");
        assert_eq!(link.in_flight, 0);
        assert_eq!(bus.stats().total_dropped(), 1);
    }

    #[test]
    fn bandwidth_cap_applies_across_advances() {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.set_link(a.id(), b.id(), LinkSpec::with_bandwidth(10));
        // Three 8-byte messages: one per tick under a 10-byte/tick cap.
        for _ in 0..3 {
            a.send(b.id(), Bytes::from(vec![0u8; 8])).unwrap();
        }
        assert_eq!(b.drain().len(), 1, "send flushes only the first");
        bus.advance(1);
        assert_eq!(b.drain().len(), 1);
        bus.advance(2);
        assert_eq!(b.drain().len(), 1);
    }
}
