//! # rtf-net — in-process simulated network transport
//!
//! The Real-Time Framework runs application servers and clients as
//! distributed processes connected by TCP/UDP. This crate provides the
//! equivalent substrate for an in-process reproduction: a message [`bus::Bus`]
//! with per-link latency and bandwidth modelling ([`link`]), byte accounting
//! for traffic analysis, and endpoints usable both from a lock-step
//! simulation (`try_recv`/`drain` after `advance`) and from real threads
//! (blocking `recv`).
//!
//! Delivery semantics: messages between two nodes are delivered reliably and
//! in order (like RTF's TCP connections). A link may add latency measured in
//! simulation ticks and may cap bytes per tick; excess traffic queues on the
//! link, never dropping.
//!
//! ```
//! use rtf_net::Bus;
//! use bytes::Bytes;
//!
//! let bus = Bus::new();
//! let a = bus.register("server-a");
//! let b = bus.register("server-b");
//!
//! bus.send(a.id(), b.id(), Bytes::from_static(b"state update")).unwrap();
//! let msg = b.try_recv().expect("zero-latency default link delivers immediately");
//! assert_eq!(&msg.payload[..], b"state update");
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod link;

pub use bus::{Bus, Endpoint, Message, NetError, TrafficStats};
pub use bytes::Bytes;
pub use link::{LinkSpec, LinkState};

/// Identifier of a bus endpoint (application server or client connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}
