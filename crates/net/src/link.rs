//! Per-link latency and bandwidth modelling.
//!
//! A link connects an ordered pair of nodes. Its [`LinkSpec`] describes
//! latency (in simulation ticks) and an optional bandwidth cap (bytes per
//! tick). [`LinkState`] is the runtime queue that enforces the cap: traffic
//! beyond the per-tick budget stays queued and drains on subsequent ticks,
//! which is how a saturated server uplink behaves in the real deployments
//! the paper targets.

use crate::bus::Message;
use std::collections::VecDeque;

/// Static description of a link's quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub struct LinkSpec {
    /// Delivery delay in whole simulation ticks (0 = same tick).
    pub latency_ticks: u32,
    /// Maximum payload bytes leaving the link per tick; `None` = unlimited.
    pub bytes_per_tick: Option<u64>,
}


impl LinkSpec {
    /// An ideal link: no latency, no bandwidth cap.
    pub const IDEAL: LinkSpec = LinkSpec { latency_ticks: 0, bytes_per_tick: None };

    /// A link with fixed latency and unlimited bandwidth.
    pub fn with_latency(latency_ticks: u32) -> Self {
        Self { latency_ticks, bytes_per_tick: None }
    }

    /// A link with a bandwidth cap and no added latency.
    pub fn with_bandwidth(bytes_per_tick: u64) -> Self {
        Self { latency_ticks: 0, bytes_per_tick: Some(bytes_per_tick) }
    }
}

/// A message staged on a link, due for delivery at `due_tick`.
#[derive(Debug, Clone)]
struct Staged {
    due_tick: u64,
    message: Message,
}

/// Runtime state of one directed link: the in-flight queue plus byte
/// accounting.
#[derive(Debug, Default)]
pub struct LinkState {
    spec: LinkSpec,
    queue: VecDeque<Staged>,
    /// The tick the bandwidth budget below belongs to.
    budget_tick: u64,
    /// Bytes still deliverable in `budget_tick` under the bandwidth cap.
    budget_left: u64,
    /// Messages delivered in `budget_tick` (for the oversize-passes-alone rule).
    delivered_this_tick: u64,
    /// Total payload bytes ever enqueued on this link.
    pub bytes_sent: u64,
    /// Total payload bytes ever delivered from this link.
    pub bytes_delivered: u64,
    /// Total messages ever enqueued.
    pub messages_sent: u64,
}

impl LinkState {
    /// Creates the runtime state for a link with the given spec.
    pub fn new(spec: LinkSpec) -> Self {
        Self { spec, ..Self::default() }
    }

    /// The link's spec.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Stages a message sent at `now_tick`.
    pub fn enqueue(&mut self, now_tick: u64, message: Message) {
        self.bytes_sent += message.payload.len() as u64;
        self.messages_sent += 1;
        let due_tick = now_tick + self.spec.latency_ticks as u64;
        self.queue.push_back(Staged { due_tick, message });
    }

    /// Pops every message deliverable at `now_tick`, honouring the
    /// bandwidth cap. Delivery is strictly in-order: a message blocked by
    /// the cap also blocks everything behind it (TCP-like semantics). The
    /// per-tick byte budget persists across calls within the same tick, so
    /// eager flushing after each send cannot exceed the cap.
    pub fn drain_due(&mut self, now_tick: u64) -> Vec<Message> {
        if now_tick != self.budget_tick || (self.budget_left == 0 && self.delivered_this_tick == 0)
        {
            self.budget_tick = now_tick;
            self.budget_left = self.spec.bytes_per_tick.unwrap_or(u64::MAX);
            self.delivered_this_tick = 0;
        }
        let mut out = Vec::new();
        while let Some(head) = self.queue.front() {
            if head.due_tick > now_tick {
                break;
            }
            let size = head.message.payload.len() as u64;
            // Always let at least one message through per tick, so a single
            // payload larger than the cap cannot wedge the link forever.
            if size > self.budget_left && self.delivered_this_tick > 0 {
                break;
            }
            self.budget_left = self.budget_left.saturating_sub(size);
            self.delivered_this_tick += 1;
            let staged = self.queue.pop_front().expect("front exists");
            self.bytes_delivered += size;
            out.push(staged.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use bytes::Bytes;

    fn msg(bytes: usize) -> Message {
        Message { from: NodeId(0), to: NodeId(1), payload: Bytes::from(vec![0u8; bytes]) }
    }

    #[test]
    fn zero_latency_delivers_same_tick() {
        let mut link = LinkState::new(LinkSpec::IDEAL);
        link.enqueue(5, msg(10));
        assert_eq!(link.drain_due(5).len(), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut link = LinkState::new(LinkSpec::with_latency(3));
        link.enqueue(10, msg(10));
        assert!(link.drain_due(12).is_empty());
        assert_eq!(link.drain_due(13).len(), 1);
    }

    #[test]
    fn bandwidth_cap_spreads_delivery_over_ticks() {
        let mut link = LinkState::new(LinkSpec::with_bandwidth(100));
        for _ in 0..3 {
            link.enqueue(0, msg(60)); // 180 bytes total, 100/tick
        }
        assert_eq!(link.drain_due(0).len(), 1, "60 fits, 120 would not");
        assert_eq!(link.drain_due(1).len(), 1);
        assert_eq!(link.drain_due(2).len(), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn oversized_message_passes_alone() {
        let mut link = LinkState::new(LinkSpec::with_bandwidth(10));
        link.enqueue(0, msg(100));
        link.enqueue(0, msg(5));
        let first = link.drain_due(0);
        assert_eq!(first.len(), 1, "oversized head must not wedge the link");
        assert_eq!(first[0].payload.len(), 100);
    }

    #[test]
    fn in_order_delivery_under_cap() {
        let mut link = LinkState::new(LinkSpec::with_bandwidth(50));
        let mut big = msg(60);
        big.payload = Bytes::from(vec![1u8; 60]);
        let mut small = msg(5);
        small.payload = Bytes::from(vec![2u8; 5]);
        link.enqueue(0, big);
        link.enqueue(0, small);
        // Tick 0: only the big one (always-one rule); the small one must NOT
        // overtake it even though it would fit the leftover budget.
        let t0 = link.drain_due(0);
        assert_eq!(t0.len(), 1);
        assert_eq!(t0[0].payload[0], 1);
        let t1 = link.drain_due(1);
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].payload[0], 2);
    }

    #[test]
    fn byte_accounting() {
        let mut link = LinkState::new(LinkSpec::IDEAL);
        link.enqueue(0, msg(10));
        link.enqueue(0, msg(20));
        assert_eq!(link.bytes_sent, 30);
        assert_eq!(link.messages_sent, 2);
        link.drain_due(0);
        assert_eq!(link.bytes_delivered, 30);
    }

    #[test]
    fn drain_before_send_is_empty() {
        let mut link = LinkState::new(LinkSpec::IDEAL);
        assert!(link.drain_due(100).is_empty());
    }
}
