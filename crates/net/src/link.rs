//! Per-link latency, bandwidth and fault modelling.
//!
//! A link connects an ordered pair of nodes. Its [`LinkSpec`] describes
//! latency (in simulation ticks), an optional bandwidth cap (bytes per
//! tick), and the link's fault behaviour: a drop probability and a jitter
//! window. [`LinkState`] is the runtime queue that enforces the cap: traffic
//! beyond the per-tick budget stays queued and drains on subsequent ticks,
//! which is how a saturated server uplink behaves in the real deployments
//! the paper targets. Faults are sampled from a per-link deterministic
//! generator seeded by the bus, so a given seed always loses and delays the
//! same messages.

use crate::bus::Message;
use std::collections::VecDeque;

/// Static description of a link's quality.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkSpec {
    /// Delivery delay in whole simulation ticks (0 = same tick).
    pub latency_ticks: u32,
    /// Maximum payload bytes leaving the link per tick; `None` = unlimited.
    pub bytes_per_tick: Option<u64>,
    /// Probability in `[0, 1]` that a message staged on this link is
    /// silently dropped (0 = reliable).
    pub drop_probability: f64,
    /// Maximum extra delivery delay in ticks, sampled uniformly per
    /// message (0 = no jitter). Delivery stays in-order: a delayed head
    /// of line also delays everything behind it (TCP-like semantics).
    pub jitter_ticks: u32,
}

impl LinkSpec {
    /// An ideal link: no latency, no bandwidth cap, no faults.
    pub const IDEAL: LinkSpec = LinkSpec {
        latency_ticks: 0,
        bytes_per_tick: None,
        drop_probability: 0.0,
        jitter_ticks: 0,
    };

    /// A link with fixed latency and unlimited bandwidth.
    pub fn with_latency(latency_ticks: u32) -> Self {
        Self {
            latency_ticks,
            ..Self::IDEAL
        }
    }

    /// A link with a bandwidth cap and no added latency.
    pub fn with_bandwidth(bytes_per_tick: u64) -> Self {
        Self {
            bytes_per_tick: Some(bytes_per_tick),
            ..Self::IDEAL
        }
    }

    /// A lossy link: drops each message with probability `drop_probability`.
    pub fn lossy(drop_probability: f64) -> Self {
        Self {
            drop_probability,
            ..Self::IDEAL
        }
    }

    /// Returns this spec with the fault parameters replaced.
    pub fn with_faults(mut self, drop_probability: f64, jitter_ticks: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1]"
        );
        self.drop_probability = drop_probability;
        self.jitter_ticks = jitter_ticks;
        self
    }
}

/// A message staged on a link, due for delivery at `due_tick`.
#[derive(Debug, Clone)]
struct Staged {
    due_tick: u64,
    message: Message,
}

/// Runtime state of one directed link: the in-flight queue plus byte
/// accounting.
#[derive(Debug, Default)]
pub struct LinkState {
    spec: LinkSpec,
    queue: VecDeque<Staged>,
    /// The tick the bandwidth budget below belongs to.
    budget_tick: u64,
    /// Bytes still deliverable in `budget_tick` under the bandwidth cap.
    budget_left: u64,
    /// Messages delivered in `budget_tick` (for the oversize-passes-alone rule).
    delivered_this_tick: u64,
    /// Fault-sampling generator state (SplitMix64).
    rng: u64,
    /// Total payload bytes ever enqueued on this link.
    pub bytes_sent: u64,
    /// Total payload bytes ever delivered from this link.
    pub bytes_delivered: u64,
    /// Total messages ever enqueued.
    pub messages_sent: u64,
    /// Messages lost to drop probability, partitions, or a destination
    /// that unregistered while they were in flight.
    pub messages_dropped: u64,
}

impl LinkState {
    /// Creates the runtime state for a link with the given spec.
    pub fn new(spec: LinkSpec) -> Self {
        Self {
            spec,
            ..Self::default()
        }
    }

    /// Creates the runtime state with an explicit fault seed (links carved
    /// out of the same bus get distinct per-pair seeds, so fault patterns
    /// are independent but reproducible).
    pub fn new_seeded(spec: LinkSpec, seed: u64) -> Self {
        Self {
            spec,
            rng: seed,
            ..Self::default()
        }
    }

    /// The link's spec.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Replaces the spec; queued traffic keeps its original schedule.
    pub fn set_spec(&mut self, spec: LinkSpec) {
        self.spec = spec;
    }

    /// Re-seeds the fault generator.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = seed;
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 — dependency-free, passes through zero states fine.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Counts a message that was eaten before entering the queue (a
    /// partitioned or isolated destination behaves like an IP blackhole:
    /// the sender pays for the send, nothing arrives).
    pub fn drop_at_send(&mut self, payload_bytes: u64) {
        self.bytes_sent += payload_bytes;
        self.messages_sent += 1;
        self.messages_dropped += 1;
    }

    /// Stages a message sent at `now_tick`; it may be lost or delayed
    /// according to the spec's fault parameters.
    pub fn enqueue(&mut self, now_tick: u64, message: Message) {
        self.bytes_sent += message.payload.len() as u64;
        self.messages_sent += 1;
        if self.spec.drop_probability > 0.0 && self.next_f64() < self.spec.drop_probability {
            self.messages_dropped += 1;
            return;
        }
        let jitter = if self.spec.jitter_ticks > 0 {
            self.next_u64() % (self.spec.jitter_ticks as u64 + 1)
        } else {
            0
        };
        let due_tick = now_tick + self.spec.latency_ticks as u64 + jitter;
        self.queue.push_back(Staged { due_tick, message });
    }

    /// Pops every message deliverable at `now_tick`, honouring the
    /// bandwidth cap. Delivery is strictly in-order: a message blocked by
    /// the cap (or still jitter-delayed) also blocks everything behind it
    /// (TCP-like semantics). The per-tick byte budget persists across calls
    /// within the same tick, so eager flushing after each send cannot
    /// exceed the cap.
    pub fn drain_due(&mut self, now_tick: u64) -> Vec<Message> {
        if now_tick != self.budget_tick || (self.budget_left == 0 && self.delivered_this_tick == 0)
        {
            self.budget_tick = now_tick;
            self.budget_left = self.spec.bytes_per_tick.unwrap_or(u64::MAX);
            self.delivered_this_tick = 0;
        }
        let mut out = Vec::new();
        while let Some(head) = self.queue.front() {
            if head.due_tick > now_tick {
                break;
            }
            let size = head.message.payload.len() as u64;
            // Always let at least one message through per tick, so a single
            // payload larger than the cap cannot wedge the link forever.
            if size > self.budget_left && self.delivered_this_tick > 0 {
                break;
            }
            self.budget_left = self.budget_left.saturating_sub(size);
            self.delivered_this_tick += 1;
            let Some(staged) = self.queue.pop_front() else {
                break; // unreachable: front() above proved the queue non-empty
            };
            self.bytes_delivered += size;
            out.push(staged.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use bytes::Bytes;

    fn msg(bytes: usize) -> Message {
        Message {
            from: NodeId(0),
            to: NodeId(1),
            payload: Bytes::from(vec![0u8; bytes]),
        }
    }

    #[test]
    fn zero_latency_delivers_same_tick() {
        let mut link = LinkState::new(LinkSpec::IDEAL);
        link.enqueue(5, msg(10));
        assert_eq!(link.drain_due(5).len(), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn latency_delays_delivery() {
        let mut link = LinkState::new(LinkSpec::with_latency(3));
        link.enqueue(10, msg(10));
        assert!(link.drain_due(12).is_empty());
        assert_eq!(link.drain_due(13).len(), 1);
    }

    #[test]
    fn bandwidth_cap_spreads_delivery_over_ticks() {
        let mut link = LinkState::new(LinkSpec::with_bandwidth(100));
        for _ in 0..3 {
            link.enqueue(0, msg(60)); // 180 bytes total, 100/tick
        }
        assert_eq!(link.drain_due(0).len(), 1, "60 fits, 120 would not");
        assert_eq!(link.drain_due(1).len(), 1);
        assert_eq!(link.drain_due(2).len(), 1);
        assert_eq!(link.in_flight(), 0);
    }

    #[test]
    fn oversized_message_passes_alone() {
        let mut link = LinkState::new(LinkSpec::with_bandwidth(10));
        link.enqueue(0, msg(100));
        link.enqueue(0, msg(5));
        let first = link.drain_due(0);
        assert_eq!(first.len(), 1, "oversized head must not wedge the link");
        assert_eq!(first[0].payload.len(), 100);
    }

    #[test]
    fn in_order_delivery_under_cap() {
        let mut link = LinkState::new(LinkSpec::with_bandwidth(50));
        let mut big = msg(60);
        big.payload = Bytes::from(vec![1u8; 60]);
        let mut small = msg(5);
        small.payload = Bytes::from(vec![2u8; 5]);
        link.enqueue(0, big);
        link.enqueue(0, small);
        // Tick 0: only the big one (always-one rule); the small one must NOT
        // overtake it even though it would fit the leftover budget.
        let t0 = link.drain_due(0);
        assert_eq!(t0.len(), 1);
        assert_eq!(t0[0].payload[0], 1);
        let t1 = link.drain_due(1);
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].payload[0], 2);
    }

    #[test]
    fn byte_accounting() {
        let mut link = LinkState::new(LinkSpec::IDEAL);
        link.enqueue(0, msg(10));
        link.enqueue(0, msg(20));
        assert_eq!(link.bytes_sent, 30);
        assert_eq!(link.messages_sent, 2);
        link.drain_due(0);
        assert_eq!(link.bytes_delivered, 30);
    }

    #[test]
    fn drain_before_send_is_empty() {
        let mut link = LinkState::new(LinkSpec::IDEAL);
        assert!(link.drain_due(100).is_empty());
    }

    #[test]
    fn lossy_link_drops_a_fraction() {
        let mut link = LinkState::new_seeded(LinkSpec::lossy(0.5), 0xF00D);
        for _ in 0..1000 {
            link.enqueue(0, msg(1));
        }
        assert_eq!(link.messages_sent, 1000);
        let dropped = link.messages_dropped;
        assert!(
            (300..=700).contains(&dropped),
            "p=0.5 should lose roughly half, lost {dropped}"
        );
        assert_eq!(link.drain_due(0).len() as u64, 1000 - dropped);
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut link = LinkState::new_seeded(LinkSpec::lossy(0.3), seed);
            for _ in 0..200 {
                link.enqueue(0, msg(1));
            }
            link.messages_dropped
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds lose different messages");
    }

    #[test]
    fn reliable_link_never_drops() {
        let mut link = LinkState::new_seeded(LinkSpec::IDEAL, 42);
        for _ in 0..500 {
            link.enqueue(0, msg(3));
        }
        assert_eq!(link.messages_dropped, 0);
        assert_eq!(link.drain_due(0).len(), 500);
    }

    #[test]
    fn jitter_delays_but_delivers_everything_in_order() {
        let spec = LinkSpec::IDEAL.with_faults(0.0, 4);
        let mut link = LinkState::new_seeded(spec, 99);
        for i in 0..50u8 {
            let mut m = msg(1);
            m.payload = Bytes::from(vec![i]);
            link.enqueue(0, m);
        }
        let mut got = Vec::new();
        for tick in 0..10 {
            got.extend(link.drain_due(tick));
        }
        assert_eq!(got.len(), 50, "jitter must not lose messages");
        let order: Vec<u8> = got.iter().map(|m| m.payload[0]).collect();
        assert_eq!(
            order,
            (0u8..50).collect::<Vec<_>>(),
            "in-order despite jitter"
        );
        // With jitter up to 4 ticks, not everything arrives at tick 0.
        let mut link2 = LinkState::new_seeded(spec, 99);
        for _ in 0..50 {
            link2.enqueue(0, msg(1));
        }
        assert!(link2.drain_due(0).len() < 50, "some messages were delayed");
    }

    #[test]
    fn drop_at_send_counts_like_a_blackhole() {
        let mut link = LinkState::new(LinkSpec::IDEAL);
        link.drop_at_send(64);
        assert_eq!(link.messages_sent, 1);
        assert_eq!(link.messages_dropped, 1);
        assert_eq!(link.bytes_sent, 64);
        assert!(link.drain_due(0).is_empty());
    }
}
