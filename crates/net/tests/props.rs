//! Property-based tests of the transport: reliable in-order delivery under
//! arbitrary latency/bandwidth link specs, and exact byte accounting.

use bytes::Bytes;
use proptest::prelude::*;
use rtf_net::{Bus, LinkSpec};

proptest! {
    #[test]
    fn all_messages_delivered_in_order(
        sizes in proptest::collection::vec(0usize..200, 1..40),
        latency in 0u32..5,
        cap in prop_oneof![Just(None), (1u64..500).prop_map(Some)],
    ) {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.set_link(
            a.id(),
            b.id(),
            LinkSpec { latency_ticks: latency, bytes_per_tick: cap, ..LinkSpec::IDEAL },
        );

        let total_bytes: usize = sizes.iter().sum();
        for (i, &size) in sizes.iter().enumerate() {
            let mut payload = vec![0u8; size.max(1)];
            payload[0] = i as u8; // sequence marker
            a.send(b.id(), Bytes::from(payload)).unwrap();
        }

        // Advance far enough for any latency + bandwidth schedule.
        let mut received = Vec::new();
        let horizon = latency as u64 + sizes.len() as u64 * 4 + total_bytes as u64 + 10;
        for tick in 0..horizon {
            bus.advance(tick);
            received.extend(b.drain());
        }
        prop_assert_eq!(received.len(), sizes.len(), "nothing lost");
        for (i, msg) in received.iter().enumerate() {
            prop_assert_eq!(msg.payload[0], i as u8, "order preserved");
        }
    }

    #[test]
    fn byte_accounting_is_exact(sizes in proptest::collection::vec(1usize..300, 0..30)) {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        let mut total = 0u64;
        for &size in &sizes {
            a.send(b.id(), Bytes::from(vec![0u8; size])).unwrap();
            total += size as u64;
        }
        let stats = bus.stats();
        prop_assert_eq!(stats.link(a.id(), b.id()).bytes_sent, total);
        prop_assert_eq!(stats.link(a.id(), b.id()).messages_sent, sizes.len() as u64);
        prop_assert_eq!(stats.bytes_out_of(a.id()), total);
        prop_assert_eq!(stats.bytes_into(b.id()), total);
    }

    #[test]
    fn bandwidth_cap_limits_per_tick_delivery(
        count in 1usize..20,
        size in 10usize..100,
        cap_factor in 1usize..4,
    ) {
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        // The cap admits exactly `cap_factor` messages per tick.
        let cap = (size * cap_factor) as u64;
        bus.set_link(a.id(), b.id(), LinkSpec::with_bandwidth(cap));
        for _ in 0..count {
            a.send(b.id(), Bytes::from(vec![0u8; size])).unwrap();
        }
        let mut per_tick = Vec::new();
        for tick in 0..(count as u64 + 2) {
            bus.advance(tick);
            per_tick.push(b.drain().len());
        }
        prop_assert_eq!(per_tick.iter().sum::<usize>(), count, "all delivered");
        for &delivered in &per_tick {
            prop_assert!(delivered <= cap_factor, "cap exceeded: {delivered} > {cap_factor}");
        }
    }

    #[test]
    fn lossy_jittery_link_conserves_messages(
        count in 1usize..60,
        loss in 0.0f64..0.9,
        jitter in 0u32..6,
        seed in any::<u64>(),
    ) {
        // delivered + dropped = sent, delivery stays in-order, and the
        // fault pattern is a pure function of the seed.
        let bus = Bus::new();
        let a = bus.register("a");
        let b = bus.register("b");
        bus.set_fault_seed(seed);
        bus.set_link(a.id(), b.id(), LinkSpec::IDEAL.with_faults(loss, jitter));
        for i in 0..count {
            a.send(b.id(), Bytes::from(vec![i as u8])).unwrap();
        }
        let mut received = Vec::new();
        for tick in 0..(jitter as u64 + 2) {
            bus.advance(tick);
            received.extend(b.drain());
        }
        let stats = bus.stats().link(a.id(), b.id());
        prop_assert_eq!(stats.messages_sent, count as u64);
        prop_assert_eq!(stats.messages_dropped + received.len() as u64, count as u64);
        let seq: Vec<u8> = received.iter().map(|m| m.payload[0]).collect();
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seq, sorted, "survivors arrive in send order");
    }
}
