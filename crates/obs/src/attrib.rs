//! Per-term model attribution: which Eq. (1) term explains the miss?
//!
//! The autocal CUSUM watches *total*-tick residuals; this module folds
//! each observed per-task tick breakdown against the live model's
//! per-term predictions so a drift or a budget breach can be pinned on
//! a specific parameter (`t_ua`, `t_aoi`, `t_su`, …) instead of "the
//! tick got slow". Callers (the sim loop, `roia-top`) compute both
//! vectors — observed seconds per term from `TickSpan.per_task`,
//! predicted seconds per term from the registry's model — and feed
//! them to [`AttributionAccumulator::fold`]; the accumulator keeps
//! streaming sums plus a log-linear histogram of absolute residuals
//! per term, and [`AttributionAccumulator::report`] ranks terms by how
//! much of the total misprediction they carry.
//!
//! `roia-obs` stays a zero-dependency leaf: the term slots mirror the
//! model crate's `ParamKind::ALL` order by convention (pinned by a
//! test in `roia-sim`), exactly like [`crate::TASK_SLOTS`] mirrors
//! `TaskKind`.

use crate::hist::{secs_to_micros, Histogram};

/// Number of model terms (mirrors `ParamKind::ALL.len()`).
pub const TERM_COUNT: usize = 9;

/// Paper symbols for the term slots, in `ParamKind::ALL` order.
pub const TERM_SYMBOLS: [&str; TERM_COUNT] = [
    "t_ua_dser",
    "t_ua",
    "t_fa_dser",
    "t_fa",
    "t_npc",
    "t_aoi",
    "t_su",
    "t_mig_ini",
    "t_mig_rcv",
];

/// Ranked attribution summary for one model term.
#[derive(Debug, Clone, PartialEq)]
pub struct TermReport {
    /// Paper symbol of the term (`t_ua`, `t_aoi`, …).
    pub symbol: &'static str,
    /// Samples folded (server ticks).
    pub samples: u64,
    /// Total observed seconds charged to this term.
    pub observed_s: f64,
    /// Total model-predicted seconds for this term.
    pub predicted_s: f64,
    /// Signed mean residual (observed − predicted) per sample, in
    /// microseconds. Positive: the model under-predicts this term.
    pub mean_residual_us: f64,
    /// 99th percentile of the absolute residual per sample, µs.
    pub p99_abs_residual_us: u64,
    /// This term's share of the total absolute misprediction across
    /// all terms, in `[0, 1]` (the "which term explains the miss"
    /// ranking key).
    pub miss_share: f64,
}

/// Streaming per-term residual accumulator.
#[derive(Debug, Clone, Default)]
pub struct AttributionAccumulator {
    samples: u64,
    observed: [f64; TERM_COUNT],
    predicted: [f64; TERM_COUNT],
    residual_sum: [f64; TERM_COUNT],
    abs_residual_sum: [f64; TERM_COUNT],
    abs_residual_us: [Histogram; TERM_COUNT],
}

impl AttributionAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one server tick: `observed[i]` seconds actually spent in
    /// term `i` (from the tick span's per-task timers) against
    /// `predicted[i]` seconds the live model assigns it.
    pub fn fold(&mut self, observed: &[f64; TERM_COUNT], predicted: &[f64; TERM_COUNT]) {
        self.samples += 1;
        for i in 0..TERM_COUNT {
            let resid = observed[i] - predicted[i];
            self.observed[i] += observed[i];
            self.predicted[i] += predicted[i];
            self.residual_sum[i] += resid;
            self.abs_residual_sum[i] += resid.abs();
            self.abs_residual_us[i].record(secs_to_micros(resid.abs()));
        }
    }

    /// Server ticks folded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// `(observed, predicted)` total seconds summed over all terms.
    pub fn totals(&self) -> (f64, f64) {
        (self.observed.iter().sum(), self.predicted.iter().sum())
    }

    /// Per-term reports ranked by [`TermReport::miss_share`]
    /// descending (ties broken by term order, so the ranking is
    /// deterministic).
    pub fn report(&self) -> Vec<TermReport> {
        let total_abs: f64 = self.abs_residual_sum.iter().sum();
        let mut out: Vec<TermReport> = (0..TERM_COUNT)
            .map(|i| TermReport {
                symbol: TERM_SYMBOLS[i],
                samples: self.samples,
                observed_s: self.observed[i],
                predicted_s: self.predicted[i],
                mean_residual_us: if self.samples == 0 {
                    0.0
                } else {
                    self.residual_sum[i] * 1e6 / self.samples as f64
                },
                p99_abs_residual_us: self.abs_residual_us[i].percentile(0.99),
                miss_share: if total_abs > 0.0 {
                    self.abs_residual_sum[i] / total_abs
                } else {
                    0.0
                },
            })
            .collect();
        out.sort_by(|a, b| {
            b.miss_share
                .partial_cmp(&a.miss_share)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_cover_every_slot() {
        assert_eq!(TERM_SYMBOLS.len(), TERM_COUNT);
        assert_eq!(TERM_SYMBOLS[0], "t_ua_dser");
        assert_eq!(TERM_SYMBOLS[TERM_COUNT - 1], "t_mig_rcv");
    }

    #[test]
    fn empty_accumulator_reports_zeroes() {
        let acc = AttributionAccumulator::new();
        let report = acc.report();
        assert_eq!(report.len(), TERM_COUNT);
        assert!(report
            .iter()
            .all(|r| r.miss_share.abs() < 1e-12 && r.samples == 0));
        let (o, p) = acc.totals();
        assert!(o.abs() < 1e-12 && p.abs() < 1e-12);
    }

    #[test]
    fn biggest_residual_ranks_first() {
        let mut acc = AttributionAccumulator::new();
        let mut observed = [0.0; TERM_COUNT];
        let mut predicted = [0.0; TERM_COUNT];
        // t_aoi (slot 5) misses by 2 ms, t_ua (slot 1) by 0.5 ms,
        // everything else is exact.
        observed[5] = 0.004;
        predicted[5] = 0.002;
        observed[1] = 0.0015;
        predicted[1] = 0.001;
        observed[0] = 0.001;
        predicted[0] = 0.001;
        for _ in 0..100 {
            acc.fold(&observed, &predicted);
        }
        let report = acc.report();
        assert_eq!(report[0].symbol, "t_aoi");
        assert_eq!(report[1].symbol, "t_ua");
        assert!(report[0].miss_share > 0.7, "{}", report[0].miss_share);
        assert!(
            (report[0].mean_residual_us - 2000.0).abs() < 1e-6,
            "{}",
            report[0].mean_residual_us
        );
        // p99 of a constant 2 ms residual is ~2000 µs (bucket bound).
        let p99 = report[0].p99_abs_residual_us;
        assert!((1900..=2100).contains(&p99), "{p99}");
        // Exactly-predicted terms carry no share of the miss.
        let exact = report.iter().find(|r| r.symbol == "t_ua_dser").unwrap();
        assert!(exact.miss_share.abs() < 1e-12);
        assert!((exact.observed_s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn signed_mean_distinguishes_over_and_under_prediction() {
        let mut acc = AttributionAccumulator::new();
        let mut observed = [0.0; TERM_COUNT];
        let mut predicted = [0.0; TERM_COUNT];
        observed[6] = 0.001;
        predicted[6] = 0.003; // model over-predicts t_su
        acc.fold(&observed, &predicted);
        let su = acc
            .report()
            .into_iter()
            .find(|r| r.symbol == "t_su")
            .unwrap();
        assert!(su.mean_residual_us < 0.0, "{}", su.mean_residual_us);
    }

    #[test]
    fn totals_sum_both_sides() {
        let mut acc = AttributionAccumulator::new();
        let observed = [0.001; TERM_COUNT];
        let predicted = [0.002; TERM_COUNT];
        acc.fold(&observed, &predicted);
        acc.fold(&observed, &predicted);
        let (o, p) = acc.totals();
        assert!((o - 0.018).abs() < 1e-12);
        assert!((p - 0.036).abs() < 1e-12);
    }
}
