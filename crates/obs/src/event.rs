//! Typed trace records: tick spans, control rounds, the decision audit
//! trail, migration lifecycles, chaos faults and calibration events.
//!
//! Events carry only primitives (`u64` ticks and causality ids, `u32`
//! server/zone ids, `&'static str` vocabulary) so `roia-obs` stays a
//! zero-dependency leaf crate: emitters translate their `NodeId` /
//! `ZoneId` / enum types at the call site. Every event encodes to one
//! flat JSON line ([`TraceEvent::to_json`]) and decodes back
//! ([`TraceEvent::from_json`]), which is what the JSONL sink writes and
//! the `explain` replay tool reads.
//!
//! # Causality
//!
//! The audit trail is linked by two ids:
//!
//! - `cause` — the control-round tick that produced a decision. A
//!   [`TraceEvent::Decision`], its per-pair
//!   [`TraceEvent::MigrationBudget`] evaluations and every
//!   [`TraceEvent::ActionIssued`] spawned by that round share it.
//! - `action_id` — the controller ledger id of one issued action.
//!   [`TraceEvent::ActionResolved`], [`TraceEvent::MigrationPlanned`]
//!   and retries (`ActionIssued` with `attempt > 0`) share it.

use crate::export::{self, JsonValue};
use std::collections::BTreeMap;

/// Number of per-task cost slots in a tick span (mirrors
/// `rtf_core::timer::TASK_COUNT` without depending on it).
pub const TASK_SLOTS: usize = 10;

/// One structured telemetry record. See the module docs for the
/// causality scheme; field meanings follow the paper's notation
/// (`l` replicas, `n` users, `m` NPCs, `T` tick duration).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One server tick: duration, per-task child timings and load.
    TickSpan {
        /// Simulation tick (monotonic sim-time).
        tick: u64,
        /// Server (node) id.
        server: u32,
        /// Zone the server replicates.
        zone: u32,
        /// Total tick duration in seconds.
        duration_s: f64,
        /// Per-`TaskKind` child timings in seconds, indexed like
        /// `TaskKind::ALL`.
        per_task: [f64; TASK_SLOTS],
        /// Users homed on this server.
        active_users: u32,
        /// Shadow (replicated) users.
        shadow_users: u32,
        /// NPCs simulated by this server.
        npcs: u32,
        /// Migrations this server initiated during the tick.
        migrations_initiated: u32,
        /// Migrations this server received during the tick.
        migrations_received: u32,
    },
    /// A controller round ran for a zone.
    ControlRound {
        /// Simulation tick — also the `cause` id of everything this
        /// round produced.
        tick: u64,
        /// Zone under control.
        zone: u32,
        /// Replica count observed in the snapshot.
        servers: u32,
        /// Total users observed in the snapshot.
        users: u32,
        /// Actions issued by this round (including follow-ups).
        issued: u32,
    },
    /// A model-driven policy decision with its Eq. 1–5 inputs plugged
    /// in — the "why" record of the audit trail.
    Decision {
        /// Simulation tick of the control round (the `cause` id).
        tick: u64,
        /// Zone decided on.
        zone: u32,
        /// What the policy chose: `add_replica`, `substitute`,
        /// `scale_down`, `balance` or `hold`.
        kind: &'static str,
        /// Version of the scalability model used (registry version).
        model_version: u64,
        /// Replicas `l` in the snapshot.
        replicas: u32,
        /// Users `n` in the snapshot.
        users: u32,
        /// NPCs `m` in the snapshot.
        npcs: u32,
        /// Eq. 4 predicted tick duration `T(l, n, m)` in seconds.
        predicted_tick_s: f64,
        /// Eq. 2 capacity `n_max(l, m)` at the current replica count.
        n_max: u32,
        /// Replication trigger (80% of `n_max`, §IV).
        trigger: u32,
        /// Eq. 3 replica ceiling `l_max(m)`.
        l_max: u32,
    },
    /// One Eq. 5 migration-budget evaluation for a donor→receiver pair.
    MigrationBudget {
        /// Simulation tick of the evaluation.
        tick: u64,
        /// Control-round tick that requested it (the `cause` id).
        cause: u64,
        /// Donor server id.
        from: u32,
        /// Receiver server id.
        to: u32,
        /// Donor's observed tick duration in seconds.
        from_tick_s: f64,
        /// Receiver's observed tick duration in seconds.
        to_tick_s: f64,
        /// Eq. 5 initiate-side budget `x_max_ini` (after hedging).
        x_max_ini: u32,
        /// Eq. 5 receive-side budget `x_max_rcv` (after hedging).
        x_max_rcv: u32,
        /// Users actually granted to move on this pair.
        granted: u32,
    },
    /// The controller issued (or re-issued) an action.
    ActionIssued {
        /// Simulation tick of issue.
        tick: u64,
        /// Control-round tick whose decision spawned it.
        cause: u64,
        /// Controller ledger id linking resolution and retries.
        action_id: u64,
        /// Action kind: `migrate`, `add_replica`, `substitute`,
        /// `remove_replica`.
        kind: &'static str,
        /// Retry attempt, 0 for the first issue.
        attempt: u32,
        /// Source server id, or -1 when not applicable.
        from: i64,
        /// Destination server id, or -1 when not applicable.
        to: i64,
        /// Users moved (migrations), else 0.
        users: u32,
    },
    /// A previously issued action reached a terminal outcome.
    ActionResolved {
        /// Simulation tick of resolution.
        tick: u64,
        /// Ledger id of the resolved action.
        action_id: u64,
        /// Terminal outcome name (`succeeded`, `failed`, …).
        outcome: &'static str,
    },
    /// The cluster scheduled the user transfers for a migrate action.
    MigrationPlanned {
        /// Simulation tick of planning.
        tick: u64,
        /// Ledger id of the migrate/substitute action, or 0 for
        /// internally scheduled rebalances.
        action_id: u64,
        /// Donor server id.
        from: u32,
        /// Receiver server id.
        to: u32,
        /// Users scheduled to move.
        users: u32,
    },
    /// Users finished transferring onto a server this tick.
    MigrationSettled {
        /// Simulation tick of settlement.
        tick: u64,
        /// Receiving server id.
        server: u32,
        /// Users that arrived during the tick.
        arrived: u32,
    },
    /// The chaos engine injected a fault.
    FaultInjected {
        /// Simulation tick of injection.
        tick: u64,
        /// Fault kind (`crash_most_loaded`, `isolate`, …).
        fault: &'static str,
        /// Target server id, or -1 for cluster-wide faults.
        server: i64,
    },
    /// A timed fault reverted.
    FaultReverted {
        /// Simulation tick of reversion.
        tick: u64,
        /// Reverted fault kind (`unisolate`, `unstraggle`).
        fault: &'static str,
        /// Target server id, or -1 when not applicable.
        server: i64,
    },
    /// A server finished booting and joined the zone.
    ServerBooted {
        /// Simulation tick the server became ready.
        tick: u64,
        /// New server id.
        server: u32,
    },
    /// A server crashed (fault or supervisor verdict).
    ServerCrashed {
        /// Simulation tick of the crash.
        tick: u64,
        /// Crashed server id.
        server: u32,
    },
    /// A server was removed by a scale-down.
    ServerRemoved {
        /// Simulation tick of removal.
        tick: u64,
        /// Removed server id.
        server: u32,
    },
    /// The online calibrator ran a refit.
    Refit {
        /// Simulation tick of the refit.
        tick: u64,
        /// Why it ran: `seed`, `cadence` or `drift`.
        reason: &'static str,
        /// Publish outcome: `published`, `rejected_quality`,
        /// `cooldown` or `unchanged`.
        outcome: &'static str,
        /// Model version after the refit.
        version: u64,
        /// Number of parameters the refit updated.
        params: u32,
    },
    /// The model registry atomically swapped in a new version.
    RegistrySwap {
        /// Simulation tick of the swap.
        tick: u64,
        /// Newly published version.
        version: u64,
        /// Refit reason that produced it.
        reason: &'static str,
    },
    /// The controller entered declared degraded mode: capacity requests
    /// keep bouncing, so it switches to join admission control and
    /// reduced AoI fidelity instead of silently accruing violations.
    DegradedEnter {
        /// Simulation tick the mode engaged.
        tick: u64,
        /// Tick of the action resolution that tripped the entry
        /// threshold (the `cause` id of the state change).
        cause: u64,
        /// Why it engaged: `out_of_capacity` or `abandoned`.
        reason: &'static str,
        /// Admission verdict applied to new joins while degraded:
        /// `queue` or `shed`.
        admission: &'static str,
        /// AoI fidelity scale applied while degraded (1.0 = full).
        fidelity: f64,
    },
    /// The controller left degraded mode after the hysteresis window —
    /// minimum dwell elapsed and enough consecutive clean rounds.
    DegradedExit {
        /// Simulation tick the mode disengaged.
        tick: u64,
        /// Tick degraded mode was entered (the `cause` id pairing the
        /// exit with its enter event).
        cause: u64,
        /// Ticks spent degraded.
        dwell_ticks: u64,
        /// Joins queued over the degraded episode.
        queued: u32,
        /// Joins shed over the degraded episode.
        shed: u32,
    },
    /// Admission control intercepted a join request while degraded.
    JoinThrottled {
        /// Simulation tick of the join attempt.
        tick: u64,
        /// Tick degraded mode was entered (the `cause` id linking the
        /// throttle to its episode).
        cause: u64,
        /// What happened to the join: `queue` or `shed`.
        verdict: &'static str,
        /// Total joins throttled (queued + shed) so far this episode.
        total: u32,
    },
    /// A transport connection opened (socket accepted / bus peer seen).
    ConnOpened {
        /// Server session tick the connection appeared at.
        tick: u64,
        /// Transport-level peer id.
        peer: u64,
        /// Backend that carries it: `tcp` or `bus`.
        transport: &'static str,
    },
    /// A transport connection closed.
    ConnClosed {
        /// Server session tick of the close.
        tick: u64,
        /// Tick the connection opened (the `cause` id pairing the close
        /// with its open event).
        cause: u64,
        /// Transport-level peer id.
        peer: u64,
        /// Why it closed: `eof`, `bye`, `error` or `shutdown`.
        reason: &'static str,
    },
    /// A peer's bounded outbound queue crossed a watermark.
    Backpressure {
        /// Server session tick of the transition.
        tick: u64,
        /// Tick the pressure began (the `cause` id linking `relief`
        /// back to its `onset`; equals `tick` for the onset itself).
        cause: u64,
        /// Transport-level peer id.
        peer: u64,
        /// `onset` (high watermark crossed) or `relief` (drained).
        state: &'static str,
        /// Bytes queued at the transition (0 on relief).
        queued_bytes: u64,
    },
    /// An SLO's error budget is burning: both the fast and the slow
    /// burn-rate windows crossed their thresholds (SRE multi-window
    /// multi-burn-rate rule).
    SloBurn {
        /// Simulation tick the alert fired.
        tick: u64,
        /// First tick of the over-threshold streak (the `cause` id a
        /// matching [`TraceEvent::SloRecovered`] points back to).
        cause: u64,
        /// Objective name: `tick_budget`, `tick_p99`,
        /// `invariant_violations`, `join_shed` or `backpressure_duty`.
        slo: &'static str,
        /// Alert severity: `page` (fast window far over budget) or
        /// `warn`.
        severity: &'static str,
        /// Fast-window burn rate (error budget multiples), permille.
        fast_burn_pm: u64,
        /// Slow-window burn rate (error budget multiples), permille.
        slow_burn_pm: u64,
    },
    /// A burning SLO's fast window stayed clean long enough to clear
    /// the alert (hysteresis exit).
    SloRecovered {
        /// Simulation tick the alert cleared.
        tick: u64,
        /// First tick of the burn streak (the `cause` id pairing the
        /// recovery with its [`TraceEvent::SloBurn`]).
        cause: u64,
        /// Objective name that recovered.
        slo: &'static str,
        /// Ticks spent in the burning state.
        burn_ticks: u64,
    },
    /// The flight recorder dumped a postmortem bundle to disk.
    PostmortemDumped {
        /// Simulation tick of the dump.
        tick: u64,
        /// Tick of the triggering condition (the `cause` id: the SLO
        /// burn's cause, the degraded-enter tick, or the violation
        /// tick).
        cause: u64,
        /// What tripped the dump: `slo_page`, `invariant` or
        /// `degraded`.
        reason: &'static str,
        /// Bundle sequence number within the session (dump directory
        /// is `postmortem-<seq>`).
        seq: u32,
        /// Events written to the bundle's `events.jsonl`.
        events: u32,
        /// Decision audit records written to `decisions.jsonl`.
        decisions: u32,
        /// Model registry version in force at dump time.
        model_version: u64,
    },
    /// Client-side prediction disagreed with the authoritative replay
    /// and was corrected.
    ReconcileCorrection {
        /// Server tick of the snapshot that exposed the divergence.
        tick: u64,
        /// Same snapshot tick (the `cause` id of the correction).
        cause: u64,
        /// The correcting user id (client traces carry user ids here,
        /// not transport peer ids).
        peer: u64,
        /// Input sequence number the snapshot acked.
        seq: u32,
        /// Correction magnitude, Chebyshev world units.
        error: u64,
    },
}

/// Known vocabulary for `&'static str` event fields, so decoded events
/// can round-trip without allocation. Unknown strings map to
/// `"unknown"`.
const VOCAB: &[&str] = &[
    "migrate",
    "add_replica",
    "substitute",
    "remove_replica",
    "scale_down",
    "balance",
    "hold",
    "pending",
    "succeeded",
    "rejected",
    "failed",
    "timed_out",
    "escalated",
    "abandoned",
    "crash_most_loaded",
    "crash_nth",
    "isolate",
    "straggle",
    "set_boot_failure_rate",
    "set_link_loss",
    "unisolate",
    "unstraggle",
    "seed",
    "cadence",
    "drift",
    "published",
    "rejected_quality",
    "cooldown",
    "unchanged",
    "out_of_capacity",
    "queue",
    "shed",
    "tcp",
    "bus",
    "eof",
    "bye",
    "error",
    "shutdown",
    "onset",
    "relief",
    "tick_budget",
    "tick_p99",
    "invariant_violations",
    "join_shed",
    "backpressure_duty",
    "warn",
    "page",
    "slo_page",
    "invariant",
    "degraded",
];

/// Map a decoded string onto the static vocabulary (`"unknown"` if
/// absent).
pub fn intern(s: &str) -> &'static str {
    VOCAB
        .iter()
        .find(|v| **v == s)
        .copied()
        .unwrap_or("unknown")
}

impl TraceEvent {
    /// Stable discriminator written as the `"ev"` field of the JSON
    /// encoding.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TickSpan { .. } => "tick_span",
            TraceEvent::ControlRound { .. } => "control_round",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::MigrationBudget { .. } => "migration_budget",
            TraceEvent::ActionIssued { .. } => "action_issued",
            TraceEvent::ActionResolved { .. } => "action_resolved",
            TraceEvent::MigrationPlanned { .. } => "migration_planned",
            TraceEvent::MigrationSettled { .. } => "migration_settled",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::FaultReverted { .. } => "fault_reverted",
            TraceEvent::ServerBooted { .. } => "server_booted",
            TraceEvent::ServerCrashed { .. } => "server_crashed",
            TraceEvent::ServerRemoved { .. } => "server_removed",
            TraceEvent::Refit { .. } => "refit",
            TraceEvent::RegistrySwap { .. } => "registry_swap",
            TraceEvent::DegradedEnter { .. } => "degraded_enter",
            TraceEvent::DegradedExit { .. } => "degraded_exit",
            TraceEvent::JoinThrottled { .. } => "join_throttled",
            TraceEvent::ConnOpened { .. } => "conn_opened",
            TraceEvent::ConnClosed { .. } => "conn_closed",
            TraceEvent::Backpressure { .. } => "backpressure",
            TraceEvent::SloBurn { .. } => "slo_burn",
            TraceEvent::SloRecovered { .. } => "slo_recovered",
            TraceEvent::PostmortemDumped { .. } => "postmortem_dumped",
            TraceEvent::ReconcileCorrection { .. } => "reconcile_correction",
        }
    }

    /// Simulation tick the event occurred at.
    pub fn tick(&self) -> u64 {
        match self {
            TraceEvent::TickSpan { tick, .. }
            | TraceEvent::ControlRound { tick, .. }
            | TraceEvent::Decision { tick, .. }
            | TraceEvent::MigrationBudget { tick, .. }
            | TraceEvent::ActionIssued { tick, .. }
            | TraceEvent::ActionResolved { tick, .. }
            | TraceEvent::MigrationPlanned { tick, .. }
            | TraceEvent::MigrationSettled { tick, .. }
            | TraceEvent::FaultInjected { tick, .. }
            | TraceEvent::FaultReverted { tick, .. }
            | TraceEvent::ServerBooted { tick, .. }
            | TraceEvent::ServerCrashed { tick, .. }
            | TraceEvent::ServerRemoved { tick, .. }
            | TraceEvent::Refit { tick, .. }
            | TraceEvent::RegistrySwap { tick, .. }
            | TraceEvent::DegradedEnter { tick, .. }
            | TraceEvent::DegradedExit { tick, .. }
            | TraceEvent::JoinThrottled { tick, .. }
            | TraceEvent::ConnOpened { tick, .. }
            | TraceEvent::ConnClosed { tick, .. }
            | TraceEvent::Backpressure { tick, .. }
            | TraceEvent::SloBurn { tick, .. }
            | TraceEvent::SloRecovered { tick, .. }
            | TraceEvent::PostmortemDumped { tick, .. }
            | TraceEvent::ReconcileCorrection { tick, .. } => *tick,
        }
    }

    /// Encode as one flat JSON object (one JSONL line, no newline).
    pub fn to_json(&self) -> String {
        use export::{array, int, num, object, string, uint};
        let ev = ("ev", string(self.name()));
        match self {
            TraceEvent::TickSpan {
                tick,
                server,
                zone,
                duration_s,
                per_task,
                active_users,
                shadow_users,
                npcs,
                migrations_initiated,
                migrations_received,
            } => {
                let tasks: Vec<String> = per_task.iter().map(|v| num(*v)).collect();
                object(&[
                    ev,
                    ("tick", uint(*tick)),
                    ("server", uint(*server as u64)),
                    ("zone", uint(*zone as u64)),
                    ("duration_s", num(*duration_s)),
                    ("per_task", array(&tasks)),
                    ("active_users", uint(*active_users as u64)),
                    ("shadow_users", uint(*shadow_users as u64)),
                    ("npcs", uint(*npcs as u64)),
                    ("migrations_initiated", uint(*migrations_initiated as u64)),
                    ("migrations_received", uint(*migrations_received as u64)),
                ])
            }
            TraceEvent::ControlRound {
                tick,
                zone,
                servers,
                users,
                issued,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("zone", uint(*zone as u64)),
                ("servers", uint(*servers as u64)),
                ("users", uint(*users as u64)),
                ("issued", uint(*issued as u64)),
            ]),
            TraceEvent::Decision {
                tick,
                zone,
                kind,
                model_version,
                replicas,
                users,
                npcs,
                predicted_tick_s,
                n_max,
                trigger,
                l_max,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("zone", uint(*zone as u64)),
                ("kind", string(kind)),
                ("model_version", uint(*model_version)),
                ("replicas", uint(*replicas as u64)),
                ("users", uint(*users as u64)),
                ("npcs", uint(*npcs as u64)),
                ("predicted_tick_s", num(*predicted_tick_s)),
                ("n_max", uint(*n_max as u64)),
                ("trigger", uint(*trigger as u64)),
                ("l_max", uint(*l_max as u64)),
            ]),
            TraceEvent::MigrationBudget {
                tick,
                cause,
                from,
                to,
                from_tick_s,
                to_tick_s,
                x_max_ini,
                x_max_rcv,
                granted,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("from", uint(*from as u64)),
                ("to", uint(*to as u64)),
                ("from_tick_s", num(*from_tick_s)),
                ("to_tick_s", num(*to_tick_s)),
                ("x_max_ini", uint(*x_max_ini as u64)),
                ("x_max_rcv", uint(*x_max_rcv as u64)),
                ("granted", uint(*granted as u64)),
            ]),
            TraceEvent::ActionIssued {
                tick,
                cause,
                action_id,
                kind,
                attempt,
                from,
                to,
                users,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("action_id", uint(*action_id)),
                ("kind", string(kind)),
                ("attempt", uint(*attempt as u64)),
                ("from", int(*from)),
                ("to", int(*to)),
                ("users", uint(*users as u64)),
            ]),
            TraceEvent::ActionResolved {
                tick,
                action_id,
                outcome,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("action_id", uint(*action_id)),
                ("outcome", string(outcome)),
            ]),
            TraceEvent::MigrationPlanned {
                tick,
                action_id,
                from,
                to,
                users,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("action_id", uint(*action_id)),
                ("from", uint(*from as u64)),
                ("to", uint(*to as u64)),
                ("users", uint(*users as u64)),
            ]),
            TraceEvent::MigrationSettled {
                tick,
                server,
                arrived,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("server", uint(*server as u64)),
                ("arrived", uint(*arrived as u64)),
            ]),
            TraceEvent::FaultInjected {
                tick,
                fault,
                server,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("fault", string(fault)),
                ("server", int(*server)),
            ]),
            TraceEvent::FaultReverted {
                tick,
                fault,
                server,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("fault", string(fault)),
                ("server", int(*server)),
            ]),
            TraceEvent::ServerBooted { tick, server } => {
                object(&[ev, ("tick", uint(*tick)), ("server", uint(*server as u64))])
            }
            TraceEvent::ServerCrashed { tick, server } => {
                object(&[ev, ("tick", uint(*tick)), ("server", uint(*server as u64))])
            }
            TraceEvent::ServerRemoved { tick, server } => {
                object(&[ev, ("tick", uint(*tick)), ("server", uint(*server as u64))])
            }
            TraceEvent::Refit {
                tick,
                reason,
                outcome,
                version,
                params,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("reason", string(reason)),
                ("outcome", string(outcome)),
                ("version", uint(*version)),
                ("params", uint(*params as u64)),
            ]),
            TraceEvent::RegistrySwap {
                tick,
                version,
                reason,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("version", uint(*version)),
                ("reason", string(reason)),
            ]),
            TraceEvent::DegradedEnter {
                tick,
                cause,
                reason,
                admission,
                fidelity,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("reason", string(reason)),
                ("admission", string(admission)),
                ("fidelity", num(*fidelity)),
            ]),
            TraceEvent::DegradedExit {
                tick,
                cause,
                dwell_ticks,
                queued,
                shed,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("dwell_ticks", uint(*dwell_ticks)),
                ("queued", uint(*queued as u64)),
                ("shed", uint(*shed as u64)),
            ]),
            TraceEvent::JoinThrottled {
                tick,
                cause,
                verdict,
                total,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("verdict", string(verdict)),
                ("total", uint(*total as u64)),
            ]),
            TraceEvent::ConnOpened {
                tick,
                peer,
                transport,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("peer", uint(*peer)),
                ("transport", string(transport)),
            ]),
            TraceEvent::ConnClosed {
                tick,
                cause,
                peer,
                reason,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("peer", uint(*peer)),
                ("reason", string(reason)),
            ]),
            TraceEvent::Backpressure {
                tick,
                cause,
                peer,
                state,
                queued_bytes,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("peer", uint(*peer)),
                ("state", string(state)),
                ("queued_bytes", uint(*queued_bytes)),
            ]),
            TraceEvent::SloBurn {
                tick,
                cause,
                slo,
                severity,
                fast_burn_pm,
                slow_burn_pm,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("slo", string(slo)),
                ("severity", string(severity)),
                ("fast_burn_pm", uint(*fast_burn_pm)),
                ("slow_burn_pm", uint(*slow_burn_pm)),
            ]),
            TraceEvent::SloRecovered {
                tick,
                cause,
                slo,
                burn_ticks,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("slo", string(slo)),
                ("burn_ticks", uint(*burn_ticks)),
            ]),
            TraceEvent::PostmortemDumped {
                tick,
                cause,
                reason,
                seq,
                events,
                decisions,
                model_version,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("reason", string(reason)),
                ("seq", uint(*seq as u64)),
                ("events", uint(*events as u64)),
                ("decisions", uint(*decisions as u64)),
                ("model_version", uint(*model_version)),
            ]),
            TraceEvent::ReconcileCorrection {
                tick,
                cause,
                peer,
                seq,
                error,
            } => object(&[
                ev,
                ("tick", uint(*tick)),
                ("cause", uint(*cause)),
                ("peer", uint(*peer)),
                ("seq", uint(*seq as u64)),
                ("error", uint(*error)),
            ]),
        }
    }

    /// Decode one JSONL line produced by [`TraceEvent::to_json`].
    /// Returns `None` for malformed lines or unknown event names.
    pub fn from_json(line: &str) -> Option<TraceEvent> {
        let map = export::parse_object(line)?;
        Self::from_fields(&map)
    }

    /// Decode from an already-parsed flat object.
    pub fn from_fields(map: &BTreeMap<String, JsonValue>) -> Option<TraceEvent> {
        let u32_of = |k: &str| map.get(k)?.as_u64().map(|v| v as u32);
        let u64_of = |k: &str| map.get(k)?.as_u64();
        let i64_of = |k: &str| map.get(k)?.as_i64();
        let f64_of = |k: &str| map.get(k)?.as_f64();
        let str_of = |k: &str| map.get(k)?.as_str().map(intern);
        match map.get("ev")?.as_str()? {
            "tick_span" => {
                let arr = map.get("per_task")?.as_arr()?;
                let mut per_task = [0.0; TASK_SLOTS];
                for (slot, item) in per_task.iter_mut().zip(arr.iter()) {
                    *slot = item.as_f64().unwrap_or(0.0);
                }
                Some(TraceEvent::TickSpan {
                    tick: u64_of("tick")?,
                    server: u32_of("server")?,
                    zone: u32_of("zone")?,
                    duration_s: f64_of("duration_s")?,
                    per_task,
                    active_users: u32_of("active_users")?,
                    shadow_users: u32_of("shadow_users")?,
                    npcs: u32_of("npcs")?,
                    migrations_initiated: u32_of("migrations_initiated")?,
                    migrations_received: u32_of("migrations_received")?,
                })
            }
            "control_round" => Some(TraceEvent::ControlRound {
                tick: u64_of("tick")?,
                zone: u32_of("zone")?,
                servers: u32_of("servers")?,
                users: u32_of("users")?,
                issued: u32_of("issued")?,
            }),
            "decision" => Some(TraceEvent::Decision {
                tick: u64_of("tick")?,
                zone: u32_of("zone")?,
                kind: str_of("kind")?,
                model_version: u64_of("model_version")?,
                replicas: u32_of("replicas")?,
                users: u32_of("users")?,
                npcs: u32_of("npcs")?,
                predicted_tick_s: f64_of("predicted_tick_s")?,
                n_max: u32_of("n_max")?,
                trigger: u32_of("trigger")?,
                l_max: u32_of("l_max")?,
            }),
            "migration_budget" => Some(TraceEvent::MigrationBudget {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                from: u32_of("from")?,
                to: u32_of("to")?,
                from_tick_s: f64_of("from_tick_s")?,
                to_tick_s: f64_of("to_tick_s")?,
                x_max_ini: u32_of("x_max_ini")?,
                x_max_rcv: u32_of("x_max_rcv")?,
                granted: u32_of("granted")?,
            }),
            "action_issued" => Some(TraceEvent::ActionIssued {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                action_id: u64_of("action_id")?,
                kind: str_of("kind")?,
                attempt: u32_of("attempt")?,
                from: i64_of("from")?,
                to: i64_of("to")?,
                users: u32_of("users")?,
            }),
            "action_resolved" => Some(TraceEvent::ActionResolved {
                tick: u64_of("tick")?,
                action_id: u64_of("action_id")?,
                outcome: str_of("outcome")?,
            }),
            "migration_planned" => Some(TraceEvent::MigrationPlanned {
                tick: u64_of("tick")?,
                action_id: u64_of("action_id")?,
                from: u32_of("from")?,
                to: u32_of("to")?,
                users: u32_of("users")?,
            }),
            "migration_settled" => Some(TraceEvent::MigrationSettled {
                tick: u64_of("tick")?,
                server: u32_of("server")?,
                arrived: u32_of("arrived")?,
            }),
            "fault_injected" => Some(TraceEvent::FaultInjected {
                tick: u64_of("tick")?,
                fault: str_of("fault")?,
                server: i64_of("server")?,
            }),
            "fault_reverted" => Some(TraceEvent::FaultReverted {
                tick: u64_of("tick")?,
                fault: str_of("fault")?,
                server: i64_of("server")?,
            }),
            "server_booted" => Some(TraceEvent::ServerBooted {
                tick: u64_of("tick")?,
                server: u32_of("server")?,
            }),
            "server_crashed" => Some(TraceEvent::ServerCrashed {
                tick: u64_of("tick")?,
                server: u32_of("server")?,
            }),
            "server_removed" => Some(TraceEvent::ServerRemoved {
                tick: u64_of("tick")?,
                server: u32_of("server")?,
            }),
            "refit" => Some(TraceEvent::Refit {
                tick: u64_of("tick")?,
                reason: str_of("reason")?,
                outcome: str_of("outcome")?,
                version: u64_of("version")?,
                params: u32_of("params")?,
            }),
            "registry_swap" => Some(TraceEvent::RegistrySwap {
                tick: u64_of("tick")?,
                version: u64_of("version")?,
                reason: str_of("reason")?,
            }),
            "degraded_enter" => Some(TraceEvent::DegradedEnter {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                reason: str_of("reason")?,
                admission: str_of("admission")?,
                fidelity: f64_of("fidelity")?,
            }),
            "degraded_exit" => Some(TraceEvent::DegradedExit {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                dwell_ticks: u64_of("dwell_ticks")?,
                queued: u32_of("queued")?,
                shed: u32_of("shed")?,
            }),
            "join_throttled" => Some(TraceEvent::JoinThrottled {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                verdict: str_of("verdict")?,
                total: u32_of("total")?,
            }),
            "conn_opened" => Some(TraceEvent::ConnOpened {
                tick: u64_of("tick")?,
                peer: u64_of("peer")?,
                transport: str_of("transport")?,
            }),
            "conn_closed" => Some(TraceEvent::ConnClosed {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                peer: u64_of("peer")?,
                reason: str_of("reason")?,
            }),
            "backpressure" => Some(TraceEvent::Backpressure {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                peer: u64_of("peer")?,
                state: str_of("state")?,
                queued_bytes: u64_of("queued_bytes")?,
            }),
            "slo_burn" => Some(TraceEvent::SloBurn {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                slo: str_of("slo")?,
                severity: str_of("severity")?,
                fast_burn_pm: u64_of("fast_burn_pm")?,
                slow_burn_pm: u64_of("slow_burn_pm")?,
            }),
            "slo_recovered" => Some(TraceEvent::SloRecovered {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                slo: str_of("slo")?,
                burn_ticks: u64_of("burn_ticks")?,
            }),
            "postmortem_dumped" => Some(TraceEvent::PostmortemDumped {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                reason: str_of("reason")?,
                seq: u32_of("seq")?,
                events: u32_of("events")?,
                decisions: u32_of("decisions")?,
                model_version: u64_of("model_version")?,
            }),
            "reconcile_correction" => Some(TraceEvent::ReconcileCorrection {
                tick: u64_of("tick")?,
                cause: u64_of("cause")?,
                peer: u64_of("peer")?,
                seq: u32_of("seq")?,
                error: u64_of("error")?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TickSpan {
                tick: 4180,
                server: 2,
                zone: 0,
                duration_s: 0.0312,
                per_task: [0.001, 0.002, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0282],
                active_users: 120,
                shadow_users: 60,
                npcs: 50,
                migrations_initiated: 3,
                migrations_received: 0,
            },
            TraceEvent::Decision {
                tick: 4175,
                zone: 0,
                kind: "add_replica",
                model_version: 3,
                replicas: 2,
                users: 210,
                npcs: 150,
                predicted_tick_s: 0.0388,
                n_max: 260,
                trigger: 208,
                l_max: 5,
            },
            TraceEvent::MigrationBudget {
                tick: 4175,
                cause: 4175,
                from: 0,
                to: 2,
                from_tick_s: 0.041,
                to_tick_s: 0.012,
                x_max_ini: 12,
                x_max_rcv: 40,
                granted: 12,
            },
            TraceEvent::ActionIssued {
                tick: 4175,
                cause: 4175,
                action_id: 17,
                kind: "migrate",
                attempt: 1,
                from: 0,
                to: 2,
                users: 12,
            },
            TraceEvent::ActionResolved {
                tick: 4176,
                action_id: 17,
                outcome: "succeeded",
            },
            TraceEvent::FaultInjected {
                tick: 900,
                fault: "crash_most_loaded",
                server: -1,
            },
            TraceEvent::Refit {
                tick: 3000,
                reason: "drift",
                outcome: "published",
                version: 4,
                params: 2,
            },
            TraceEvent::RegistrySwap {
                tick: 3000,
                version: 4,
                reason: "drift",
            },
            TraceEvent::DegradedEnter {
                tick: 5100,
                cause: 5098,
                reason: "out_of_capacity",
                admission: "queue",
                fidelity: 0.6,
            },
            TraceEvent::JoinThrottled {
                tick: 5120,
                cause: 5100,
                verdict: "queue",
                total: 7,
            },
            TraceEvent::DegradedExit {
                tick: 5600,
                cause: 5100,
                dwell_ticks: 500,
                queued: 7,
                shed: 0,
            },
            TraceEvent::ConnOpened {
                tick: 12,
                peer: 3,
                transport: "tcp",
            },
            TraceEvent::ConnClosed {
                tick: 480,
                cause: 12,
                peer: 3,
                reason: "bye",
            },
            TraceEvent::Backpressure {
                tick: 200,
                cause: 200,
                peer: 3,
                state: "onset",
                queued_bytes: 262200,
            },
            TraceEvent::Backpressure {
                tick: 208,
                cause: 200,
                peer: 3,
                state: "relief",
                queued_bytes: 0,
            },
            TraceEvent::ReconcileCorrection {
                tick: 310,
                cause: 310,
                peer: 42,
                seq: 87,
                error: 16,
            },
            TraceEvent::SloBurn {
                tick: 5200,
                cause: 5150,
                slo: "tick_budget",
                severity: "page",
                fast_burn_pm: 14_200,
                slow_burn_pm: 2_100,
            },
            TraceEvent::SloRecovered {
                tick: 5700,
                cause: 5150,
                slo: "tick_budget",
                burn_ticks: 500,
            },
            TraceEvent::PostmortemDumped {
                tick: 5200,
                cause: 5150,
                reason: "slo_page",
                seq: 0,
                events: 512,
                decisions: 24,
                model_version: 4,
            },
        ]
    }

    #[test]
    fn json_round_trip_preserves_every_event() {
        for ev in samples() {
            let line = ev.to_json();
            let back =
                TraceEvent::from_json(&line).unwrap_or_else(|| panic!("failed to decode: {line}"));
            assert_eq!(back, ev, "round trip changed {line}");
        }
    }

    #[test]
    fn unknown_event_names_decode_to_none() {
        assert!(TraceEvent::from_json("{\"ev\": \"mystery\", \"tick\": 1}").is_none());
        assert!(TraceEvent::from_json("not json").is_none());
    }

    #[test]
    fn intern_covers_emitted_vocabulary() {
        for word in ["migrate", "succeeded", "drift", "published", "isolate"] {
            assert_eq!(intern(word), word);
        }
        assert_eq!(intern("zalgo"), "unknown");
    }
}
