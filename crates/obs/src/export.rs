//! Minimal JSON emission and parsing, shared by every exporter.
//!
//! The workspace deliberately carries no JSON dependency; the bench
//! binaries used to hand-roll emitters per file. This module is the one
//! canonical copy: [`num`]/[`string`]/[`object`]/[`array`] build JSON
//! text, and [`parse_object`] reads back everything this module emits —
//! scalars, arrays and (since the `roia-top` snapshot) nested objects.

use std::collections::BTreeMap;

/// Render a float as a JSON number, or `null` when non-finite.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render an unsigned integer as a JSON number.
pub fn uint(v: u64) -> String {
    format!("{v}")
}

/// Render a signed integer as a JSON number.
pub fn int(v: i64) -> String {
    format!("{v}")
}

/// Render a JSON string literal with escaping for quotes, backslashes
/// and control characters.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an object from `(key, already-rendered-value)` pairs.
pub fn object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}: {}", string(k), v))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Render an array from already-rendered items.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(", "))
}

/// A parsed JSON value from the subset this module emits.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced by [`num`] for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, parsed as `f64`.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array of values.
    Arr(Vec<JsonValue>),
    /// A nested object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if a nested object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse one JSON object (`{"k": value, ...}`, values possibly nested)
/// into a key → value map. Returns `None` on malformed input.
pub fn parse_object(input: &str) -> Option<BTreeMap<String, JsonValue>> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let map = p.parse_object_body()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(map)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_object_body(&mut self) -> Option<BTreeMap<String, JsonValue>> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(map);
        }
        loop {
            let key = self.parse_string()?;
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b'}' => {
                    self.pos += 1;
                    return Some(map);
                }
                _ => return None,
            }
        }
    }

    fn parse_value(&mut self) -> Option<JsonValue> {
        match self.peek()? {
            b'"' => Some(JsonValue::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => Some(JsonValue::Obj(self.parse_object_body()?)),
            b't' => self.parse_literal("true", JsonValue::Bool(true)),
            b'f' => self.parse_literal("false", JsonValue::Bool(false)),
            b'n' => self.parse_literal("null", JsonValue::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Option<JsonValue> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(value)
        } else {
            None
        }
    }

    fn parse_array(&mut self) -> Option<JsonValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b']' => {
                    self.pos += 1;
                    return Some(JsonValue::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                b => {
                    // Recover full UTF-8 sequences from the byte stream.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self.bytes.get(start..start + len)?;
                    out.push_str(std::str::from_utf8(chunk).ok()?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(JsonValue::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_parse_round_trip() {
        let line = object(&[
            ("tick", uint(4180)),
            ("t", num(0.0312)),
            ("name", string("zone \"a\"\n")),
            ("per_task", array(&[num(1.0), num(2.5)])),
            ("none", "null".to_string()),
            ("flag", "true".to_string()),
        ]);
        let map = parse_object(&line).expect("parse");
        assert_eq!(map["tick"].as_u64(), Some(4180));
        assert_eq!(map["t"].as_f64(), Some(0.0312));
        assert_eq!(map["name"].as_str(), Some("zone \"a\"\n"));
        let arr = map["per_task"].as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(map["none"], JsonValue::Null);
        assert_eq!(map["flag"], JsonValue::Bool(true));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(parse_object("{").is_none());
        assert!(parse_object("{\"a\": }").is_none());
        assert!(parse_object("{\"a\": 1} trailing").is_none());
        assert!(
            parse_object("{\"a\": {\"b\": 1}").is_none(),
            "unclosed nest"
        );
    }

    #[test]
    fn nested_objects_round_trip() {
        let line = object(&[
            ("name", string("top")),
            (
                "rows",
                array(&[
                    object(&[("slo", string("tick_budget")), ("burns", uint(2))]),
                    object(&[("slo", string("join_shed")), ("burns", uint(0))]),
                ]),
            ),
        ]);
        let map = parse_object(&line).expect("nested parse");
        let rows = map["rows"].as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_obj().unwrap();
        assert_eq!(first["slo"].as_str(), Some("tick_budget"));
        assert_eq!(first["burns"].as_u64(), Some(2));
    }

    #[test]
    fn unicode_survives() {
        let line = object(&[("s", string("héllo ☃"))]);
        let map = parse_object(&line).unwrap();
        assert_eq!(map["s"].as_str(), Some("héllo ☃"));
    }
}
