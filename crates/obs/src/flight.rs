//! Always-on flight recorder: a bounded ring of recent trace events
//! plus periodic metrics snapshots that can be dumped as a
//! deterministic postmortem bundle when something goes wrong.
//!
//! The recorder is a [`TraceSink`] — tee it onto whatever tracer the
//! session already uses ([`crate::Tracer::tee_with`]) and it silently
//! retains the last `ring_capacity` events and the last
//! `decision_capacity` [`TraceEvent::Decision`] audit records. When a
//! trigger fires (invariant-oracle violation, page-severity SLO burn,
//! degraded-mode entry), [`FlightRecorder::dump`] writes a bundle
//! directory:
//!
//! ```text
//! <dir>/postmortem-<seq>/
//!   events.jsonl     last-N events, one JSON line each (explain-able)
//!   decisions.jsonl  last-K Decision audit records
//!   metrics.json     most recent metrics snapshot (when one was noted)
//!   manifest.json    trigger, cause tick, model version, counts
//! ```
//!
//! Bundles contain no wall-clock timestamps or other nondeterminism:
//! two same-seed runs dump byte-identical bundles, which the
//! observability tests pin.

use crate::event::TraceEvent;
use crate::export;
use crate::sink::TraceSink;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Flight-recorder sizing and destination.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Events retained in the ring (oldest evicted first).
    pub ring_capacity: usize,
    /// `Decision` audit records retained separately, so decision
    /// context survives even when tick spans flood the main ring.
    pub decision_capacity: usize,
    /// Directory postmortem bundles are written under.
    pub dir: PathBuf,
    /// Bundles written at most per session (later triggers are
    /// counted but not dumped).
    pub max_dumps: u32,
}

impl FlightConfig {
    /// Default sizing writing bundles under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightConfig {
            ring_capacity: 512,
            decision_capacity: 64,
            dir: dir.into(),
            max_dumps: 8,
        }
    }
}

/// Bounded event recorder with deterministic postmortem dumps.
pub struct FlightRecorder {
    config: FlightConfig,
    events: VecDeque<TraceEvent>,
    decisions: VecDeque<TraceEvent>,
    dropped: u64,
    /// Most recent metrics snapshot (tick, JSON document).
    metrics: Option<(u64, String)>,
    /// Dump slots consumed so far; also the next bundle's sequence
    /// number. A slot is consumed when a bundle is prepared — a failed
    /// write burns its slot rather than retrying forever.
    dumps: u32,
    /// Triggers seen after `max_dumps` was reached.
    suppressed: u64,
}

impl FlightRecorder {
    /// A recorder with the given configuration. Nothing is written
    /// until a trigger calls [`FlightRecorder::dump`].
    pub fn new(config: FlightConfig) -> Self {
        FlightRecorder {
            events: VecDeque::with_capacity(config.ring_capacity.max(1)),
            decisions: VecDeque::with_capacity(config.decision_capacity.max(1)),
            config,
            dropped: 0,
            metrics: None,
            dumps: 0,
            suppressed: 0,
        }
    }

    /// Note a periodic metrics snapshot (a JSON document from
    /// `MetricsRegistry::to_json`); only the most recent one is kept.
    pub fn note_metrics(&mut self, tick: u64, json: String) {
        self.metrics = Some((tick, json));
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Dump slots consumed so far (bundles prepared).
    pub fn dumps(&self) -> u32 {
        self.dumps
    }

    /// Triggers that arrived after the dump budget was exhausted.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Write a postmortem bundle for a trigger at `tick` whose root
    /// cause happened at `cause` (`reason`: `slo_page`, `invariant` or
    /// `degraded`). Returns the [`TraceEvent::PostmortemDumped`] to
    /// emit, or `None` when the dump budget is exhausted or the bundle
    /// could not be written (postmortems are best-effort: I/O failure
    /// must never take the session down).
    ///
    /// Convenience for unshared recorders. When the recorder sits
    /// behind a mutex, use [`FlightRecorder::prepare_dump`] under the
    /// lock and [`PostmortemBundle::write`] after releasing it so the
    /// filesystem I/O never runs with the guard held.
    pub fn dump(
        &mut self,
        tick: u64,
        cause: u64,
        reason: &'static str,
        model_version: u64,
    ) -> Option<TraceEvent> {
        let bundle = self.prepare_dump(tick, cause, reason, model_version)?;
        match bundle.write() {
            Ok(()) => Some(bundle.into_marker()),
            Err(_) => None,
        }
    }

    /// Snapshot phase of a dump: consumes a budget slot and clones the
    /// retained rings into an owned [`PostmortemBundle`]. Performs no
    /// I/O, so it is safe to call while holding the lock that guards a
    /// shared recorder; `None` when the dump budget is exhausted.
    pub fn prepare_dump(
        &mut self,
        tick: u64,
        cause: u64,
        reason: &'static str,
        model_version: u64,
    ) -> Option<PostmortemBundle> {
        if self.dumps >= self.config.max_dumps {
            self.suppressed += 1;
            return None;
        }
        let seq = self.dumps;
        self.dumps += 1;
        let (metrics_tick, metrics_doc) = match &self.metrics {
            Some((t, doc)) => (*t as i64, doc.clone()),
            None => (-1, "{}".to_string()),
        };
        Some(PostmortemBundle {
            dir: self.bundle_dir(seq),
            events: self.events.iter().cloned().collect(),
            decisions: self.decisions.iter().cloned().collect(),
            metrics_tick,
            metrics_doc,
            ring_dropped: self.dropped,
            marker: TraceEvent::PostmortemDumped {
                tick,
                cause,
                reason,
                seq,
                events: self.events.len() as u32,
                decisions: self.decisions.len() as u32,
                model_version,
            },
        })
    }

    /// Directory the bundle with sequence number `seq` lands in.
    pub fn bundle_dir(&self, seq: u32) -> PathBuf {
        self.config.dir.join(format!("postmortem-{seq}"))
    }
}

/// An owned snapshot of everything a postmortem bundle contains,
/// detached from the recorder so the filesystem write can happen with
/// no locks held. Produced by [`FlightRecorder::prepare_dump`].
pub struct PostmortemBundle {
    dir: PathBuf,
    events: Vec<TraceEvent>,
    decisions: Vec<TraceEvent>,
    metrics_tick: i64,
    metrics_doc: String,
    ring_dropped: u64,
    marker: TraceEvent,
}

impl PostmortemBundle {
    /// Write phase of a dump: all the filesystem I/O. Call this after
    /// releasing any lock that guards the recorder.
    pub fn write(&self) -> io::Result<()> {
        let (seq, tick, cause, reason, model_version) = match &self.marker {
            TraceEvent::PostmortemDumped {
                seq,
                tick,
                cause,
                reason,
                model_version,
                ..
            } => (*seq, *tick, *cause, *reason, *model_version),
            _ => unreachable!("marker is always PostmortemDumped"),
        };
        std::fs::create_dir_all(&self.dir)?;
        write_jsonl(&self.dir.join("events.jsonl"), self.events.iter())?;
        write_jsonl(&self.dir.join("decisions.jsonl"), self.decisions.iter())?;
        std::fs::write(
            self.dir.join("metrics.json"),
            format!("{}\n", self.metrics_doc),
        )?;
        let manifest = export::object(&[
            ("bundle", export::string("postmortem")),
            ("seq", export::uint(seq as u64)),
            ("tick", export::uint(tick)),
            ("cause", export::uint(cause)),
            ("reason", export::string(reason)),
            ("model_version", export::uint(model_version)),
            ("events", export::uint(self.events.len() as u64)),
            ("decisions", export::uint(self.decisions.len() as u64)),
            ("ring_dropped", export::uint(self.ring_dropped)),
            ("metrics_tick", export::int(self.metrics_tick)),
        ]);
        std::fs::write(self.dir.join("manifest.json"), format!("{manifest}\n"))?;
        Ok(())
    }

    /// The [`TraceEvent::PostmortemDumped`] marker to emit once the
    /// bundle has been written.
    pub fn into_marker(self) -> TraceEvent {
        self.marker
    }
}

fn write_jsonl<'a>(path: &Path, events: impl Iterator<Item = &'a TraceEvent>) -> io::Result<()> {
    let mut out = io::BufWriter::new(std::fs::File::create(path)?);
    for ev in events {
        writeln!(out, "{}", ev.to_json())?;
    }
    out.flush()
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, event: &TraceEvent) {
        if self.events.len() == self.config.ring_capacity.max(1) {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
        if matches!(event, TraceEvent::Decision { .. }) {
            if self.decisions.len() == self.config.decision_capacity.max(1) {
                self.decisions.pop_front();
            }
            self.decisions.push_back(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tick: u64) -> TraceEvent {
        TraceEvent::ServerBooted { tick, server: 1 }
    }

    fn decision(tick: u64) -> TraceEvent {
        TraceEvent::Decision {
            tick,
            zone: 0,
            kind: "hold",
            model_version: 1,
            replicas: 2,
            users: 100,
            npcs: 50,
            predicted_tick_s: 0.02,
            n_max: 300,
            trigger: 240,
            l_max: 5,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("roia_flight_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_bounds_and_decisions_survive_floods() {
        let mut cfg = FlightConfig::new(temp_dir("ring"));
        cfg.ring_capacity = 4;
        cfg.decision_capacity = 2;
        let mut fr = FlightRecorder::new(cfg);
        fr.record(&decision(1));
        for t in 2..10 {
            fr.record(&span(t));
        }
        fr.record(&decision(10));
        assert_eq!(fr.len(), 4, "main ring bounded");
        // The early decision was evicted from the main ring but is
        // still retained in the decision ring.
        assert_eq!(fr.decisions.len(), 2);
        assert_eq!(fr.decisions[0].tick(), 1);
    }

    #[test]
    fn dump_writes_replayable_bundle_and_respects_budget() {
        let dir = temp_dir("dump");
        let mut cfg = FlightConfig::new(&dir);
        cfg.max_dumps = 1;
        let mut fr = FlightRecorder::new(cfg);
        for t in 0..5 {
            fr.record(&span(t));
        }
        fr.record(&decision(5));
        fr.note_metrics(5, "{\"counters\": {}}".to_string());

        let ev = fr.dump(6, 3, "slo_page", 7).expect("first dump succeeds");
        match ev {
            TraceEvent::PostmortemDumped {
                tick,
                cause,
                reason,
                seq,
                events,
                decisions,
                model_version,
            } => {
                assert_eq!((tick, cause, seq), (6, 3, 0));
                assert_eq!(reason, "slo_page");
                assert_eq!((events, decisions), (6, 1));
                assert_eq!(model_version, 7);
            }
            other => panic!("wrong event {other:?}"),
        }

        let bundle = fr.bundle_dir(0);
        let events_text = std::fs::read_to_string(bundle.join("events.jsonl")).unwrap();
        let decoded: Vec<TraceEvent> = events_text
            .lines()
            .map(|l| TraceEvent::from_json(l).expect("bundle line decodes"))
            .collect();
        assert_eq!(decoded.len(), 6);
        assert_eq!(decoded[0].tick(), 0);
        let manifest = std::fs::read_to_string(bundle.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"reason\": \"slo_page\""), "{manifest}");
        assert!(manifest.contains("\"model_version\": 7"), "{manifest}");
        let metrics = std::fs::read_to_string(bundle.join("metrics.json")).unwrap();
        assert!(metrics.contains("counters"));

        // Budget exhausted: second trigger is suppressed, not written.
        assert!(fr.dump(7, 3, "degraded", 7).is_none());
        assert_eq!(fr.suppressed(), 1);
        assert!(!fr.bundle_dir(1).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression for the lint C2 finding: the cluster used to hold the
    /// recorder mutex across the whole dump, filesystem writes included.
    /// The snapshot phase must touch no files so it is safe under a
    /// lock; only `PostmortemBundle::write` hits the disk.
    #[test]
    fn prepare_dump_performs_no_io() {
        let dir = temp_dir("two_phase");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        for t in 0..4 {
            fr.record(&span(t));
        }
        let bundle = fr.prepare_dump(5, 2, "invariant", 9).expect("slot free");
        assert!(
            !dir.exists(),
            "prepare_dump must not create the bundle directory"
        );
        assert_eq!(fr.dumps(), 1, "slot consumed at prepare time");

        // Snapshot is detached: later recorder mutation does not bleed
        // into the already-prepared bundle.
        fr.record(&span(99));
        bundle.write().expect("write phase succeeds");
        let events_text = std::fs::read_to_string(fr.bundle_dir(0).join("events.jsonl")).unwrap();
        assert_eq!(events_text.lines().count(), 4, "snapshot taken at prepare");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_events_dump_byte_identical_bundles() {
        let dir_a = temp_dir("det_a");
        let dir_b = temp_dir("det_b");
        let mut make = |dir: &PathBuf| {
            let mut fr = FlightRecorder::new(FlightConfig::new(dir));
            for t in 0..20 {
                fr.record(&span(t));
                if t % 5 == 0 {
                    fr.record(&decision(t));
                }
            }
            fr.note_metrics(19, "{\"g\": 1}".to_string());
            fr.dump(20, 11, "invariant", 3).expect("dump");
            fr.bundle_dir(0)
        };
        let (a, b) = (make(&dir_a), make(&dir_b));
        for file in [
            "events.jsonl",
            "decisions.jsonl",
            "metrics.json",
            "manifest.json",
        ] {
            let ba = std::fs::read(a.join(file)).unwrap();
            let bb = std::fs::read(b.join(file)).unwrap();
            assert_eq!(ba, bb, "{file} differs between identical runs");
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
