//! Log-linear-bucket latency histogram (HdrHistogram-style).
//!
//! Values are unsigned integers — by convention microseconds when
//! recording durations — so the hot path never touches floats. The
//! bucket layout is *log-linear*: values below [`SUB_BUCKETS`] land in
//! exact unit-width buckets; above that, each power-of-two range is
//! split into [`SUB_BUCKETS`] equal sub-buckets, bounding the relative
//! quantile error at `1/SUB_BUCKETS` (≈ 3%) across the full `u64`
//! range. The bucket array is fixed-size and allocated once, so
//! recording is a couple of shifts plus an array increment.

/// Number of low-order bits resolved exactly (sub-bucket granularity).
const SUB_BITS: u32 = 5;

/// Sub-buckets per power-of-two group (and size of the exact region).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Power-of-two groups above the exact region (msb in `SUB_BITS..=63`).
const GROUPS: usize = 64 - SUB_BITS as usize;

/// Total bucket count of the fixed layout.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + GROUPS * SUB_BUCKETS;

/// Bucket index for a recorded value.
fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let sub = (value >> (msb - SUB_BITS)) as usize - SUB_BUCKETS;
        SUB_BUCKETS + (msb - SUB_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// Inclusive `(lower, upper)` value bounds covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index out of range");
    if index < SUB_BUCKETS {
        (index as u64, index as u64)
    } else {
        let g = (index - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
        let shift = g as u32; // msb - SUB_BITS
        let lower = (((SUB_BUCKETS + sub) as u128) << shift) as u64;
        let upper_excl = ((SUB_BUCKETS + sub + 1) as u128) << shift;
        let upper = (upper_excl - 1).min(u64::MAX as u128) as u64;
        (lower, upper)
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// 50th percentile (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Fixed-bucket log-linear histogram over `u64` values.
///
/// ```
/// let mut h = roia_obs::Histogram::new();
/// for v in [3_u64, 5, 40_000, 41_000, 39_500] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 5);
/// assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram with the full fixed bucket layout.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value. Constant-time; no allocation, no floats.
    pub fn record(&mut self, value: u64) {
        self.counts[index_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0.0 when empty (export path only).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q·count)`-th value, clamped to the observed
    /// `max`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0_u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one. `merge(a, b)` yields the
    /// same bucket counts and aggregates as recording the union of both
    /// value streams into a fresh histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Percentile summary snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }

    /// Count held in bucket `index` (test/inspection path).
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts[index]
    }
}

/// Convert a duration in seconds to whole microseconds for recording,
/// clamping negatives and non-finite values to zero. Float-to-int
/// conversion happens here, at the edge, not inside the histogram.
pub fn secs_to_micros(seconds: f64) -> u64 {
    if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e6) as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_unit_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_range_contiguously() {
        let mut expected_lower = 0_u64;
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lower, "gap before bucket {i}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKET_COUNT - 1);
                return;
            }
            expected_lower = hi + 1;
        }
        panic!("layout never reached u64::MAX");
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [
            0,
            1,
            31,
            32,
            33,
            63,
            64,
            1023,
            1024,
            1025,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = index_of(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {i} [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000_u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Relative error bounded by the sub-bucket width (~3%).
        assert!((s.p50 as f64 - 500.0).abs() / 500.0 < 0.04, "p50={}", s.p50);
        assert!((s.p99 as f64 - 990.0).abs() / 990.0 < 0.04, "p99={}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s, HistSnapshot::default());
    }

    #[test]
    fn merge_matches_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for v in [1_u64, 7, 100, 10_000] {
            a.record(v);
            u.record(v);
        }
        for v in [2_u64, 100, 999_999] {
            b.record(v);
            u.record(v);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn secs_to_micros_clamps() {
        assert_eq!(secs_to_micros(0.001), 1000);
        assert_eq!(secs_to_micros(-1.0), 0);
        assert_eq!(secs_to_micros(f64::NAN), 0);
    }
}
