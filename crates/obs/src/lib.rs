//! # roia-obs — the operator-facing telemetry spine
//!
//! Zero-dependency, allocation-conscious observability for the ROIA
//! reproduction, in three pillars:
//!
//! 1. **Structured event tracing** ([`event`], [`sink`]): typed
//!    records — tick spans with per-task child timings, control
//!    rounds, the decision audit trail, migration lifecycles
//!    (planned → issued → settled), chaos faults, calibration refits —
//!    each carrying monotonic sim-time, server/zone ids and a
//!    causality id linking a controller decision to every action it
//!    spawned. Sinks: in-memory ring ([`RingSink`]) and JSONL file
//!    ([`JsonlSink`]); emitters hold a cheap cloneable [`Tracer`].
//! 2. **Metrics registry** ([`metrics`], [`hist`]): counters, gauges
//!    and HdrHistogram-style log-linear latency histograms (integer
//!    microseconds, no floats in the hot path), snapshotable as
//!    p50/p90/p99/p99.9/max and exportable as Prometheus text
//!    exposition or JSON.
//! 3. **Decision audit trail** ([`event::TraceEvent::Decision`],
//!    [`event::TraceEvent::MigrationBudget`]): every model-driven
//!    decision records its inputs and Eq. 1–5 evaluations with the
//!    numbers plugged in, so "why did the controller add a replica at
//!    tick 4180?" is answerable from the trace alone (see the
//!    `explain` binary in `roia-bench`).
//!
//! The existing `MetricsLog`/`Series` machinery in `rtf-core`/`roia-sim`
//! remains the *model-facing* measurement path (calibration inputs);
//! this crate is the *operator-facing* one. It is a leaf crate: events
//! carry primitives only, and emitters translate their ids at the call
//! site.

#![warn(missing_docs)]

pub mod attrib;
pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod metrics;
pub mod sink;
pub mod slo;

pub use attrib::{AttributionAccumulator, TermReport, TERM_COUNT, TERM_SYMBOLS};
pub use event::{TraceEvent, TASK_SLOTS};
pub use flight::{FlightConfig, FlightRecorder};
pub use hist::{bucket_bounds, secs_to_micros, HistSnapshot, Histogram, BUCKET_COUNT};
pub use metrics::{
    escape_label_value, valid_label_name, valid_metric_name, MetricKey, MetricsRegistry,
};
pub use sink::{HashSink, JsonlSink, RingSink, TeeSink, TraceSink, Tracer};
pub use slo::{SloEngine, SloGauge, SloSpec, SloTransition};
