//! Metrics registry: counters, gauges and latency histograms keyed by
//! `(name, optional numeric label)`, with Prometheus text exposition
//! and JSON export.
//!
//! Keys are `Copy` pairs of `&'static str` and a numeric label value
//! (e.g. `("server", 3)`), so the hot path allocates nothing and never
//! formats strings — rendering happens only at export time.

use crate::export;
use crate::hist::{HistSnapshot, Histogram};
use std::collections::BTreeMap;

/// Registry key: a metric name plus an optional single numeric label
/// (`("server", 3)` renders as `name{server="3"}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (Prometheus-style snake case, unit suffixed).
    pub name: &'static str,
    /// Optional `(label_name, label_value)` pair.
    pub label: Option<(&'static str, u64)>,
}

impl MetricKey {
    /// An unlabelled key.
    pub fn plain(name: &'static str) -> Self {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        MetricKey { name, label: None }
    }

    /// A key labelled with one numeric dimension.
    pub fn labelled(name: &'static str, label: &'static str, value: u64) -> Self {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        debug_assert!(valid_label_name(label), "invalid label name {label:?}");
        MetricKey {
            name,
            label: Some((label, value)),
        }
    }

    fn render(&self, extra: Option<(&str, &str)>) -> String {
        let esc = |v: &str| escape_label_value(v);
        match (self.label, extra) {
            (None, None) => self.name.to_string(),
            (Some((k, v)), None) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
            (None, Some((ek, ev))) => format!("{}{{{}=\"{}\"}}", self.name, ek, esc(ev)),
            (Some((k, v)), Some((ek, ev))) => {
                format!("{}{{{}=\"{}\",{}=\"{}\"}}", self.name, k, v, ek, esc(ev))
            }
        }
    }
}

/// True when `name` matches the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// True when `name` matches the Prometheus label-name grammar
/// `[a-zA-Z_][a-zA-Z0-9_]*` (no colons — those are reserved for
/// recording rules).
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value per the exposition format: backslash, double
/// quote and line feed must be escaped; everything else passes through.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape HELP text per the exposition format: only backslash and line
/// feed are escaped (quotes are legal in help docstrings).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One-line HELP docstring for the workspace's metric families. Unknown
/// names fall back to a generic line so the exposition stays conformant
/// (every `# TYPE` is preceded by a `# HELP` for the same family).
fn help_text(name: &str) -> &'static str {
    match name {
        "roia_ticks_total" => "Simulation ticks executed",
        "roia_tick_duration_us" => "Per-server tick duration in microseconds",
        "roia_violations_total" => "Server-ticks at or above the U threshold",
        "roia_users" => "Connected users",
        "roia_servers" => "Active servers",
        "roia_unhomed" => "Users currently without a home server",
        "roia_migrations_total" => "User migrations completed",
        "roia_migrations_initiated_total" => "Migrations initiated (sender side)",
        "roia_migrations_received_total" => "Migrations received (receiver side)",
        "roia_servers_booted_total" => "Server boot events",
        "roia_servers_crashed_total" => "Server crash events",
        "roia_servers_removed_total" => "Server removal events",
        "roia_degraded_entries_total" => "Transitions into degraded mode",
        "roia_degraded_ticks_total" => "Ticks spent in degraded mode",
        "roia_faults_injected_total" => "Chaos faults injected",
        "roia_join_queue_depth" => "Joins waiting in the admission queue",
        "roia_joins_queued_total" => "Join requests deferred to the queue",
        "roia_joins_shed_total" => "Join requests shed under overload",
        "roia_model_version" => "Calibration model version in force",
        "roia_refits_total" => "Online calibrator refits published",
        "roia_slo_burns_total" => "SLO burn-rate alerts raised",
        "roia_slo_recoveries_total" => "SLO burn-rate alerts recovered",
        "roia_slo_burning" => "1 while the SLO is in burn state",
        "roia_slo_fast_burn_pm" => "Fast-window burn rate, milli-multiples of budget",
        "roia_slo_slow_burn_pm" => "Slow-window burn rate, milli-multiples of budget",
        "netdemo_ingress_bytes_per_tick" => "Wire bytes received per tick",
        "netdemo_egress_bytes_per_tick" => "Wire bytes sent per tick",
        _ => "Metric emitted by the roia workspace",
    }
}

/// In-memory metrics store. One registry per cluster/session; all
/// mutation is by `&mut self` so the owner controls synchronisation.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, i64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a monotonic counter.
    pub fn add(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Set a gauge to an instantaneous value.
    pub fn set(&mut self, key: MetricKey, value: i64) {
        self.gauges.insert(key, value);
    }

    /// Record one value into a histogram (created on first use).
    pub fn record(&mut self, key: MetricKey, value: u64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// Record a batch of values into one histogram — a single map lookup
    /// for the whole slice, for hot loops that would otherwise pay the
    /// key lookup per sample.
    pub fn record_many(&mut self, key: MetricKey, values: &[u64]) {
        if values.is_empty() {
            return;
        }
        let hist = self.histograms.entry(key).or_default();
        for v in values {
            hist.record(*v);
        }
    }

    /// Current counter value (0 when never incremented).
    pub fn counter(&self, key: MetricKey) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, key: MetricKey) -> Option<i64> {
        self.gauges.get(&key).copied()
    }

    /// The histogram under `key`, if any values were recorded.
    pub fn histogram(&self, key: MetricKey) -> Option<&Histogram> {
        self.histograms.get(&key)
    }

    /// Snapshots of every histogram, keyed for rendering.
    pub fn histogram_snapshots(&self) -> Vec<(MetricKey, HistSnapshot)> {
        self.histograms
            .iter()
            .map(|(k, h)| (*k, h.snapshot()))
            .collect()
    }

    /// Fold `other` into this registry (counters add, gauges take
    /// `other`'s value, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(*k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(*k).or_default().merge(h);
        }
    }

    /// Render the registry in Prometheus text exposition format: per
    /// metric family one `# HELP` line, then one `# TYPE` line, then the
    /// samples. Histograms render as summaries: quantile series plus
    /// `_count`, `_sum` and `_max` companions.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<(String, &'static str)> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
            if last_type.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((name, kind)) {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(help_text(name))));
                out.push_str(&format!("# TYPE {name} {kind}\n"));
            }
            last_type = Some((name.to_string(), kind));
        };
        for (key, value) in &self.counters {
            type_line(&mut out, key.name, "counter");
            out.push_str(&format!("{} {}\n", key.render(None), value));
        }
        for (key, value) in &self.gauges {
            type_line(&mut out, key.name, "gauge");
            out.push_str(&format!("{} {}\n", key.render(None), value));
        }
        for (key, hist) in &self.histograms {
            type_line(&mut out, key.name, "summary");
            let s = hist.snapshot();
            for (q, v) in [
                ("0.5", s.p50),
                ("0.9", s.p90),
                ("0.99", s.p99),
                ("0.999", s.p999),
            ] {
                out.push_str(&format!("{} {}\n", key.render(Some(("quantile", q))), v));
            }
            let base = key.render(None);
            let (plain, labels) = match base.find('{') {
                Some(i) => (&base[..i], &base[i..]),
                None => (base.as_str(), ""),
            };
            out.push_str(&format!("{plain}_count{labels} {}\n", s.count));
            out.push_str(&format!("{plain}_sum{labels} {}\n", s.sum));
            out.push_str(&format!("{plain}_max{labels} {}\n", s.max));
        }
        out
    }

    /// Render the registry as one JSON object with `counters`, `gauges`
    /// and `histograms` sections (histograms as percentile snapshots).
    pub fn to_json(&self) -> String {
        use export::{object, uint};
        let counters: Vec<(String, String)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.render(None), uint(*v)))
            .collect();
        let gauges: Vec<(String, String)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.render(None), export::int(*v)))
            .collect();
        let hists: Vec<(String, String)> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let s = h.snapshot();
                (
                    k.render(None),
                    object(&[
                        ("count", uint(s.count)),
                        ("sum", uint(s.sum)),
                        ("min", uint(s.min)),
                        ("max", uint(s.max)),
                        ("p50", uint(s.p50)),
                        ("p90", uint(s.p90)),
                        ("p99", uint(s.p99)),
                        ("p999", uint(s.p999)),
                    ]),
                )
            })
            .collect();
        let section = |items: Vec<(String, String)>| {
            let body: Vec<String> = items
                .iter()
                .map(|(k, v)| format!("{}: {}", export::string(k), v))
                .collect();
            format!("{{{}}}", body.join(", "))
        };
        object(&[
            ("counters", section(counters)),
            ("gauges", section(gauges)),
            ("histograms", section(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = MetricsRegistry::new();
        let c = MetricKey::labelled("roia_migrations_total", "server", 1);
        r.add(c, 2);
        r.add(c, 3);
        assert_eq!(r.counter(c), 5);
        let g = MetricKey::plain("roia_servers");
        r.set(g, 4);
        assert_eq!(r.gauge(g), Some(4));
        let h = MetricKey::labelled("roia_tick_duration_us", "server", 1);
        for v in [100, 200, 300] {
            r.record(h, v);
        }
        assert_eq!(r.histogram(h).unwrap().count(), 3);
    }

    #[test]
    fn prometheus_exposition_has_quantiles_and_companions() {
        let mut r = MetricsRegistry::new();
        let h = MetricKey::labelled("roia_tick_duration_us", "server", 0);
        for v in 1..=100_u64 {
            r.record(h, v);
        }
        r.add(MetricKey::plain("roia_ticks_total"), 100);
        let text = r.prometheus();
        assert!(text.contains("# TYPE roia_tick_duration_us summary"));
        assert!(text.contains("roia_tick_duration_us{server=\"0\",quantile=\"0.5\"}"));
        assert!(text.contains("roia_tick_duration_us{server=\"0\",quantile=\"0.99\"}"));
        assert!(text.contains("roia_tick_duration_us_count{server=\"0\"} 100"));
        assert!(text.contains("roia_tick_duration_us_max{server=\"0\"} 100"));
        assert!(text.contains("# TYPE roia_ticks_total counter"));
        assert!(text.contains("roia_ticks_total 100"));
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut r = MetricsRegistry::new();
        r.add(MetricKey::plain("c"), 1);
        r.set(MetricKey::labelled("g", "zone", 0), -2);
        r.record(MetricKey::plain("h"), 42);
        let json = r.to_json();
        // The registry JSON nests one level deep, which the flat parser
        // rejects by design — sanity-check shape textually instead.
        assert!(json.starts_with("{\"counters\": {"));
        assert!(json.contains("\"g{zone=\\\"0\\\"}\": -2"));
        assert!(json.contains("\"p99\": 42"));
    }

    #[test]
    fn merge_combines_sections() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let k = MetricKey::plain("n");
        a.add(k, 1);
        b.add(k, 2);
        b.record(k, 10);
        a.merge(&b);
        assert_eq!(a.counter(k), 3);
        assert_eq!(a.histogram(k).unwrap().count(), 1);
    }
}
