//! Trace sinks and the cheap cloneable [`Tracer`] handle.
//!
//! Emitters hold a [`Tracer`] and call [`Tracer::emit`]; a disabled
//! tracer (the default) short-circuits to a single `Option` check, so
//! instrumented hot paths cost nothing when tracing is off. Enabled
//! tracers fan into a shared [`TraceSink`]: [`RingSink`] keeps the last
//! N events in memory (the low-overhead default for benches),
//! [`JsonlSink`] streams every event as one JSON line to a buffered
//! writer (the replayable format the `explain` tool consumes).

// lint: allow-file(hot_lock, "the per-sink mutex is the tracing boundary's documented contract (emit serialises through one lock); parallel fan-out swaps in private per-worker buffer sinks, so this mutex is uncontended whenever workers run")
use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for trace events. Implementations must be cheap per
/// event; the tracer serialises access behind one mutex.
pub trait TraceSink: Send {
    /// Consume one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Fixed-capacity in-memory ring of the most recent events.
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted due to capacity since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain and return all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event.clone());
    }
}

/// Streaming FNV-1a hash over the JSONL encoding of the trace.
///
/// Records nothing but a 64-bit digest and an event count, so two runs can
/// be compared for byte-identical traces in O(1) memory — the primitive
/// behind the determinism double-run checker.
pub struct HashSink {
    hash: u64,
    events: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl HashSink {
    /// A fresh hasher (FNV-1a offset basis).
    pub fn new() -> Self {
        HashSink {
            hash: FNV_OFFSET,
            events: 0,
        }
    }

    /// Digest of every JSON line recorded so far (including newlines).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of events hashed.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl Default for HashSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for HashSink {
    fn record(&mut self, event: &TraceEvent) {
        for b in event.to_json().bytes() {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.hash ^= u64::from(b'\n');
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
        self.events += 1;
    }
}

/// Streams each event as one JSON line to a buffered writer.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
    written: u64,
}

impl JsonlSink {
    /// Create (truncating) a JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }

    /// Wrap any writer (tests use `Vec<u8>` via a cursor).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(writer),
            written: 0,
        }
    }

    /// Lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        // Trace output is best-effort: an I/O error must never abort
        // the simulation, so errors are swallowed here.
        let _ = writeln!(self.out, "{}", event.to_json());
        self.written += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// A sink that forwards every event to several child sinks (e.g. ring
/// for cheap in-memory inspection plus JSONL for replay).
pub struct TeeSink {
    sinks: Vec<Arc<Mutex<dyn TraceSink>>>,
}

impl TeeSink {
    /// Forward to all of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<Mutex<dyn TraceSink>>>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&mut self, event: &TraceEvent) {
        for sink in &self.sinks {
            if let Ok(mut s) = sink.lock() {
                s.record(event);
            }
        }
    }

    fn flush(&mut self) {
        for sink in &self.sinks {
            if let Ok(mut s) = sink.lock() {
                s.flush(); // lint: allow(blocking, "the per-sink mutex is the only thing serialising sink access, so a JsonlSink flush cannot move outside it; flush runs at session end / checkpoint, never inside the tick loop")
            }
        }
    }
}

/// Cheap cloneable handle emitters hold. Disabled by default; cloning
/// shares the underlying sink.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<dyn TraceSink>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer: `emit` is a single branch.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer writing into an existing shared sink.
    pub fn to_sink(sink: Arc<Mutex<dyn TraceSink>>) -> Self {
        Tracer { inner: Some(sink) }
    }

    /// Convenience: a tracer plus a handle to its ring sink, for
    /// reading events back after a run.
    pub fn ring(capacity: usize) -> (Self, Arc<Mutex<RingSink>>) {
        let ring = Arc::new(Mutex::new(RingSink::new(capacity)));
        let sink: Arc<Mutex<dyn TraceSink>> = ring.clone();
        (Tracer { inner: Some(sink) }, ring)
    }

    /// Convenience: a tracer streaming JSONL to `path`.
    pub fn jsonl(path: impl AsRef<Path>) -> io::Result<Self> {
        let sink: Arc<Mutex<dyn TraceSink>> = Arc::new(Mutex::new(JsonlSink::create(path)?));
        Ok(Tracer { inner: Some(sink) })
    }

    /// Convenience: a tracer plus a handle to its [`HashSink`], for
    /// comparing two runs' traces without retaining either.
    pub fn hashing() -> (Self, Arc<Mutex<HashSink>>) {
        let hasher = Arc::new(Mutex::new(HashSink::new()));
        let sink: Arc<Mutex<dyn TraceSink>> = hasher.clone();
        (Tracer { inner: Some(sink) }, hasher)
    }

    /// A tracer that feeds both this tracer's sink (when enabled) and
    /// `extra`. Lets an auditor observe the event stream without
    /// disturbing whatever sink the caller configured.
    pub fn tee_with(&self, extra: Arc<Mutex<dyn TraceSink>>) -> Self {
        match &self.inner {
            None => Tracer { inner: Some(extra) },
            Some(existing) => {
                let tee = TeeSink::new(vec![existing.clone(), extra]);
                Tracer {
                    inner: Some(Arc::new(Mutex::new(tee))),
                }
            }
        }
    }

    /// True when events will actually be recorded. Check this before
    /// assembling an expensive event payload.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event (no-op when disabled).
    pub fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.inner {
            if let Ok(mut s) = sink.lock() {
                s.record(&event);
            }
        }
    }

    /// Flush the underlying sink (no-op when disabled).
    pub fn flush(&self) {
        if let Some(sink) = &self.inner {
            if let Ok(mut s) = sink.lock() {
                s.flush(); // lint: allow(blocking, "the per-sink mutex is the only thing serialising sink access, so a JsonlSink flush cannot move outside it; flush runs at session end / checkpoint, never inside the tick loop")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64) -> TraceEvent {
        TraceEvent::ServerBooted { tick, server: 0 }
    }

    #[test]
    fn disabled_tracer_is_silent() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(ev(1)); // must not panic
        t.flush();
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let (t, ring) = Tracer::ring(3);
        for i in 0..5 {
            t.emit(ev(i));
        }
        let r = ring.lock().unwrap();
        let ticks: Vec<u64> = r.events().map(|e| e.tick()).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("roia_obs_sink_test.jsonl");
        {
            let t = Tracer::jsonl(&path).unwrap();
            t.emit(ev(7));
            t.emit(TraceEvent::ActionResolved {
                tick: 8,
                action_id: 1,
                outcome: "succeeded",
            });
            t.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::from_json(l).expect("line decodes"))
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tick(), 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tee_fans_out() {
        let ring_a = Arc::new(Mutex::new(RingSink::new(10)));
        let ring_b = Arc::new(Mutex::new(RingSink::new(10)));
        let tee = TeeSink::new(vec![ring_a.clone(), ring_b.clone()]);
        let t = Tracer::to_sink(Arc::new(Mutex::new(tee)));
        t.emit(ev(1));
        assert_eq!(ring_a.lock().unwrap().len(), 1);
        assert_eq!(ring_b.lock().unwrap().len(), 1);
    }

    #[test]
    fn clones_share_the_sink() {
        let (t, ring) = Tracer::ring(10);
        let t2 = t.clone();
        t.emit(ev(1));
        t2.emit(ev(2));
        assert_eq!(ring.lock().unwrap().len(), 2);
    }
}
