//! Declarative service-level objectives evaluated with multi-window
//! burn-rate rules (SRE-style).
//!
//! Each [`SloSpec`] names an objective, an error budget (the fraction
//! of samples allowed to be bad), and alerting thresholds expressed as
//! *burn rates* — multiples of the budget the observed bad fraction is
//! consuming. The engine keeps two windows per objective:
//!
//! - a **fast window** of the most recent [`FAST_WINDOW_TICKS`] sim
//!   ticks (one minute of sim-time at the paper's 25 Hz), which reacts
//!   quickly and gates the alert's severity, and
//! - a **slow window** covering the whole session, which suppresses
//!   alerts for brief blips that do not endanger the overall budget.
//!
//! An alert fires ([`SloTransition::Burn`]) when *both* windows exceed
//! their enter thresholds; it clears ([`SloTransition::Recovered`])
//! after the objective has stopped accruing *new* bad samples for
//! `exit_clean_ticks` consecutive ticks — a fresh-sample hysteresis
//! exit (mirroring the degraded-mode state machine) rather than
//! waiting a full fast-window drain. Burn rates in events and gauges
//! are integer permille so the trace stays float-comparison free.
//!
//! Feed the engine once per sim tick: any number of
//! [`SloEngine::observe`] calls, then one [`SloEngine::end_tick`],
//! which returns the typed transitions to emit as
//! [`TraceEvent::SloBurn`] / [`TraceEvent::SloRecovered`].

use crate::event::TraceEvent;

/// Fast-window length: one minute of sim-time at 25 Hz.
pub const FAST_WINDOW_TICKS: usize = 1500;

/// Burn rates are reported in permille (1000 = exactly consuming the
/// budget); values are clamped here so JSON stays finite and integral.
pub const MAX_BURN_PM: u64 = 1_000_000_000;

/// Objective name: fraction of server ticks at or over the U budget.
pub const SLO_TICK_BUDGET: &str = "tick_budget";
/// Objective name: fraction of server ticks over 90% of U (p99 proxy).
pub const SLO_TICK_P99: &str = "tick_p99";
/// Objective name: invariant-oracle violations (zero tolerance).
pub const SLO_INVARIANTS: &str = "invariant_violations";
/// Objective name: fraction of join attempts shed.
pub const SLO_JOIN_SHED: &str = "join_shed";
/// Objective name: fraction of transport sessions under backpressure.
pub const SLO_BACKPRESSURE: &str = "backpressure_duty";

/// One declarative objective: budget plus burn-rate alert thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Objective name (interned trace vocabulary).
    pub name: &'static str,
    /// Error budget: allowed bad fraction of samples (e.g. `0.001`).
    pub budget: f64,
    /// Fast-window burn rate (budget multiples) required to alert.
    pub enter_fast_burn: f64,
    /// Fast-window burn rate at which the alert is `page` severity
    /// instead of `warn`.
    pub page_fast_burn: f64,
    /// Slow-window burn rate that must *also* hold for the alert to
    /// fire (the multi-window AND).
    pub enter_slow_burn: f64,
    /// Consecutive ticks without new bad samples required to clear.
    pub exit_clean_ticks: u32,
}

impl SloSpec {
    /// Effective budget, floored so burn rates stay finite even for
    /// zero-tolerance objectives.
    fn budget_floor(&self) -> f64 {
        self.budget.max(1e-9)
    }
}

/// Fixed-length ring of per-tick `(bad, total)` sample counts with
/// running sums, so windowed burn rates are O(1) per tick.
#[derive(Debug, Clone)]
struct Window {
    buf: Vec<(u64, u64)>,
    head: usize,
    filled: bool,
    bad: u64,
    total: u64,
}

impl Window {
    fn new(capacity: usize) -> Self {
        Window {
            buf: vec![(0, 0); capacity.max(1)],
            head: 0,
            filled: false,
            bad: 0,
            total: 0,
        }
    }

    fn push(&mut self, bad: u64, total: u64) {
        let (old_bad, old_total) = self.buf[self.head];
        self.bad = self.bad - old_bad + bad;
        self.total = self.total - old_total + total;
        self.buf[self.head] = (bad, total);
        self.head += 1;
        if self.head == self.buf.len() {
            self.head = 0;
            self.filled = true;
        }
    }

    /// Bad fraction over the window (0 when no samples).
    fn bad_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bad as f64 / self.total as f64
        }
    }
}

/// A burn alert currently in force for one objective.
#[derive(Debug, Clone, Copy)]
struct ActiveBurn {
    /// First bad tick of the episode (the `cause` id).
    since: u64,
    /// Ticks spent burning so far.
    ticks: u64,
    /// Severity already announced (`warn` may escalate to `page`).
    severity: &'static str,
}

/// Per-objective evaluation state.
#[derive(Debug, Clone)]
struct Objective {
    spec: SloSpec,
    fast: Window,
    slow_bad: u64,
    slow_total: u64,
    /// Samples accumulated for the current tick (drained by
    /// `end_tick`).
    pending_bad: u64,
    pending_total: u64,
    /// First tick with bad samples since the fast window last fully
    /// drained — the `cause` id when the alert fires.
    dirty_since: Option<u64>,
    burn: Option<ActiveBurn>,
    /// Re-arm latch: after a recovery the alert stays disarmed until
    /// the enter condition has gone false at least once, so a slowly
    /// draining fast window cannot flap burn/recover cycles.
    armed: bool,
    clean_streak: u32,
    last_fast_pm: u64,
    last_slow_pm: u64,
}

/// One state transition returned by [`SloEngine::end_tick`].
#[derive(Debug, Clone, PartialEq)]
pub enum SloTransition {
    /// An objective started burning (emit as [`TraceEvent::SloBurn`]).
    Burn {
        /// Objective name.
        slo: &'static str,
        /// First tick of the over-threshold streak.
        cause: u64,
        /// `page` or `warn`.
        severity: &'static str,
        /// Fast-window burn rate, permille.
        fast_burn_pm: u64,
        /// Slow-window burn rate, permille.
        slow_burn_pm: u64,
    },
    /// A burning objective cleared (emit as
    /// [`TraceEvent::SloRecovered`]).
    Recovered {
        /// Objective name.
        slo: &'static str,
        /// First tick of the burn streak.
        cause: u64,
        /// Ticks spent burning.
        burn_ticks: u64,
    },
}

impl SloTransition {
    /// Convert into the trace event to emit at `tick`.
    pub fn to_event(&self, tick: u64) -> TraceEvent {
        match *self {
            SloTransition::Burn {
                slo,
                cause,
                severity,
                fast_burn_pm,
                slow_burn_pm,
            } => TraceEvent::SloBurn {
                tick,
                cause,
                slo,
                severity,
                fast_burn_pm,
                slow_burn_pm,
            },
            SloTransition::Recovered {
                slo,
                cause,
                burn_ticks,
            } => TraceEvent::SloRecovered {
                tick,
                cause,
                slo,
                burn_ticks,
            },
        }
    }
}

/// Point-in-time burn gauge for one objective (dashboard / metrics
/// export material).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloGauge {
    /// Objective name.
    pub slo: &'static str,
    /// Fast-window burn rate, permille.
    pub fast_burn_pm: u64,
    /// Slow-window burn rate, permille.
    pub slow_burn_pm: u64,
    /// True while the alert is in force.
    pub burning: bool,
}

/// Multi-window burn-rate evaluator over a set of objectives.
#[derive(Debug, Clone)]
pub struct SloEngine {
    objectives: Vec<Objective>,
}

impl SloEngine {
    /// An engine over custom objectives.
    pub fn new(specs: &[SloSpec]) -> Self {
        SloEngine {
            objectives: specs
                .iter()
                .map(|spec| Objective {
                    spec: *spec,
                    fast: Window::new(FAST_WINDOW_TICKS),
                    slow_bad: 0,
                    slow_total: 0,
                    pending_bad: 0,
                    pending_total: 0,
                    dirty_since: None,
                    burn: None,
                    armed: true,
                    clean_streak: 0,
                    last_fast_pm: 0,
                    last_slow_pm: 0,
                })
                .collect(),
        }
    }

    /// The standard objective set the cluster arms: tick budget, p99
    /// proxy, invariants (zero tolerance), join shedding and transport
    /// backpressure duty cycle.
    pub fn standard() -> Self {
        Self::new(&[
            SloSpec {
                name: SLO_TICK_BUDGET,
                budget: 0.001,
                enter_fast_burn: 10.0,
                page_fast_burn: 100.0,
                enter_slow_burn: 1.0,
                exit_clean_ticks: 125,
            },
            SloSpec {
                name: SLO_TICK_P99,
                budget: 0.01,
                enter_fast_burn: 5.0,
                page_fast_burn: 50.0,
                enter_slow_burn: 1.0,
                exit_clean_ticks: 125,
            },
            SloSpec {
                name: SLO_INVARIANTS,
                budget: 0.0,
                enter_fast_burn: 1.0,
                page_fast_burn: 1.0,
                enter_slow_burn: 0.0,
                exit_clean_ticks: 250,
            },
            SloSpec {
                name: SLO_JOIN_SHED,
                budget: 0.01,
                enter_fast_burn: 5.0,
                page_fast_burn: 50.0,
                enter_slow_burn: 1.0,
                exit_clean_ticks: 125,
            },
            SloSpec {
                name: SLO_BACKPRESSURE,
                budget: 0.05,
                enter_fast_burn: 5.0,
                page_fast_burn: 15.0,
                enter_slow_burn: 1.0,
                exit_clean_ticks: 125,
            },
        ])
    }

    /// Accumulate `bad` out of `total` samples for objective `name`
    /// within the current tick. Unknown names are ignored (callers may
    /// feed a superset of the configured objectives).
    pub fn observe(&mut self, name: &str, bad: u64, total: u64) {
        for obj in &mut self.objectives {
            if obj.spec.name == name {
                obj.pending_bad += bad.min(total);
                obj.pending_total += total;
                return;
            }
        }
    }

    /// Close out the current sim tick: push pending samples into both
    /// windows, run every objective's alert state machine, and return
    /// the transitions (to be emitted as trace events at `tick`).
    pub fn end_tick(&mut self, tick: u64) -> Vec<SloTransition> {
        let mut out = Vec::new();
        for obj in &mut self.objectives {
            let bad = obj.pending_bad;
            let total = obj.pending_total;
            obj.pending_bad = 0;
            obj.pending_total = 0;

            obj.fast.push(bad, total);
            obj.slow_bad += bad;
            obj.slow_total += total;

            let budget = obj.spec.budget_floor();
            let fast_burn = obj.fast.bad_fraction() / budget;
            let slow_frac = if obj.slow_total == 0 {
                0.0
            } else {
                obj.slow_bad as f64 / obj.slow_total as f64
            };
            let slow_burn = slow_frac / budget;
            obj.last_fast_pm = burn_pm(fast_burn);
            obj.last_slow_pm = burn_pm(slow_burn);

            if bad > 0 && obj.dirty_since.is_none() {
                obj.dirty_since = Some(tick);
            }
            if obj.fast.bad == 0 {
                obj.dirty_since = None;
            }

            let over = fast_burn >= obj.spec.enter_fast_burn
                && slow_burn >= obj.spec.enter_slow_burn
                && obj.fast.bad > 0;
            let severity_now = if fast_burn >= obj.spec.page_fast_burn {
                "page"
            } else {
                "warn"
            };

            if !over {
                obj.armed = true;
            }

            match &mut obj.burn {
                None => {
                    if over && obj.armed {
                        let cause = obj.dirty_since.unwrap_or(tick);
                        obj.burn = Some(ActiveBurn {
                            since: cause,
                            ticks: 1,
                            severity: severity_now,
                        });
                        obj.clean_streak = 0;
                        out.push(SloTransition::Burn {
                            slo: obj.spec.name,
                            cause,
                            severity: severity_now,
                            fast_burn_pm: obj.last_fast_pm,
                            slow_burn_pm: obj.last_slow_pm,
                        });
                    }
                }
                Some(active) => {
                    active.ticks += 1;
                    // A warn-severity alert that keeps worsening
                    // escalates once to page (same cause id).
                    if active.severity == "warn" && severity_now == "page" {
                        active.severity = "page";
                        out.push(SloTransition::Burn {
                            slo: obj.spec.name,
                            cause: active.since,
                            severity: "page",
                            fast_burn_pm: obj.last_fast_pm,
                            slow_burn_pm: obj.last_slow_pm,
                        });
                    }
                    if bad == 0 {
                        obj.clean_streak += 1;
                    } else {
                        obj.clean_streak = 0;
                    }
                    if obj.clean_streak >= obj.spec.exit_clean_ticks {
                        let cause = active.since;
                        let burn_ticks = active.ticks;
                        obj.burn = None;
                        obj.armed = false;
                        obj.clean_streak = 0;
                        out.push(SloTransition::Recovered {
                            slo: obj.spec.name,
                            cause,
                            burn_ticks,
                        });
                    }
                }
            }
        }
        out
    }

    /// Current burn gauges, one per objective, in configuration order.
    pub fn gauges(&self) -> Vec<SloGauge> {
        self.objectives
            .iter()
            .map(|obj| SloGauge {
                slo: obj.spec.name,
                fast_burn_pm: obj.last_fast_pm,
                slow_burn_pm: obj.last_slow_pm,
                burning: obj.burn.is_some(),
            })
            .collect()
    }

    /// True if any objective currently has a page-severity burn
    /// (fast window at or over its page threshold while alerting).
    pub fn any_burning(&self) -> bool {
        self.objectives.iter().any(|o| o.burn.is_some())
    }
}

/// Clamp a burn rate (budget multiples) into integer permille.
fn burn_pm(burn: f64) -> u64 {
    if burn.is_nan() || burn <= 0.0 {
        return 0;
    }
    let pm = burn * 1000.0;
    if pm >= MAX_BURN_PM as f64 {
        MAX_BURN_PM
    } else {
        pm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict_spec() -> SloSpec {
        SloSpec {
            name: SLO_TICK_BUDGET,
            budget: 0.001,
            enter_fast_burn: 10.0,
            page_fast_burn: 100.0,
            enter_slow_burn: 1.0,
            exit_clean_ticks: 5,
        }
    }

    #[test]
    fn quiet_stream_never_alerts() {
        let mut slo = SloEngine::new(&[strict_spec()]);
        for t in 0..2000 {
            slo.observe(SLO_TICK_BUDGET, 0, 4);
            assert!(slo.end_tick(t).is_empty());
        }
        assert!(!slo.any_burning());
        assert_eq!(slo.gauges()[0].fast_burn_pm, 0);
    }

    #[test]
    fn sustained_burn_fires_escalates_and_recovers() {
        let mut slo = SloEngine::new(&[strict_spec()]);
        let mut burns: Vec<(u64, &'static str)> = Vec::new();
        let mut recoveries: Vec<u64> = Vec::new();
        for t in 0..400_u64 {
            // 100 all-bad ticks in the middle: enough to escalate.
            let bad = if (100..200).contains(&t) { 4 } else { 0 };
            slo.observe(SLO_TICK_BUDGET, bad, 4);
            for tr in slo.end_tick(t) {
                match tr {
                    SloTransition::Burn {
                        cause, severity, ..
                    } => burns.push((cause, severity)),
                    SloTransition::Recovered { cause, .. } => recoveries.push(cause),
                }
            }
        }
        // Fires at warn as soon as both windows cross, escalates to
        // page as the fast window saturates, recovers exactly once.
        assert_eq!(burns.len(), 2, "warn then page escalation: {burns:?}");
        assert_eq!(burns[0], (100, "warn"), "cause is the first bad tick");
        assert_eq!(burns[1], (100, "page"), "escalation keeps the cause");
        assert_eq!(recoveries, vec![100], "recovery pairs with burn");
    }

    #[test]
    fn single_blip_does_not_page() {
        // One bad tick out of thousands: fast window spikes but the
        // burn must still satisfy the fast threshold over the window.
        let mut slo = SloEngine::new(&[SloSpec {
            enter_fast_burn: 50.0,
            ..strict_spec()
        }]);
        let mut fired = false;
        for t in 0..3000_u64 {
            let bad = u64::from(t == 1500);
            slo.observe(SLO_TICK_BUDGET, bad, 100);
            fired |= !slo.end_tick(t).is_empty();
        }
        // 1 bad / 150k fast-window samples ≈ 6.7e-6 bad fraction →
        // burn ≈ 0.0067× of the 1e-3 budget: far below the threshold.
        assert!(!fired, "a single blip must not alert");
    }

    #[test]
    fn zero_tolerance_objective_pages_on_first_violation() {
        let mut slo = SloEngine::standard();
        slo.observe(SLO_INVARIANTS, 1, 1);
        let trs = slo.end_tick(42);
        assert!(
            trs.iter().any(|t| matches!(
                t,
                SloTransition::Burn {
                    slo: SLO_INVARIANTS,
                    severity: "page",
                    ..
                }
            )),
            "invariant violation must page immediately: {trs:?}"
        );
    }

    #[test]
    fn no_samples_means_no_burn() {
        let mut slo = SloEngine::standard();
        for t in 0..100 {
            assert!(slo.end_tick(t).is_empty());
        }
        assert!(slo.gauges().iter().all(|g| !g.burning));
    }

    #[test]
    fn transitions_convert_to_events() {
        let burn = SloTransition::Burn {
            slo: SLO_TICK_BUDGET,
            cause: 10,
            severity: "warn",
            fast_burn_pm: 12_000,
            slow_burn_pm: 1_500,
        };
        match burn.to_event(12) {
            TraceEvent::SloBurn { tick, cause, .. } => {
                assert_eq!((tick, cause), (12, 10));
            }
            other => panic!("wrong event {other:?}"),
        }
        let rec = SloTransition::Recovered {
            slo: SLO_TICK_BUDGET,
            cause: 10,
            burn_ticks: 30,
        };
        match rec.to_event(40) {
            TraceEvent::SloRecovered { burn_ticks, .. } => assert_eq!(burn_ticks, 30),
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn burn_pm_clamps() {
        assert_eq!(burn_pm(f64::INFINITY), MAX_BURN_PM);
        assert_eq!(burn_pm(-1.0), 0);
        assert_eq!(burn_pm(1.5), 1500);
    }
}
