//! Prometheus text-exposition conformance (ISSUE 8 satellite).
//!
//! A scrape target that violates the exposition grammar is silently
//! dropped by real collectors, so these tests hold [`MetricsRegistry::
//! prometheus`] to the format spec: metric/label name charsets, label
//! value escaping, one `# HELP` + `# TYPE` per family with HELP first,
//! and samples grouped under their family's comments.

use roia_obs::{
    escape_label_value, valid_label_name, valid_metric_name, MetricKey, MetricsRegistry,
};
use std::collections::BTreeSet;

/// A registry exercising every section: counters, gauges, labelled and
/// unlabelled histograms.
fn populated_registry() -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    r.add(MetricKey::plain("roia_ticks_total"), 4180);
    r.add(
        MetricKey::labelled("roia_migrations_total", "server", 0),
        12,
    );
    r.add(MetricKey::labelled("roia_migrations_total", "server", 3), 7);
    r.set(MetricKey::plain("roia_users"), 250);
    r.set(MetricKey::labelled("roia_slo_burning", "slo", 1), 1);
    for v in [120_u64, 480, 9_500, 41_000] {
        r.record(MetricKey::labelled("roia_tick_duration_us", "server", 0), v);
        r.record(MetricKey::labelled("roia_tick_duration_us", "server", 3), v);
    }
    r
}

/// Splits `name{labels} value` into its three parts (labels optional).
fn split_sample(line: &str) -> (String, Option<String>, String) {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value");
    match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest.strip_suffix('}').expect("label set closed");
            (
                name.to_string(),
                Some(labels.to_string()),
                value.to_string(),
            )
        }
        None => (series.to_string(), None, value.to_string()),
    }
}

#[test]
fn metric_name_charset_is_enforced() {
    assert!(valid_metric_name("roia_ticks_total"));
    assert!(valid_metric_name("a:recording:rule"));
    assert!(valid_metric_name("_leading_underscore"));
    assert!(!valid_metric_name(""));
    assert!(!valid_metric_name("9starts_with_digit"));
    assert!(!valid_metric_name("has-dash"));
    assert!(!valid_metric_name("has space"));
    assert!(!valid_metric_name("uniçode"));
}

#[test]
fn label_name_charset_rejects_colons() {
    assert!(valid_label_name("server"));
    assert!(valid_label_name("_private"));
    assert!(!valid_label_name("a:b"), "colons are reserved for rules");
    assert!(!valid_label_name("1st"));
    assert!(!valid_label_name(""));
}

#[test]
fn label_values_escape_backslash_quote_and_newline() {
    assert_eq!(escape_label_value("plain"), "plain");
    assert_eq!(escape_label_value("a\\b"), "a\\\\b");
    assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
    assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    // Order matters: a backslash introduced by escaping must not be
    // re-escaped. "\n" (backslash + n) stays two characters wide.
    assert_eq!(escape_label_value("\\n"), "\\\\n");
}

#[test]
fn every_sample_line_matches_the_exposition_grammar() {
    let text = populated_registry().prometheus();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, labels, value) = split_sample(line);
        assert!(valid_metric_name(&name), "bad metric name in {line:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label is k=\"v\"");
                assert!(valid_label_name(k), "bad label name in {line:?}");
                assert!(
                    v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                    "unquoted label value in {line:?}"
                );
                let inner = &v[1..v.len() - 1];
                assert!(
                    !inner.contains('\n') && !inner.contains('"'),
                    "unescaped label value in {line:?}"
                );
            }
        }
    }
}

#[test]
fn each_family_has_help_then_type_exactly_once() {
    let text = populated_registry().prometheus();
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut typed: BTreeSet<String> = BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has text");
            assert!(valid_metric_name(name), "bad HELP name in {line:?}");
            assert!(!help.is_empty(), "empty HELP for {name}");
            assert!(helped.insert(name.to_string()), "duplicate HELP for {name}");
            assert!(
                !typed.contains(name),
                "HELP for {name} must precede its TYPE"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has kind");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ),
                "unknown TYPE kind in {line:?}"
            );
            assert!(helped.contains(name), "TYPE for {name} without HELP");
            assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
        }
    }
    assert!(typed.contains("roia_ticks_total"));
    assert!(typed.contains("roia_tick_duration_us"));
}

#[test]
fn samples_only_appear_under_their_family_comments() {
    let text = populated_registry().prometheus();
    let mut current_family: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            current_family = rest.split(' ').next().map(str::to_string);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, _, _) = split_sample(line);
        let family = current_family.as_deref().expect("sample before any TYPE");
        // Summary companions append a suffix to the family name.
        let base = name
            .strip_suffix("_count")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_max"))
            .unwrap_or(&name);
        assert!(
            name == family || base == family,
            "sample {name} under family {family}"
        );
    }
}

#[test]
fn quantile_labels_render_after_the_key_label() {
    let text = populated_registry().prometheus();
    assert!(text.contains("roia_tick_duration_us{server=\"0\",quantile=\"0.5\"}"));
    assert!(text.contains("roia_tick_duration_us{server=\"3\",quantile=\"0.999\"}"));
    assert!(text.contains("roia_tick_duration_us_count{server=\"0\"} 4"));
    assert!(text.contains("roia_tick_duration_us_sum{server=\"3\"} 51100"));
}
