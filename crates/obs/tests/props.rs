//! Property tests for the log-linear histogram (ISSUE 3 satellite):
//! recorded values land in buckets whose bounds contain them, quantiles
//! are monotone (p50 ≤ p90 ≤ p99 ≤ max), and merging two histograms
//! equals recording the union of their value streams.

use proptest::collection::vec;
use proptest::prelude::*;
use roia_obs::{bucket_bounds, Histogram, BUCKET_COUNT};

/// Mix of small exact-region values, mid-range latencies and extreme
/// magnitudes so every bucket regime is exercised.
fn value_strategy() -> BoxedStrategy<u64> {
    prop_oneof![0_u64..64, 64_u64..1_000_000, any::<u64>()].boxed()
}

proptest! {
    #[test]
    fn recorded_value_lands_in_containing_bucket(v in value_strategy()) {
        let mut h = Histogram::new();
        h.record(v);
        let idx = (0..BUCKET_COUNT)
            .find(|&i| h.bucket_count(i) == 1)
            .expect("exactly one bucket incremented");
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{v} not in bucket {idx} [{lo}, {hi}]");
    }

    #[test]
    fn quantiles_are_monotone(values in vec(value_strategy(), 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
        prop_assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
        prop_assert!(s.p99 <= s.p999, "p99 {} > p99.9 {}", s.p99, s.p999);
        prop_assert!(s.p999 <= s.max, "p99.9 {} > max {}", s.p999, s.max);
        prop_assert!(s.min <= s.p50, "min {} > p50 {}", s.min, s.p50);
        prop_assert_eq!(s.count, values.len() as u64);
    }

    #[test]
    fn merge_equals_recording_the_union(
        a_values in vec(value_strategy(), 0..100),
        b_values in vec(value_strategy(), 0..100),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for &v in &a_values {
            a.record(v);
            union.record(v);
        }
        for &v in &b_values {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &union);
        prop_assert_eq!(a.snapshot(), union.snapshot());
    }

    /// Stronger than snapshot equality: the merged histogram answers
    /// *every* quantile query exactly as the union recording does, not
    /// just the four snapshot percentiles.
    #[test]
    fn merged_percentiles_equal_union_at_arbitrary_q(
        a_values in vec(value_strategy(), 1..120),
        b_values in vec(value_strategy(), 0..120),
        qs in vec(0.0_f64..=1.0, 1..16),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for &v in &a_values {
            a.record(v);
            union.record(v);
        }
        for &v in &b_values {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        for &q in &qs {
            prop_assert_eq!(
                a.percentile(q),
                union.percentile(q),
                "q={} diverges after merge", q
            );
        }
        // Merge is also order-insensitive: b.merge(a) answers the same.
        let mut flipped = Histogram::new();
        for &v in &b_values {
            flipped.record(v);
        }
        let mut a_only = Histogram::new();
        for &v in &a_values {
            a_only.record(v);
        }
        flipped.merge(&a_only);
        for &q in &qs {
            prop_assert_eq!(flipped.percentile(q), union.percentile(q));
        }
    }

    /// Merging an empty histogram is the identity in both directions.
    #[test]
    fn merge_with_empty_is_identity(values in vec(value_strategy(), 0..100)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&Histogram::new());
        prop_assert_eq!(&h, &before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        prop_assert_eq!(&empty, &before);
    }

    #[test]
    fn percentile_never_exceeds_max_nor_undershoots_min(
        values in vec(value_strategy(), 1..100),
        q in 0.0_f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let p = h.percentile(q);
        prop_assert!(p <= h.max());
        // A quantile estimate is a bucket upper bound, so it can only
        // round *up*; it must never fall below the bucket holding min.
        let (min_lo, _) = bucket_bounds(
            (0..BUCKET_COUNT).find(|&i| h.bucket_count(i) > 0).unwrap(),
        );
        prop_assert!(p >= min_lo);
    }
}
