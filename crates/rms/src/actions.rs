//! The four load-balancing actions of RTF-RMS (§IV, Fig. 3).

use rtf_core::net::NodeId;
use rtf_core::zone::ZoneId;

/// A load-balancing decision emitted by a policy. The session driver (the
/// `roia-sim` cluster) executes it against the actual servers and resource
/// pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Migrate `users` users from one replica to another (§IV "user
    /// migration"). The count respects Eq. (5) when emitted by the
    /// model-driven policy.
    Migrate {
        /// Source server.
        from: NodeId,
        /// Target server.
        to: NodeId,
        /// Number of users to move this round.
        users: u32,
    },
    /// Add a server replicating `zone` (§IV "replication enactment").
    AddReplica {
        /// The zone to replicate.
        zone: ZoneId,
    },
    /// Replace `old` with a more powerful machine (§IV "resource
    /// substitution").
    Substitute {
        /// The zone whose replica is substituted.
        zone: ZoneId,
        /// The server being replaced.
        old: NodeId,
    },
    /// Shut down an underutilized replica after draining it (§IV "resource
    /// removal").
    RemoveReplica {
        /// The zone losing a replica.
        zone: ZoneId,
        /// The server to remove.
        server: NodeId,
    },
}

impl Action {
    /// Short name for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Action::Migrate { .. } => "migrate",
            Action::AddReplica { .. } => "add_replica",
            Action::Substitute { .. } => "substitute",
            Action::RemoveReplica { .. } => "remove_replica",
        }
    }
}

/// §IV: after replication enactment, RTF-RMS "migrates n/(l(l+1)) users
/// from each replica to the new replica in order to distribute users
/// equally on all (l+1) servers". This computes that per-replica count.
pub fn rebalance_share(total_users: u32, old_replicas: u32) -> u32 {
    assert!(old_replicas >= 1);
    total_users / (old_replicas * (old_replicas + 1))
}

/// Identifier of one logged action (unique within its [`ActionLog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u64);

/// What became of an issued action. The session driver executes actions
/// against real servers and a fallible cloud, so "the policy decided it"
/// and "it happened" are different events — this type records the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionOutcome {
    /// Issued; no outcome reported yet.
    Pending,
    /// Executed successfully (machine booted, migrations scheduled, ...).
    Succeeded,
    /// Refused synchronously: no capacity, unknown or dead server.
    Rejected,
    /// Accepted but failed later (e.g. the leased machine never booted).
    Failed,
    /// No outcome arrived within the controller's per-action timeout.
    TimedOut,
    /// Given up after exhausting retries; a stronger action was issued in
    /// its place (replica boot → substitution).
    Escalated,
    /// Given up entirely; the controller degrades gracefully instead.
    Abandoned,
}

impl ActionOutcome {
    /// Whether the outcome is final (everything except `Pending`).
    pub fn is_terminal(self) -> bool {
        self != ActionOutcome::Pending
    }

    /// Short name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            ActionOutcome::Pending => "pending",
            ActionOutcome::Succeeded => "succeeded",
            ActionOutcome::Rejected => "rejected",
            ActionOutcome::Failed => "failed",
            ActionOutcome::TimedOut => "timed_out",
            ActionOutcome::Escalated => "escalated",
            ActionOutcome::Abandoned => "abandoned",
        }
    }

    /// Every outcome, in display order (for report tables).
    pub const ALL: [ActionOutcome; 7] = [
        ActionOutcome::Pending,
        ActionOutcome::Succeeded,
        ActionOutcome::Rejected,
        ActionOutcome::Failed,
        ActionOutcome::TimedOut,
        ActionOutcome::Escalated,
        ActionOutcome::Abandoned,
    ];
}

/// A timestamped record of an issued action and its fate.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedAction {
    /// The action's ledger id.
    pub id: ActionId,
    /// Tick at which the action was emitted.
    pub tick: u64,
    /// The action.
    pub action: Action,
    /// Retry attempt (0 = first issue).
    pub attempt: u32,
    /// The action's latest known outcome.
    pub outcome: ActionOutcome,
    /// Tick of the last outcome update, if any arrived.
    pub resolved_at: Option<u64>,
}

/// History of the actions a controller emitted, with their outcomes — the
/// controller's pending-action ledger persists here.
#[derive(Debug, Clone, Default)]
pub struct ActionLog {
    entries: Vec<LoggedAction>,
    next_id: u64,
}

impl ActionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an action (attempt 0, outcome pending) and returns its id.
    pub fn push(&mut self, tick: u64, action: Action) -> ActionId {
        self.push_attempt(tick, action, 0)
    }

    /// Appends a retry of an action and returns its id.
    pub fn push_attempt(&mut self, tick: u64, action: Action, attempt: u32) -> ActionId {
        let id = ActionId(self.next_id);
        self.next_id += 1;
        self.entries.push(LoggedAction {
            id,
            tick,
            action,
            attempt,
            outcome: ActionOutcome::Pending,
            resolved_at: None,
        });
        id
    }

    /// Records an action's outcome (the latest report wins — a timeout may
    /// later be upgraded to `Escalated`/`Abandoned` by the retry machinery).
    /// Returns `false` for an unknown id.
    pub fn resolve(&mut self, id: ActionId, outcome: ActionOutcome, tick: u64) -> bool {
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(entry) => {
                entry.outcome = outcome;
                entry.resolved_at = Some(tick);
                true
            }
            None => false,
        }
    }

    /// Looks up one entry by id.
    pub fn get(&self, id: ActionId) -> Option<&LoggedAction> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// All entries in emission order.
    pub fn entries(&self) -> &[LoggedAction] {
        &self.entries
    }

    /// Number of actions of a given kind.
    pub fn count(&self, kind: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.action.kind() == kind)
            .count()
    }

    /// Number of entries with a given outcome.
    pub fn count_outcome(&self, outcome: ActionOutcome) -> usize {
        self.entries.iter().filter(|e| e.outcome == outcome).count()
    }

    /// Entries still awaiting an outcome.
    pub fn unresolved(&self) -> impl Iterator<Item = &LoggedAction> {
        self.entries
            .iter()
            .filter(|e| e.outcome == ActionOutcome::Pending)
    }

    /// Total users moved by migrate actions.
    pub fn users_migrated(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| match e.action {
                Action::Migrate { users, .. } => u64::from(users),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalance_share_matches_paper_formula() {
        // n = 120, l = 2: each of the 2 replicas sends 120/(2·3) = 20 to
        // the new third replica, ending at 40/40/40.
        assert_eq!(rebalance_share(120, 2), 20);
        // n = 235, l = 1: 235/2 = 117 (integer division).
        assert_eq!(rebalance_share(235, 1), 117);
    }

    #[test]
    fn rebalance_share_equalizes() {
        let n = 300u32;
        let l = 4u32;
        let share = rebalance_share(n, l);
        let per_old = n / l - share;
        let new_server = share * l;
        // All five servers end within one share of each other.
        assert!(
            per_old.abs_diff(new_server) <= l + 1,
            "{per_old} vs {new_server}"
        );
    }

    #[test]
    fn action_kinds() {
        assert_eq!(Action::AddReplica { zone: ZoneId(1) }.kind(), "add_replica");
        assert_eq!(
            Action::Migrate {
                from: NodeId(1),
                to: NodeId(2),
                users: 3
            }
            .kind(),
            "migrate"
        );
    }

    #[test]
    fn log_counts_and_sums() {
        let mut log = ActionLog::new();
        log.push(10, Action::AddReplica { zone: ZoneId(1) });
        log.push(
            11,
            Action::Migrate {
                from: NodeId(1),
                to: NodeId(2),
                users: 5,
            },
        );
        log.push(
            12,
            Action::Migrate {
                from: NodeId(1),
                to: NodeId(3),
                users: 7,
            },
        );
        assert_eq!(log.count("add_replica"), 1);
        assert_eq!(log.count("migrate"), 2);
        assert_eq!(log.users_migrated(), 12);
        assert_eq!(log.entries()[0].tick, 10);
    }

    #[test]
    fn outcomes_resolve_by_id() {
        let mut log = ActionLog::new();
        let a = log.push(0, Action::AddReplica { zone: ZoneId(1) });
        let b = log.push(5, Action::AddReplica { zone: ZoneId(1) });
        assert_ne!(a, b);
        assert_eq!(log.count_outcome(ActionOutcome::Pending), 2);
        assert!(log.resolve(a, ActionOutcome::Succeeded, 60));
        assert!(log.resolve(b, ActionOutcome::Rejected, 6));
        assert_eq!(log.count_outcome(ActionOutcome::Pending), 0);
        assert_eq!(log.get(a).unwrap().resolved_at, Some(60));
        assert_eq!(log.get(b).unwrap().outcome, ActionOutcome::Rejected);
        assert!(!log.resolve(ActionId(99), ActionOutcome::Failed, 0));
        // The latest report wins: a timeout later turns into an abandon.
        assert!(log.resolve(b, ActionOutcome::Abandoned, 10));
        assert_eq!(log.get(b).unwrap().outcome, ActionOutcome::Abandoned);
        assert_eq!(log.unresolved().count(), 0);
    }
}
