//! The four load-balancing actions of RTF-RMS (§IV, Fig. 3).

use rtf_core::zone::ZoneId;
use rtf_core::net::NodeId;

/// A load-balancing decision emitted by a policy. The session driver (the
/// `roia-sim` cluster) executes it against the actual servers and resource
/// pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Migrate `users` users from one replica to another (§IV "user
    /// migration"). The count respects Eq. (5) when emitted by the
    /// model-driven policy.
    Migrate {
        /// Source server.
        from: NodeId,
        /// Target server.
        to: NodeId,
        /// Number of users to move this round.
        users: u32,
    },
    /// Add a server replicating `zone` (§IV "replication enactment").
    AddReplica {
        /// The zone to replicate.
        zone: ZoneId,
    },
    /// Replace `old` with a more powerful machine (§IV "resource
    /// substitution").
    Substitute {
        /// The zone whose replica is substituted.
        zone: ZoneId,
        /// The server being replaced.
        old: NodeId,
    },
    /// Shut down an underutilized replica after draining it (§IV "resource
    /// removal").
    RemoveReplica {
        /// The zone losing a replica.
        zone: ZoneId,
        /// The server to remove.
        server: NodeId,
    },
}

impl Action {
    /// Short name for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Action::Migrate { .. } => "migrate",
            Action::AddReplica { .. } => "add_replica",
            Action::Substitute { .. } => "substitute",
            Action::RemoveReplica { .. } => "remove_replica",
        }
    }
}

/// §IV: after replication enactment, RTF-RMS "migrates n/(l(l+1)) users
/// from each replica to the new replica in order to distribute users
/// equally on all (l+1) servers". This computes that per-replica count.
pub fn rebalance_share(total_users: u32, old_replicas: u32) -> u32 {
    assert!(old_replicas >= 1);
    total_users / (old_replicas * (old_replicas + 1))
}

/// A timestamped record of an executed action.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedAction {
    /// Tick at which the action was emitted.
    pub tick: u64,
    /// The action.
    pub action: Action,
}

/// History of the actions a controller emitted.
#[derive(Debug, Clone, Default)]
pub struct ActionLog {
    entries: Vec<LoggedAction>,
}

impl ActionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an action.
    pub fn push(&mut self, tick: u64, action: Action) {
        self.entries.push(LoggedAction { tick, action });
    }

    /// All entries in emission order.
    pub fn entries(&self) -> &[LoggedAction] {
        &self.entries
    }

    /// Number of actions of a given kind.
    pub fn count(&self, kind: &str) -> usize {
        self.entries.iter().filter(|e| e.action.kind() == kind).count()
    }

    /// Total users moved by migrate actions.
    pub fn users_migrated(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| match e.action {
                Action::Migrate { users, .. } => users as u64,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalance_share_matches_paper_formula() {
        // n = 120, l = 2: each of the 2 replicas sends 120/(2·3) = 20 to
        // the new third replica, ending at 40/40/40.
        assert_eq!(rebalance_share(120, 2), 20);
        // n = 235, l = 1: 235/2 = 117 (integer division).
        assert_eq!(rebalance_share(235, 1), 117);
    }

    #[test]
    fn rebalance_share_equalizes() {
        let n = 300u32;
        let l = 4u32;
        let share = rebalance_share(n, l);
        let per_old = n / l - share;
        let new_server = share * l;
        // All five servers end within one share of each other.
        assert!(per_old.abs_diff(new_server) <= l + 1, "{per_old} vs {new_server}");
    }

    #[test]
    fn action_kinds() {
        assert_eq!(Action::AddReplica { zone: ZoneId(1) }.kind(), "add_replica");
        assert_eq!(
            Action::Migrate { from: NodeId(1), to: NodeId(2), users: 3 }.kind(),
            "migrate"
        );
    }

    #[test]
    fn log_counts_and_sums() {
        let mut log = ActionLog::new();
        log.push(10, Action::AddReplica { zone: ZoneId(1) });
        log.push(11, Action::Migrate { from: NodeId(1), to: NodeId(2), users: 5 });
        log.push(12, Action::Migrate { from: NodeId(1), to: NodeId(3), users: 7 });
        assert_eq!(log.count("add_replica"), 1);
        assert_eq!(log.count("migrate"), 2);
        assert_eq!(log.users_migrated(), 12);
        assert_eq!(log.entries()[0].tick, 10);
    }
}
