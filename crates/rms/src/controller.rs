//! The RTF-RMS control loop.
//!
//! The controller is deliberately thin: every control interval (one
//! "second" of Eq. (5)'s per-second budgets) it feeds the current
//! [`ZoneSnapshot`] to its [`Policy`] and logs the emitted actions. The
//! session driver executes them against the servers and the resource pool.

use crate::actions::{Action, ActionLog};
use crate::monitor::ZoneSnapshot;
use crate::policy::Policy;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Ticks between control rounds (25 ticks at 25 Hz = the 1-second
    /// granularity of the paper's migrations-per-second budgets).
    pub control_interval_ticks: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self { control_interval_ticks: 25 }
    }
}

/// The RTF-RMS controller for one zone.
pub struct RmsController {
    policy: Box<dyn Policy>,
    config: ControllerConfig,
    log: ActionLog,
    last_round: Option<u64>,
}

impl RmsController {
    /// Creates a controller around a policy.
    pub fn new(policy: Box<dyn Policy>, config: ControllerConfig) -> Self {
        Self { policy, config, log: ActionLog::new(), last_round: None }
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The action history.
    pub fn log(&self) -> &ActionLog {
        &self.log
    }

    /// Whether a control round is due at `now_tick`.
    pub fn is_due(&self, now_tick: u64) -> bool {
        match self.last_round {
            None => true,
            Some(last) => now_tick >= last + self.config.control_interval_ticks,
        }
    }

    /// Runs one control round if due; returns the actions to execute
    /// (empty when not due or the policy is satisfied).
    pub fn control(&mut self, snapshot: &ZoneSnapshot, now_tick: u64) -> Vec<Action> {
        if !self.is_due(now_tick) {
            return Vec::new();
        }
        self.last_round = Some(now_tick);
        let actions = self.policy.decide(snapshot, now_tick);
        for action in &actions {
            self.log.push(now_tick, *action);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ServerSnapshot;
    use rtf_core::zone::ZoneId;
    use rtf_core::net::NodeId;

    /// A policy that always emits one AddReplica.
    struct Always;
    impl Policy for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn decide(&mut self, snapshot: &ZoneSnapshot, _now: u64) -> Vec<Action> {
            vec![Action::AddReplica { zone: snapshot.zone }]
        }
    }

    fn snapshot() -> ZoneSnapshot {
        ZoneSnapshot {
            zone: ZoneId(1),
            npcs: 0,
            servers: vec![ServerSnapshot {
                server: NodeId(0),
                active_users: 10,
                avg_tick: 0.01,
                max_tick: 0.01,
                speedup: 1.0,
            }],
        }
    }

    #[test]
    fn control_respects_interval() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        assert_eq!(c.control(&snapshot(), 0).len(), 1);
        assert!(c.control(&snapshot(), 10).is_empty(), "too early");
        assert!(c.control(&snapshot(), 24).is_empty(), "still too early");
        assert_eq!(c.control(&snapshot(), 25).len(), 1);
    }

    #[test]
    fn actions_are_logged_with_ticks() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        c.control(&snapshot(), 0);
        c.control(&snapshot(), 30);
        assert_eq!(c.log().count("add_replica"), 2);
        assert_eq!(c.log().entries()[1].tick, 30);
    }

    #[test]
    fn policy_name_passthrough() {
        let c = RmsController::new(Box::new(Always), ControllerConfig::default());
        assert_eq!(c.policy_name(), "always");
    }
}
