//! The RTF-RMS control loop, hardened for a fallible substrate.
//!
//! Every control interval (one "second" of Eq. (5)'s per-second budgets)
//! the controller feeds the current [`ZoneSnapshot`] to its [`Policy`] and
//! issues the emitted actions. Unlike the paper's benign testbed, the
//! simulated cloud can refuse or fail an action — so each issued action
//! carries an [`ActionId`] and sits in a pending ledger until the session
//! driver reports its outcome via [`RmsController::report`]:
//!
//! * outcomes missing past a per-action timeout are marked
//!   [`ActionOutcome::TimedOut`];
//! * failed/rejected/timed-out scale-ups are retried with exponential
//!   backoff, at most [`RetryConfig::max_retries`] times;
//! * a replica boot that exhausts its retries escalates to a resource
//!   substitution ([`ActionOutcome::Escalated`]);
//! * a substitution that exhausts its retries is abandoned and the
//!   controller degrades gracefully: for a cooldown window it stops asking
//!   the broken cloud for machines and balances with migrations only.
//!
//! Migrations and removals are not retried — the next policy round
//! re-plans them from fresh load data, which beats replaying a stale plan.

use crate::actions::{Action, ActionId, ActionLog, ActionOutcome};
use crate::degraded::{Admission, DegradedConfig, DegradedMode};
use crate::monitor::ZoneSnapshot;
use crate::policy::Policy;
use roia_obs::{TraceEvent, Tracer};

/// Retry/timeout behaviour of the pending-action ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Ticks an issued action may stay pending before it counts as timed
    /// out (must exceed the pool's startup delay, or every boot "times
    /// out" and is double-provisioned).
    pub action_timeout_ticks: u64,
    /// How many times a failed scale-up is retried before escalating.
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ticks << (n - 1)`.
    pub backoff_base_ticks: u64,
    /// How long the controller stays in migration-only mode after
    /// abandoning a substitution.
    pub degraded_cooldown_ticks: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            action_timeout_ticks: 150,
            max_retries: 2,
            backoff_base_ticks: 50,
            degraded_cooldown_ticks: 750,
        }
    }
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Ticks between control rounds (25 ticks at 25 Hz = the 1-second
    /// granularity of the paper's migrations-per-second budgets).
    pub control_interval_ticks: u64,
    /// Retry/timeout behaviour.
    pub retry: RetryConfig,
    /// Declared degraded-mode behaviour (admission control + AoI
    /// fidelity when the cloud runs out of capacity).
    pub degraded: DegradedConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            control_interval_ticks: 25,
            retry: RetryConfig::default(),
            degraded: DegradedConfig::default(),
        }
    }
}

/// An action handed to the session driver, tagged with its ledger id so
/// the driver can report what became of it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IssuedAction {
    /// Ledger id to pass back to [`RmsController::report`].
    pub id: ActionId,
    /// The action to execute.
    pub action: Action,
}

#[derive(Debug, Clone, Copy)]
struct PendingAction {
    id: ActionId,
    action: Action,
    deadline: u64,
    attempt: u32,
}

/// What a queued follow-up will issue once its backoff elapses.
#[derive(Debug, Clone, Copy)]
enum Planned {
    /// Re-issue the same action.
    Retry(Action),
    /// Escalation: substitute the most loaded standard server, picked from
    /// the snapshot at issue time (the original target data is stale).
    SubstituteHottest,
}

#[derive(Debug, Clone, Copy)]
struct QueuedFollowUp {
    plan: Planned,
    not_before: u64,
    attempt: u32,
}

/// The RTF-RMS controller for one zone.
pub struct RmsController {
    policy: Box<dyn Policy>,
    config: ControllerConfig,
    log: ActionLog,
    last_round: Option<u64>,
    pending: Vec<PendingAction>,
    follow_ups: Vec<QueuedFollowUp>,
    degraded_until: Option<u64>,
    degraded_mode: DegradedMode,
    tracer: Tracer,
}

/// Point-in-time controller state for observability consumers (the SLO
/// feed and postmortem manifests). Produced by
/// [`RmsController::health`]; plain data, no control authority.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerHealth {
    /// A declared degraded episode (admission control + reduced AoI
    /// fidelity) is live.
    pub degraded: bool,
    /// Tick the live episode was entered, if any.
    pub degraded_since: Option<u64>,
    /// The controller is in migration-only mode (scale-ups blocked).
    pub migration_only: bool,
    /// Actions issued but not yet resolved.
    pub pending_actions: u32,
    /// Retries/escalations waiting for their backoff to elapse.
    pub queued_follow_ups: u32,
    /// AoI fidelity the cluster should apply right now.
    pub aoi_fidelity: f64,
}

impl RmsController {
    /// Creates a controller around a policy.
    pub fn new(policy: Box<dyn Policy>, config: ControllerConfig) -> Self {
        Self {
            policy,
            config,
            log: ActionLog::new(),
            last_round: None,
            pending: Vec::new(),
            follow_ups: Vec::new(),
            degraded_until: None,
            degraded_mode: DegradedMode::new(config.degraded),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a telemetry tracer on the controller and its policy: the
    /// controller emits round/action lifecycle events, the policy its
    /// decision audit trail.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.policy.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Trace-event payload fields `(from, to, users)` of an action.
    fn action_fields(action: &Action) -> (i64, i64, u32) {
        match action {
            Action::Migrate { from, to, users } => (i64::from(from.0), i64::from(to.0), *users),
            Action::AddReplica { .. } => (-1, -1, 0),
            Action::Substitute { old, .. } => (i64::from(old.0), -1, 0),
            Action::RemoveReplica { server, .. } => (i64::from(server.0), -1, 0),
        }
    }

    fn trace_resolved(&self, id: ActionId, outcome: ActionOutcome, now_tick: u64) {
        self.tracer.emit(TraceEvent::ActionResolved {
            tick: now_tick,
            action_id: id.0,
            outcome: outcome.name(),
        });
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The action history (the ledger).
    pub fn log(&self) -> &ActionLog {
        &self.log
    }

    /// Actions issued but not yet resolved.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Whether the controller is in migration-only degraded mode.
    pub fn is_degraded(&self, now_tick: u64) -> bool {
        self.degraded_until.is_some_and(|until| now_tick < until)
    }

    /// Whether a *declared* degraded episode (admission control + AoI
    /// fidelity reduction) is live.
    pub fn degraded_mode_active(&self) -> bool {
        self.degraded_mode.active()
    }

    /// Tick the live degraded episode was entered, if any.
    pub fn degraded_since(&self) -> Option<u64> {
        self.degraded_mode.entered_at()
    }

    /// One-line health summary for the SLO engine and the flight
    /// recorder's postmortem manifest: what state the controller is in
    /// at `now_tick`, without touching any of it.
    pub fn health(&self, now_tick: u64) -> ControllerHealth {
        ControllerHealth {
            degraded: self.degraded_mode.active(),
            degraded_since: self.degraded_mode.entered_at(),
            migration_only: self.is_degraded(now_tick),
            pending_actions: u32::try_from(self.pending.len()).unwrap_or(u32::MAX),
            queued_follow_ups: u32::try_from(self.follow_ups.len()).unwrap_or(u32::MAX),
            aoi_fidelity: self.degraded_mode.fidelity(),
        }
    }

    /// AoI fidelity the cluster should apply right now (1.0 healthy,
    /// [`DegradedConfig::aoi_fidelity`] while degraded).
    pub fn aoi_fidelity(&self) -> f64 {
        self.degraded_mode.fidelity()
    }

    /// Admission verdict for one join request. `queue_depth` is the
    /// caller's current join-queue length. Healthy controllers always
    /// admit; degraded ones queue up to the configured depth and shed
    /// beyond it, tracing every throttled join.
    pub fn admit_join(&mut self, queue_depth: u32, now_tick: u64) -> Admission {
        let verdict = self.degraded_mode.admit(queue_depth);
        if verdict != Admission::Admit && self.tracer.is_enabled() {
            self.tracer.emit(TraceEvent::JoinThrottled {
                tick: now_tick,
                cause: self.degraded_mode.entered_at().unwrap_or(now_tick),
                verdict: match verdict {
                    Admission::Queue => "queue",
                    _ => "shed",
                },
                total: self.degraded_mode.throttled(),
            });
        }
        verdict
    }

    fn trace_degraded_enter(&self, reason: &'static str, now_tick: u64) {
        self.tracer.emit(TraceEvent::DegradedEnter {
            tick: now_tick,
            cause: now_tick,
            reason,
            admission: self.config.degraded.admission.name(),
            fidelity: self.config.degraded.aoi_fidelity,
        });
    }

    /// Whether a control round is due at `now_tick`.
    pub fn is_due(&self, now_tick: u64) -> bool {
        match self.last_round {
            None => true,
            Some(last) => now_tick >= last + self.config.control_interval_ticks,
        }
    }

    /// Reports the outcome of an issued action. `Rejected` and `Failed`
    /// scale-ups are queued for retry/escalation; late reports for actions
    /// the ledger already timed out are ignored.
    pub fn report(&mut self, id: ActionId, outcome: ActionOutcome, now_tick: u64) {
        let Some(pos) = self.pending.iter().position(|p| p.id == id) else {
            return;
        };
        let entry = self.pending.swap_remove(pos);
        self.log.resolve(id, outcome, now_tick);
        self.trace_resolved(id, outcome, now_tick);
        let scale_up = matches!(
            entry.action,
            Action::AddReplica { .. } | Action::Substitute { .. }
        );
        if scale_up {
            match outcome {
                // The cloud refused the machine outright: count toward
                // the declared degraded episode.
                ActionOutcome::Rejected if self.degraded_mode.note_rejection(now_tick) => {
                    self.trace_degraded_enter("out_of_capacity", now_tick);
                }
                ActionOutcome::Succeeded => self.degraded_mode.note_success(),
                _ => {}
            }
        }
        if matches!(outcome, ActionOutcome::Rejected | ActionOutcome::Failed) {
            self.schedule_follow_up(entry.id, entry.action, entry.attempt, now_tick);
        }
    }

    /// Runs one control round if due; returns the actions to execute.
    /// Besides the policy's decisions this emits due retries, sweeps the
    /// pending ledger for timeouts, and — while degraded — filters out
    /// scale-up actions the cloud keeps failing.
    pub fn control(&mut self, snapshot: &ZoneSnapshot, now_tick: u64) -> Vec<IssuedAction> {
        if !self.is_due(now_tick) {
            return Vec::new();
        }
        self.last_round = Some(now_tick);
        let mut issued = Vec::new();

        // 1. Sweep the ledger: pending actions past their deadline timed
        //    out; treat like a failure (retry or escalate).
        let mut overdue = Vec::new();
        self.pending.retain(|p| {
            if p.deadline <= now_tick {
                overdue.push(*p);
                false
            } else {
                true
            }
        });
        for p in overdue {
            self.log.resolve(p.id, ActionOutcome::TimedOut, now_tick);
            self.trace_resolved(p.id, ActionOutcome::TimedOut, now_tick);
            self.schedule_follow_up(p.id, p.action, p.attempt, now_tick);
        }

        // 2. Emit follow-ups whose backoff elapsed.
        let mut due = Vec::new();
        self.follow_ups.retain(|f| {
            if f.not_before <= now_tick {
                due.push(*f);
                false
            } else {
                true
            }
        });
        for f in due {
            let action = match f.plan {
                Planned::Retry(action) => Some(action),
                Planned::SubstituteHottest => snapshot
                    .servers
                    .iter()
                    .filter(|s| s.speedup <= 1.0)
                    .max_by_key(|s| s.active_users)
                    .map(|s| Action::Substitute {
                        zone: snapshot.zone,
                        old: s.server,
                    }),
            };
            if let Some(action) = action {
                issued.push(self.issue(action, f.attempt, now_tick));
            }
        }

        // 3. Feed the round's load observation into the declared
        //    degraded episode's exit hysteresis (min dwell, then
        //    consecutive clean rounds with no fresh rejection).
        if let Some(summary) = self
            .degraded_mode
            .observe_round(snapshot.worst_avg_tick(), now_tick)
        {
            if self.tracer.is_enabled() {
                self.tracer.emit(TraceEvent::DegradedExit {
                    tick: now_tick,
                    cause: summary.entered_at,
                    dwell_ticks: summary.dwell_ticks,
                    queued: summary.queued,
                    shed: summary.shed,
                });
            }
        }

        // 4. The policy's round. While a scale-up is already in flight
        //    (pending boot or queued retry) further scale-ups are
        //    suppressed, so a slow cloud is not asked twice for the same
        //    machine; while degraded they are dropped entirely. The
        //    guard is computed once so a simultaneous policy may issue
        //    several scale-ups in the same round.
        let scale_ups_blocked = self.is_degraded(now_tick) || self.scale_up_in_flight();
        let decisions = self.policy.decide(snapshot, now_tick);
        for action in decisions {
            let scale_up = matches!(
                action,
                Action::AddReplica { .. } | Action::Substitute { .. }
            );
            if scale_up && scale_ups_blocked {
                continue;
            }
            issued.push(self.issue(action, 0, now_tick));
        }
        if self.tracer.is_enabled() {
            self.tracer.emit(TraceEvent::ControlRound {
                tick: now_tick,
                zone: snapshot.zone.0,
                servers: snapshot.replicas(),
                users: snapshot.total_users(),
                issued: roia_model::convert::count_u32(issued.len()),
            });
        }
        issued
    }

    fn issue(&mut self, action: Action, attempt: u32, now_tick: u64) -> IssuedAction {
        let id = self.log.push_attempt(now_tick, action, attempt);
        self.pending.push(PendingAction {
            id,
            action,
            deadline: now_tick + self.config.retry.action_timeout_ticks,
            attempt,
        });
        if self.tracer.is_enabled() {
            let (from, to, users) = Self::action_fields(&action);
            self.tracer.emit(TraceEvent::ActionIssued {
                tick: now_tick,
                cause: now_tick,
                action_id: id.0,
                kind: action.kind(),
                attempt,
                from,
                to,
                users,
            });
        }
        IssuedAction { id, action }
    }

    fn scale_up_in_flight(&self) -> bool {
        self.pending.iter().any(|p| {
            matches!(
                p.action,
                Action::AddReplica { .. } | Action::Substitute { .. }
            )
        }) || !self.follow_ups.is_empty()
    }

    /// Decides what happens after a failed attempt: bounded retry with
    /// exponential backoff, then escalation (AddReplica → Substitute),
    /// then graceful degradation.
    fn schedule_follow_up(&mut self, id: ActionId, action: Action, attempt: u32, now_tick: u64) {
        let retry = &self.config.retry;
        match action {
            // Re-planned from fresh data at the next policy round instead.
            Action::Migrate { .. } | Action::RemoveReplica { .. } => {}
            Action::AddReplica { .. } | Action::Substitute { .. } => {
                if attempt < retry.max_retries {
                    let backoff = retry.backoff_base_ticks << attempt;
                    self.follow_ups.push(QueuedFollowUp {
                        plan: Planned::Retry(action),
                        not_before: now_tick + backoff,
                        attempt: attempt + 1,
                    });
                } else if matches!(action, Action::AddReplica { .. }) {
                    // Replication keeps failing — ask for the bigger
                    // machine class instead.
                    self.log.resolve(id, ActionOutcome::Escalated, now_tick);
                    self.trace_resolved(id, ActionOutcome::Escalated, now_tick);
                    self.follow_ups.push(QueuedFollowUp {
                        plan: Planned::SubstituteHottest,
                        not_before: now_tick + retry.backoff_base_ticks,
                        attempt: 0,
                    });
                } else {
                    // Substitution failed too: stop asking the cloud and
                    // balance with migrations only for a while, and make
                    // sure the declared degraded episode (admission
                    // control, reduced fidelity) is open.
                    self.log.resolve(id, ActionOutcome::Abandoned, now_tick);
                    self.trace_resolved(id, ActionOutcome::Abandoned, now_tick);
                    self.degraded_until = Some(now_tick + retry.degraded_cooldown_ticks);
                    if self.degraded_mode.force_enter(now_tick) {
                        self.trace_degraded_enter("abandoned", now_tick);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ServerSnapshot;
    use rtf_core::net::NodeId;
    use rtf_core::zone::ZoneId;

    /// A policy that always emits one AddReplica.
    struct Always;
    impl Policy for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn decide(&mut self, snapshot: &ZoneSnapshot, _now: u64) -> Vec<Action> {
            vec![Action::AddReplica {
                zone: snapshot.zone,
            }]
        }
    }

    fn snapshot() -> ZoneSnapshot {
        ZoneSnapshot {
            zone: ZoneId(1),
            npcs: 0,
            servers: vec![ServerSnapshot {
                server: NodeId(0),
                active_users: 10,
                avg_tick: 0.01,
                max_tick: 0.01,
                speedup: 1.0,
            }],
        }
    }

    #[test]
    fn control_respects_interval() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        let first = c.control(&snapshot(), 0);
        assert_eq!(first.len(), 1);
        // Resolve it so the in-flight guard does not mask the cadence.
        c.report(first[0].id, ActionOutcome::Succeeded, 1);
        assert!(c.control(&snapshot(), 10).is_empty(), "too early");
        assert!(c.control(&snapshot(), 24).is_empty(), "still too early");
        assert_eq!(c.control(&snapshot(), 25).len(), 1);
    }

    #[test]
    fn actions_are_logged_with_ticks() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        let a = c.control(&snapshot(), 0);
        c.report(a[0].id, ActionOutcome::Succeeded, 5);
        c.control(&snapshot(), 30);
        assert_eq!(c.log().count("add_replica"), 2);
        assert_eq!(c.log().entries()[1].tick, 30);
    }

    #[test]
    fn policy_name_passthrough() {
        let c = RmsController::new(Box::new(Always), ControllerConfig::default());
        assert_eq!(c.policy_name(), "always");
    }

    #[test]
    fn duplicate_scale_ups_suppressed_while_pending() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        let first = c.control(&snapshot(), 0);
        assert_eq!(first.len(), 1);
        // The boot is still pending at the next round: no second request.
        assert!(c.control(&snapshot(), 25).is_empty());
        c.report(first[0].id, ActionOutcome::Succeeded, 40);
        assert_eq!(c.control(&snapshot(), 50).len(), 1, "resumes once resolved");
    }

    #[test]
    fn rejected_action_retries_with_backoff_then_escalates() {
        let config = ControllerConfig {
            retry: RetryConfig {
                action_timeout_ticks: 150,
                max_retries: 2,
                backoff_base_ticks: 50,
                degraded_cooldown_ticks: 750,
            },
            ..ControllerConfig::default()
        };
        let mut c = RmsController::new(Box::new(Always), config);
        let mut issue_ticks = Vec::new();
        let mut now = 0u64;
        // Reject every add_replica; watch the ledger escalate.
        while c.log().count("substitute") == 0 && now < 2_000 {
            for issued in c.control(&snapshot(), now) {
                if matches!(issued.action, Action::AddReplica { .. }) {
                    issue_ticks.push(now);
                }
                c.report(issued.id, ActionOutcome::Rejected, now);
            }
            now += 25;
        }
        assert_eq!(issue_ticks.len(), 3, "initial + max_retries attempts");
        // Backoff is monotone: gaps between consecutive attempts grow.
        let gaps: Vec<u64> = issue_ticks.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps[1] > gaps[0], "exponential backoff: {gaps:?}");
        assert_eq!(c.log().count_outcome(ActionOutcome::Escalated), 1);
        assert_eq!(c.log().count("substitute"), 1, "escalated to substitution");
    }

    #[test]
    fn failed_substitution_degrades_to_migration_only() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        let mut now = 0u64;
        while !c.is_degraded(now) && now < 5_000 {
            for issued in c.control(&snapshot(), now) {
                c.report(issued.id, ActionOutcome::Rejected, now);
            }
            now += 25;
        }
        assert!(c.is_degraded(now), "rejecting everything must degrade");
        assert_eq!(c.log().count_outcome(ActionOutcome::Abandoned), 1);
        // While degraded, the Always policy's scale-ups are filtered.
        let during = c.control(&snapshot(), now);
        assert!(
            during.is_empty(),
            "degraded mode drops scale-ups: {during:?}"
        );
        // After the cooldown the controller recovers.
        let after = now + c.config.retry.degraded_cooldown_ticks + 25;
        assert!(!c.is_degraded(after));
        assert!(!c.control(&snapshot(), after).is_empty());
    }

    #[test]
    fn capacity_rejections_declare_degraded_mode_then_hysteresis_exit() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        assert_eq!(c.admit_join(0, 0), Admission::Admit, "healthy: admit");
        // Keep rejecting scale-ups until the declared episode engages.
        let mut now = 0u64;
        while !c.degraded_mode_active() && now < 2_000 {
            for issued in c.control(&snapshot(), now) {
                c.report(issued.id, ActionOutcome::Rejected, now);
            }
            now += 25;
        }
        assert!(c.degraded_mode_active(), "rejections must declare the mode");
        let entered = c.degraded_since().expect("episode start tick");
        assert_eq!(c.admit_join(0, now), Admission::Queue);
        assert!(c.aoi_fidelity() < 1.0, "fidelity reduced while degraded");
        // Capacity returns and the snapshot load is clean (10 ms ticks):
        // after the minimum dwell plus the clean-round streak the
        // episode closes on its own.
        while c.degraded_mode_active() && now < entered + 5_000 {
            for issued in c.control(&snapshot(), now) {
                c.report(issued.id, ActionOutcome::Succeeded, now);
            }
            now += 25;
        }
        assert!(!c.degraded_mode_active(), "hysteresis exit after recovery");
        assert!(
            now - entered >= c.config.degraded.min_dwell_ticks,
            "no exit before the dwell"
        );
        assert_eq!(c.admit_join(0, now), Admission::Admit);
        assert!((c.aoi_fidelity() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn unreported_action_times_out() {
        let mut c = RmsController::new(Box::new(Always), ControllerConfig::default());
        let issued = c.control(&snapshot(), 0);
        assert_eq!(c.pending_count(), 1);
        // Never report; after the timeout the sweep marks it TimedOut.
        let mut now = 25;
        while c.log().count_outcome(ActionOutcome::TimedOut) == 0 && now < 1_000 {
            c.control(&snapshot(), now);
            now += 25;
        }
        assert_eq!(
            c.log().get(issued[0].id).unwrap().outcome,
            ActionOutcome::TimedOut
        );
        // A late report for the swept action is ignored, not double-counted.
        c.report(issued[0].id, ActionOutcome::Succeeded, now);
        assert_eq!(
            c.log().get(issued[0].id).unwrap().outcome,
            ActionOutcome::TimedOut
        );
    }
}
