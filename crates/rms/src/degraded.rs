//! Declared degraded mode — the graceful-degradation path for capacity
//! exhaustion.
//!
//! When the cloud keeps answering `AddReplica`/`Substitute` with
//! `Rejected` (the pool is out of capacity), piling more users onto the
//! existing replicas just accrues Eq. (4) threshold violations. Instead
//! the controller *declares* the condition: it enters a degraded episode
//! with join admission control (new users are queued or shed at the
//! door) and reduced AoI fidelity (a smaller interest radius cuts the
//! quadratic `t_aoi` term for everyone already playing). The episode is
//! visible in the trace ([`roia_obs::TraceEvent::DegradedEnter`] /
//! [`DegradedExit`](roia_obs::TraceEvent::DegradedExit)) rather than
//! inferred from a violation spike.
//!
//! Exit is hysteretic so the mode does not flap with the load: the
//! episode must dwell at least [`DegradedConfig::min_dwell_ticks`], and
//! then ends only after [`DegradedConfig::exit_clean_rounds`]
//! *consecutive* control rounds whose worst per-server average tick sits
//! below [`DegradedConfig::exit_tick_threshold_s`] with no fresh
//! capacity rejection in between.
//!
//! This module is a pure, deterministic state machine; the controller
//! owns the trace emission so the episode logic stays trivially
//! unit-testable.

/// What admission control decided for one join request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Capacity is fine (or the episode ended): connect the user.
    Admit,
    /// Degraded: hold the user in the join queue until capacity returns.
    Queue,
    /// Degraded and the queue is full (or shedding is configured): turn
    /// the user away.
    Shed,
}

/// How new joins are treated while degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Queue joins up to `max_depth`, shedding beyond that.
    Queue {
        /// Maximum join-queue depth before queuing falls back to
        /// shedding.
        max_depth: u32,
    },
    /// Shed every new join for the duration of the episode.
    Shed,
}

impl AdmissionMode {
    /// Vocabulary name for the trace (`"queue"` or `"shed"`).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionMode::Queue { .. } => "queue",
            AdmissionMode::Shed => "shed",
        }
    }
}

/// Tuning for the declared degraded mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedConfig {
    /// Consecutive capacity rejections on scale-up actions before the
    /// episode engages.
    pub enter_after_rejections: u32,
    /// Join treatment while degraded.
    pub admission: AdmissionMode,
    /// AoI interest-radius scale applied while degraded (1.0 = full
    /// fidelity; values below 1 shrink every server's interest radius).
    pub aoi_fidelity: f64,
    /// Minimum episode length in ticks — exits are not considered
    /// before this dwell elapses, however clean the load looks.
    pub min_dwell_ticks: u64,
    /// Consecutive clean control rounds (after the dwell) required to
    /// exit.
    pub exit_clean_rounds: u32,
    /// A control round is "clean" when the zone's worst per-server
    /// average tick is below this threshold (seconds). Defaults below
    /// the paper's U = 40 ms so the exit has real headroom.
    pub exit_tick_threshold_s: f64,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        Self {
            enter_after_rejections: 2,
            admission: AdmissionMode::Queue { max_depth: 64 },
            aoi_fidelity: 0.6,
            min_dwell_ticks: 250,
            exit_clean_rounds: 4,
            exit_tick_threshold_s: 0.032,
        }
    }
}

/// One live degraded episode.
#[derive(Debug, Clone, Copy)]
struct Episode {
    entered_at: u64,
    queued: u32,
    shed: u32,
    clean_rounds: u32,
}

/// Summary of a finished episode, for the exit trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeSummary {
    /// Tick the episode was entered.
    pub entered_at: u64,
    /// Ticks spent degraded.
    pub dwell_ticks: u64,
    /// Joins queued over the episode.
    pub queued: u32,
    /// Joins shed over the episode.
    pub shed: u32,
}

/// The degraded-mode state machine (entry counting, per-episode
/// admission bookkeeping, hysteretic exit).
#[derive(Debug, Clone, Copy)]
pub struct DegradedMode {
    config: DegradedConfig,
    consecutive_rejections: u32,
    episode: Option<Episode>,
}

impl DegradedMode {
    /// Creates the state machine in the healthy state.
    pub fn new(config: DegradedConfig) -> Self {
        Self {
            config,
            consecutive_rejections: 0,
            episode: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DegradedConfig {
        &self.config
    }

    /// Whether a degraded episode is live.
    pub fn active(&self) -> bool {
        self.episode.is_some()
    }

    /// Tick the live episode was entered, if any.
    pub fn entered_at(&self) -> Option<u64> {
        self.episode.map(|e| e.entered_at)
    }

    /// AoI fidelity the cluster should apply right now (1.0 when
    /// healthy).
    pub fn fidelity(&self) -> f64 {
        if self.episode.is_some() {
            self.config.aoi_fidelity
        } else {
            1.0
        }
    }

    /// Joins throttled (queued + shed) in the live episode so far.
    pub fn throttled(&self) -> u32 {
        self.episode
            .map(|e| e.queued.saturating_add(e.shed))
            .unwrap_or(0)
    }

    /// Records a capacity rejection on a scale-up action. Returns `true`
    /// when this rejection *enters* a new episode (the caller emits the
    /// enter event). While an episode is live, a rejection resets its
    /// clean-round count — the cloud is still refusing us.
    pub fn note_rejection(&mut self, now_tick: u64) -> bool {
        self.consecutive_rejections = self.consecutive_rejections.saturating_add(1);
        if let Some(episode) = self.episode.as_mut() {
            episode.clean_rounds = 0;
            return false;
        }
        if self.consecutive_rejections >= self.config.enter_after_rejections {
            self.enter(now_tick);
            return true;
        }
        false
    }

    /// Records a successful scale-up: the consecutive-rejection streak is
    /// broken (a live episode still needs its clean rounds to exit).
    pub fn note_success(&mut self) {
        self.consecutive_rejections = 0;
    }

    /// Forces an episode open (the abandonment path: retries exhausted
    /// and the substitution fallback refused too). Returns `true` when
    /// this call opened the episode.
    pub fn force_enter(&mut self, now_tick: u64) -> bool {
        if self.episode.is_some() {
            return false;
        }
        self.enter(now_tick);
        true
    }

    fn enter(&mut self, now_tick: u64) {
        self.episode = Some(Episode {
            entered_at: now_tick,
            queued: 0,
            shed: 0,
            clean_rounds: 0,
        });
    }

    /// Admission verdict for one join request. `queue_depth` is the
    /// caller's current join-queue length (the queue itself lives with
    /// the caller; this machine only rules and counts).
    pub fn admit(&mut self, queue_depth: u32) -> Admission {
        let Some(episode) = self.episode.as_mut() else {
            return Admission::Admit;
        };
        match self.config.admission {
            AdmissionMode::Queue { max_depth } if queue_depth < max_depth => {
                episode.queued = episode.queued.saturating_add(1);
                Admission::Queue
            }
            _ => {
                episode.shed = episode.shed.saturating_add(1);
                Admission::Shed
            }
        }
    }

    /// Feeds one control round's load observation into the hysteresis.
    /// Returns the episode summary when this round closes the episode
    /// (the caller emits the exit event).
    pub fn observe_round(
        &mut self,
        worst_avg_tick_s: f64,
        now_tick: u64,
    ) -> Option<EpisodeSummary> {
        let episode = self.episode.as_mut()?;
        if worst_avg_tick_s < self.config.exit_tick_threshold_s {
            episode.clean_rounds = episode.clean_rounds.saturating_add(1);
        } else {
            episode.clean_rounds = 0;
        }
        let dwelt = now_tick.saturating_sub(episode.entered_at) >= self.config.min_dwell_ticks;
        if dwelt && episode.clean_rounds >= self.config.exit_clean_rounds {
            let done = *episode;
            self.episode = None;
            self.consecutive_rejections = 0;
            return Some(EpisodeSummary {
                entered_at: done.entered_at,
                dwell_ticks: now_tick.saturating_sub(done.entered_at),
                queued: done.queued,
                shed: done.shed,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enters_after_consecutive_rejections_only() {
        let mut m = DegradedMode::new(DegradedConfig::default());
        assert!(!m.note_rejection(10));
        m.note_success(); // streak broken
        assert!(!m.note_rejection(20));
        assert!(m.note_rejection(30), "second consecutive rejection enters");
        assert!(m.active());
        assert_eq!(m.entered_at(), Some(30));
        assert!(m.fidelity() < 1.0);
    }

    #[test]
    fn queue_overflows_into_shedding() {
        let mut m = DegradedMode::new(DegradedConfig {
            admission: AdmissionMode::Queue { max_depth: 2 },
            ..DegradedConfig::default()
        });
        assert_eq!(m.admit(0), Admission::Admit, "healthy: always admit");
        m.force_enter(0);
        assert_eq!(m.admit(0), Admission::Queue);
        assert_eq!(m.admit(1), Admission::Queue);
        assert_eq!(m.admit(2), Admission::Shed, "queue full");
        assert_eq!(m.throttled(), 3);
    }

    #[test]
    fn exit_needs_dwell_and_consecutive_clean_rounds() {
        let config = DegradedConfig {
            min_dwell_ticks: 100,
            exit_clean_rounds: 2,
            exit_tick_threshold_s: 0.032,
            ..DegradedConfig::default()
        };
        let mut m = DegradedMode::new(config);
        m.force_enter(0);
        // Clean but before the dwell: no exit.
        assert!(m.observe_round(0.010, 25).is_none());
        assert!(m.observe_round(0.010, 50).is_none());
        // A hot round resets the streak.
        assert!(m.observe_round(0.039, 125).is_none());
        assert!(m.observe_round(0.010, 150).is_none(), "streak restarted");
        let summary = m.observe_round(0.010, 175).expect("exits");
        assert_eq!(summary.entered_at, 0);
        assert_eq!(summary.dwell_ticks, 175);
        assert!(!m.active());
        assert!((m.fidelity() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn rejection_during_episode_resets_clean_streak() {
        let config = DegradedConfig {
            min_dwell_ticks: 0,
            exit_clean_rounds: 2,
            ..DegradedConfig::default()
        };
        let mut m = DegradedMode::new(config);
        m.force_enter(0);
        assert!(m.observe_round(0.010, 25).is_none());
        assert!(!m.note_rejection(30), "already degraded: no re-entry");
        assert!(m.observe_round(0.010, 50).is_none(), "streak was reset");
        assert!(m.observe_round(0.010, 75).is_some());
    }
}
