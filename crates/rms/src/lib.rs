//! # rtf-rms — dynamic resource management for ROIA
//!
//! A reimplementation of *RTF-RMS* (Meiländer et al., Euro-Par 2011
//! workshops), the resource management system the ICPP 2013 paper upgrades
//! with its scalability model. The controller monitors the replicas of a
//! zone ([`monitor`]), decides between the four load-balancing actions of
//! §IV ([`actions`]) using a pluggable [`policy::Policy`], and leases
//! machines from a simulated cloud ([`resources`]).
//!
//! The [`policy::ModelDriven`] policy is the paper's contribution; the
//! three baselines ([`policy::StaticInterval`], [`policy::StaticThreshold`],
//! [`policy::BandwidthProportional`]) reproduce the strategies the paper
//! positions itself against.

#![warn(missing_docs)]

pub mod actions;
pub mod controller;
pub mod degraded;
pub mod monitor;
pub mod policy;
pub mod resources;

pub use actions::{rebalance_share, Action, ActionId, ActionLog, ActionOutcome, LoggedAction};
pub use controller::{
    ControllerConfig, ControllerHealth, IssuedAction, RetryConfig, RmsController,
};
pub use degraded::{Admission, AdmissionMode, DegradedConfig, DegradedMode, EpisodeSummary};
pub use monitor::{ServerSnapshot, ZoneSnapshot};
pub use policy::{
    BandwidthProportional, ModelDriven, ModelDrivenConfig, Policy, PredictiveModelDriven,
    Simultaneous, SimultaneousConfig, StaticInterval, StaticThreshold, TrendForecaster,
};
pub use resources::{BootEvent, LeaseId, MachineProfile, PoolError, ReadyMachine, ResourcePool};
