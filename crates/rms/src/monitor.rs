//! Monitoring snapshots — the input to every load-balancing decision.
//!
//! RTF-RMS observes each application server's monitored parameters (§IV):
//! the tick duration averaged over a window, and the user distribution. A
//! [`ZoneSnapshot`] is one control round's view of one replication group.

use rtf_core::net::NodeId;
use rtf_core::zone::ZoneId;

/// One server's monitored state.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// The server.
    pub server: NodeId,
    /// Users connected to it (`a` in Eq. (4)).
    pub active_users: u32,
    /// Tick duration averaged over the monitoring window (seconds).
    pub avg_tick: f64,
    /// Worst tick in the monitoring window (seconds).
    pub max_tick: f64,
    /// Relative machine speed (1.0 = the standard profile; resource
    /// substitution installs faster machines).
    pub speedup: f64,
}

/// One replication group's monitored state.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneSnapshot {
    /// The zone.
    pub zone: ZoneId,
    /// NPCs in the zone (`m`).
    pub npcs: u32,
    /// The replicas, in stable order.
    pub servers: Vec<ServerSnapshot>,
}

impl ZoneSnapshot {
    /// Number of replicas `l`.
    pub fn replicas(&self) -> u32 {
        roia_model::convert::count_u32(self.servers.len())
    }

    /// Total users `n` across the replicas.
    pub fn total_users(&self) -> u32 {
        self.servers.iter().map(|s| s.active_users).sum()
    }

    /// User counts in server order (the planner input).
    pub fn user_counts(&self) -> Vec<u32> {
        self.servers.iter().map(|s| s.active_users).collect()
    }

    /// The most loaded server (by user count), if any.
    pub fn most_loaded(&self) -> Option<&ServerSnapshot> {
        self.servers.iter().max_by_key(|s| s.active_users)
    }

    /// The least loaded server (by user count), if any.
    pub fn least_loaded(&self) -> Option<&ServerSnapshot> {
        self.servers.iter().min_by_key(|s| s.active_users)
    }

    /// Highest windowed-average tick duration across replicas.
    pub fn worst_avg_tick(&self) -> f64 {
        self.servers.iter().map(|s| s.avg_tick).fold(0.0, f64::max)
    }

    /// Difference between the heaviest and lightest server's user count.
    pub fn imbalance(&self) -> u32 {
        match (self.most_loaded(), self.least_loaded()) {
            (Some(hi), Some(lo)) => hi.active_users - lo.active_users,
            _ => 0,
        }
    }

    /// Snapshot for one server, if present.
    pub fn server(&self, id: NodeId) -> Option<&ServerSnapshot> {
        self.servers.iter().find(|s| s.server == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(users: &[u32]) -> ZoneSnapshot {
        ZoneSnapshot {
            zone: ZoneId(1),
            npcs: 0,
            servers: users
                .iter()
                .enumerate()
                .map(|(i, &u)| ServerSnapshot {
                    server: NodeId(i as u32),
                    active_users: u,
                    avg_tick: u as f64 * 1e-4,
                    max_tick: u as f64 * 1.2e-4,
                    speedup: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn aggregates() {
        let z = snap(&[25, 12, 8]);
        assert_eq!(z.replicas(), 3);
        assert_eq!(z.total_users(), 45);
        assert_eq!(z.user_counts(), vec![25, 12, 8]);
        assert_eq!(z.most_loaded().unwrap().server, NodeId(0));
        assert_eq!(z.least_loaded().unwrap().server, NodeId(2));
        assert_eq!(z.imbalance(), 17);
        assert!((z.worst_avg_tick() - 25.0 * 1e-4).abs() < 1e-12);
    }

    #[test]
    fn empty_zone_is_harmless() {
        let z = snap(&[]);
        assert_eq!(z.total_users(), 0);
        assert!(z.most_loaded().is_none());
        assert_eq!(z.imbalance(), 0);
        assert_eq!(z.worst_avg_tick(), 0.0);
    }

    #[test]
    fn server_lookup() {
        let z = snap(&[5, 6]);
        assert_eq!(z.server(NodeId(1)).unwrap().active_users, 6);
        assert!(z.server(NodeId(9)).is_none());
    }
}
