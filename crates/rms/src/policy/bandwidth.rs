//! The bandwidth-proportional baseline (Bezerra & Geyer \[4\]).
//!
//! "In \[4\], the authors allocate the load on heterogeneous server
//! resources proportionally to each server's networking bandwidth." Each
//! server gets a capacity weight; every control round the policy migrates
//! users so the distribution matches the weights, without pacing. Like the
//! static threshold, the allocation ignores the measured tick duration.

use crate::actions::Action;
use crate::monitor::ZoneSnapshot;
use crate::policy::Policy;
use rtf_core::net::NodeId;
use std::collections::BTreeMap;

/// The baseline policy.
pub struct BandwidthProportional {
    /// Capacity weight per server (e.g. its uplink bandwidth). Servers
    /// absent from the map default to weight 1.0.
    pub weights: BTreeMap<NodeId, f64>,
    /// Deviations up to this many users are tolerated.
    pub slack: u32,
    /// Add a replica when total users exceed this per unit of weight.
    pub users_per_weight_limit: u32,
}

impl BandwidthProportional {
    /// Creates the policy with uniform weights.
    pub fn new(slack: u32, users_per_weight_limit: u32) -> Self {
        Self {
            weights: BTreeMap::new(),
            slack,
            users_per_weight_limit,
        }
    }

    /// Sets one server's weight.
    pub fn set_weight(&mut self, server: NodeId, weight: f64) {
        assert!(weight > 0.0);
        self.weights.insert(server, weight);
    }

    fn weight(&self, server: NodeId) -> f64 {
        self.weights.get(&server).copied().unwrap_or(1.0)
    }
}

impl Policy for BandwidthProportional {
    fn name(&self) -> &'static str {
        "bandwidth-proportional"
    }

    fn decide(&mut self, snapshot: &ZoneSnapshot, _now_tick: u64) -> Vec<Action> {
        let mut out = Vec::new();
        if snapshot.servers.is_empty() {
            return out;
        }
        let n = snapshot.total_users();
        let total_weight: f64 = snapshot.servers.iter().map(|s| self.weight(s.server)).sum();
        if total_weight <= 0.0 {
            return out;
        }

        // Scale out on aggregate pressure.
        if f64::from(n) > f64::from(self.users_per_weight_limit) * total_weight {
            out.push(Action::AddReplica {
                zone: snapshot.zone,
            });
        }

        // Targets proportional to weight.
        let mut surpluses: Vec<(NodeId, u32)> = Vec::new();
        let mut deficits: Vec<(NodeId, u32)> = Vec::new();
        for s in &snapshot.servers {
            let target =
                roia_model::convert::round_u32(f64::from(n) * self.weight(s.server) / total_weight);
            if s.active_users > target + self.slack {
                surpluses.push((s.server, s.active_users - target));
            } else if s.active_users + self.slack < target {
                deficits.push((s.server, target - s.active_users));
            }
        }

        let mut d_iter = deficits.into_iter();
        let mut current = d_iter.next();
        for (src, mut surplus) in surpluses {
            while surplus > 0 {
                let Some((dst, need)) = current else { break };
                let k = surplus.min(need);
                out.push(Action::Migrate {
                    from: src,
                    to: dst,
                    users: k,
                });
                surplus -= k;
                if need > k {
                    current = Some((dst, need - k));
                } else {
                    current = d_iter.next();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ServerSnapshot;
    use rtf_core::zone::ZoneId;

    fn snapshot(users: &[u32]) -> ZoneSnapshot {
        ZoneSnapshot {
            zone: ZoneId(1),
            npcs: 0,
            servers: users
                .iter()
                .enumerate()
                .map(|(i, &u)| ServerSnapshot {
                    server: NodeId(i as u32),
                    active_users: u,
                    avg_tick: 0.020,
                    max_tick: 0.022,
                    speedup: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn uniform_weights_equalize() {
        let mut p = BandwidthProportional::new(0, 10_000);
        let actions = p.decide(&snapshot(&[60, 20, 10]), 0);
        let moved: u32 = actions
            .iter()
            .map(|a| match a {
                Action::Migrate { users, .. } => *users,
                _ => 0,
            })
            .sum();
        assert_eq!(
            moved, 30,
            "everything above the 30/30/30 split moves at once"
        );
    }

    #[test]
    fn weighted_server_takes_proportional_share() {
        let mut p = BandwidthProportional::new(0, 10_000);
        p.set_weight(NodeId(0), 3.0); // 3x the bandwidth of server 1
        let actions = p.decide(&snapshot(&[40, 40]), 0);
        // Targets: 60 / 20 ⇒ server 1 sheds 20 to server 0.
        assert_eq!(
            actions,
            vec![Action::Migrate {
                from: NodeId(1),
                to: NodeId(0),
                users: 20
            }]
        );
    }

    #[test]
    fn slack_suppresses_churn() {
        let mut p = BandwidthProportional::new(5, 10_000);
        assert!(p.decide(&snapshot(&[33, 30, 27]), 0).is_empty());
    }

    #[test]
    fn scale_out_on_weight_limit() {
        let mut p = BandwidthProportional::new(0, 50);
        // 2 servers × weight 1 × 50 = 100 < 110.
        let actions = p.decide(&snapshot(&[55, 55]), 0);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::AddReplica { .. })));
    }

    #[test]
    fn tick_duration_is_ignored_by_design() {
        let mut p = BandwidthProportional::new(0, 10_000);
        let mut s = snapshot(&[30, 30]);
        s.servers[0].avg_tick = 0.080; // overloaded, but counts are equal
        assert!(p.decide(&s, 0).is_empty());
    }
}
