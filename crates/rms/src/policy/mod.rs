//! Load-balancing policies.
//!
//! [`ModelDriven`] is the paper's contribution: every decision is gated by
//! the scalability model's thresholds. The other three reproduce the
//! strategies the paper compares against in §IV/§VI:
//!
//! * [`StaticInterval`] — the *initial* RTF-RMS behaviour: equalize user
//!   counts at fixed intervals with no regard for migration overhead.
//! * [`StaticThreshold`] — Duong & Zhou \[7\]: a fixed per-server maximum
//!   user count triggers migration/scale-out.
//! * [`BandwidthProportional`] — Bezerra & Geyer \[4\]: load allocated
//!   proportionally to each server's capacity weight.
//!
//! [`Simultaneous`] extends [`ModelDriven`] with a vertical scaling leg
//! raced against the horizontal one in the same control round (Ship et
//! al., PAPERS.md) — built for the adversarial scenario campaigns.

mod bandwidth;
mod model_driven;
mod predictive;
mod simultaneous;
mod static_interval;
mod static_threshold;

pub use bandwidth::BandwidthProportional;
pub use model_driven::{ModelDriven, ModelDrivenConfig};
pub use predictive::{PredictiveModelDriven, TrendForecaster};
pub use simultaneous::{Simultaneous, SimultaneousConfig};
pub use static_interval::StaticInterval;
pub use static_threshold::StaticThreshold;

use crate::actions::Action;
use crate::monitor::ZoneSnapshot;
use roia_obs::Tracer;

/// A load-balancing strategy: maps a monitoring snapshot to actions.
pub trait Policy: Send {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;

    /// Decides the actions for one control round.
    fn decide(&mut self, snapshot: &ZoneSnapshot, now_tick: u64) -> Vec<Action>;

    /// Installs a telemetry tracer. Policies that keep a decision audit
    /// trail ([`ModelDriven`], [`PredictiveModelDriven`]) emit their
    /// Eq. 1–5 evaluations through it; the baselines ignore it.
    fn set_tracer(&mut self, _tracer: Tracer) {}
}
