//! The scalability-model-driven policy — the paper's improved RTF-RMS.
//!
//! Every decision consults the calibrated [`ScalabilityModel`]:
//!
//! * **user migration** is paced by Eq. (5): the most loaded server
//!   initiates at most `x_max_ini` migrations per control round and every
//!   target receives at most its `x_max_rcv` (Listing 1);
//! * **replication enactment** fires at 80 % of `n_max(l)` (Fig. 5's
//!   dashed line) and never beyond `l_max` (Eq. (3));
//! * **resource substitution** replaces a standard machine once `l_max` is
//!   reached;
//! * **resource removal** drains the least loaded replica (with paced
//!   migrations) once the population fits comfortably on `l − 1` servers.

use crate::actions::Action;
use crate::monitor::ZoneSnapshot;
use crate::policy::Policy;
use roia_autocal::ModelRegistry;
use roia_model::{MigrationSide, ScalabilityModel};
use roia_obs::{TraceEvent, Tracer};
use rtf_core::net::NodeId;
use std::sync::Arc;

/// Tunables of the model-driven policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelDrivenConfig {
    /// Remove a replica when `n` drops below this fraction of
    /// `n_max(l − 1)` (hysteresis below the 80 % add-trigger, so the
    /// controller does not flap).
    pub remove_fraction: f64,
    /// Control rounds to wait after requesting a replica before requesting
    /// another (covers the machine's boot delay).
    pub replica_cooldown_rounds: u32,
    /// Ignore imbalance smaller than this many users.
    pub min_imbalance: u32,
    /// Fraction of the tick-slack migration budget actually spent per
    /// round (0 < h ≤ 1). The Fig. 7 budgets divide the slack `U − T` by
    /// the *model's* per-user migration cost; when that estimate lags
    /// reality — right after a workload regime shift, before refits catch
    /// up — a full-budget burst overshoots `U`. Below 1 this hedges the
    /// budget so a cost underestimate of up to `1/h` still fits in the
    /// slack. `1.0` reproduces the paper's strict budgets.
    pub migration_headroom: f64,
    /// Minimum migrations per round allowed *off a server whose observed
    /// tick already exceeds `U`*. The Eq. (5) budget is zero there — no
    /// slack is left to pay for a migration — which deadlocks
    /// rebalancing exactly when it is most needed: an overloaded server
    /// can never shed users, so its tick never recovers. A floor of 1
    /// accepts one transiently worse tick per round to escape the
    /// overload. `0` reproduces the paper's strict budgets.
    pub overload_migration_floor: u32,
}

impl Default for ModelDrivenConfig {
    fn default() -> Self {
        Self {
            remove_fraction: 0.6,
            replica_cooldown_rounds: 4,
            min_imbalance: 4,
            migration_headroom: 1.0,
            overload_migration_floor: 0,
        }
    }
}

/// The model-driven policy (§IV).
pub struct ModelDriven {
    model: ScalabilityModel,
    /// Version of `model` when it came from a registry (0 = frozen).
    model_version: u64,
    /// Live model source, when online calibration feeds this policy.
    registry: Option<Arc<ModelRegistry>>,
    config: ModelDrivenConfig,
    draining: Option<NodeId>,
    cooldown_rounds_left: u32,
    replicas_last_round: u32,
    tracer: Tracer,
}

impl ModelDriven {
    /// Creates the policy around a frozen calibrated model.
    pub fn new(model: ScalabilityModel, config: ModelDrivenConfig) -> Self {
        Self {
            model,
            model_version: 0,
            registry: None,
            config,
            draining: None,
            cooldown_rounds_left: 0,
            replicas_last_round: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Creates the policy against a live [`ModelRegistry`]: every decision
    /// uses the latest published model version instead of a frozen
    /// parameter set.
    pub fn live(registry: Arc<ModelRegistry>, config: ModelDrivenConfig) -> Self {
        let current = registry.current();
        Self {
            model: current.model.clone(),
            model_version: current.version,
            registry: Some(registry),
            config,
            draining: None,
            cooldown_rounds_left: 0,
            replicas_last_round: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// The model in use.
    pub fn model(&self) -> &ScalabilityModel {
        &self.model
    }

    /// Version of the model in use (0 when frozen).
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Pulls the registry's latest version into the local model cache.
    /// No-op for a frozen policy; cheap (one atomic read) when nothing
    /// was published since the last call.
    pub fn refresh_model(&mut self) {
        if let Some(registry) = &self.registry {
            let current = registry.current();
            if current.version != self.model_version {
                self.model = current.model.clone();
                self.model_version = current.version;
            }
        }
    }

    /// The server currently being drained for removal, if any.
    pub fn draining(&self) -> Option<NodeId> {
        self.draining
    }

    /// Applies the migration-headroom hedge to a raw slack budget.
    fn hedged(&self, raw: u32) -> u32 {
        roia_model::convert::floor_u32(f64::from(raw) * self.config.migration_headroom)
    }

    /// Audit-trail record of one decision with its Eq. 1–5 inputs
    /// plugged in (no-op when tracing is off).
    fn audit_decision(&self, snapshot: &ZoneSnapshot, now_tick: u64, kind: &'static str) {
        if !self.tracer.is_enabled() {
            return;
        }
        let l = snapshot.replicas();
        let n = snapshot.total_users();
        let m = snapshot.npcs;
        let n_max = self.model.max_users(l.max(1), m);
        self.tracer.emit(TraceEvent::Decision {
            tick: now_tick,
            zone: snapshot.zone.0,
            kind,
            model_version: self.model_version,
            replicas: l,
            users: n,
            npcs: m,
            predicted_tick_s: self.model.tick(l.max(1), n, m, n.div_ceil(l.max(1))),
            n_max,
            trigger: self.model.replication_trigger(l.max(1), m),
            l_max: self.model.max_replicas(m).l_max,
        });
    }

    /// Audit-trail record of one Eq. 5 budget evaluation for a
    /// donor→receiver pair (no-op when tracing is off).
    #[allow(clippy::too_many_arguments)]
    fn audit_budget(
        &self,
        now_tick: u64,
        from: &crate::monitor::ServerSnapshot,
        to: &crate::monitor::ServerSnapshot,
        x_max_ini: u32,
        x_max_rcv: u32,
        granted: u32,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.emit(TraceEvent::MigrationBudget {
            tick: now_tick,
            cause: now_tick,
            from: from.server.0,
            to: to.server.0,
            from_tick_s: from.avg_tick,
            to_tick_s: to.avg_tick,
            x_max_ini,
            x_max_rcv,
            granted,
        });
    }

    /// Listing 1: one round of paced migrations from the most loaded server
    /// toward the underloaded ones. `exclude` removes a server (e.g. a
    /// draining one) from the target set.
    fn balance_round(&self, snapshot: &ZoneSnapshot, now_tick: u64, out: &mut Vec<Action>) {
        let n = snapshot.total_users();
        let l = snapshot.replicas();
        if l < 2 || n == 0 {
            return;
        }
        if snapshot.imbalance() < self.config.min_imbalance.max(1) {
            return;
        }
        let avg = n / l;
        let Some(s_max) = snapshot.most_loaded() else {
            return;
        };

        // (ii) the initiate budget of s_max, from its observed tick.
        let mut ini_left = self.hedged(roia_model::x_max_from_tick(
            &self.model.params,
            MigrationSide::Initiate,
            s_max.avg_tick,
            n,
            self.model.u_threshold,
        ));
        if s_max.avg_tick >= self.model.u_threshold {
            ini_left = ini_left.max(self.config.overload_migration_floor);
        }
        let mut surplus = s_max.active_users.saturating_sub(avg);

        for target in &snapshot.servers {
            if target.server == s_max.server || ini_left == 0 || surplus == 0 {
                continue;
            }
            let deficit = avg.saturating_sub(target.active_users);
            if deficit == 0 {
                continue;
            }
            // (iii) the receive budget of the target.
            let rcv = self.hedged(roia_model::x_max_from_tick(
                &self.model.params,
                MigrationSide::Receive,
                target.avg_tick,
                n,
                self.model.u_threshold,
            ));
            let k = deficit.min(rcv).min(ini_left).min(surplus);
            self.audit_budget(now_tick, s_max, target, ini_left, rcv, k);
            if k == 0 {
                continue;
            }
            out.push(Action::Migrate {
                from: s_max.server,
                to: target.server,
                users: k,
            });
            ini_left -= k;
            surplus -= k;
        }
    }

    /// Paced draining of a replica marked for removal.
    fn drain_round(
        &self,
        snapshot: &ZoneSnapshot,
        victim: NodeId,
        now_tick: u64,
        out: &mut Vec<Action>,
    ) {
        let Some(v) = snapshot.server(victim) else {
            return;
        };
        let n = snapshot.total_users();
        let mut ini_left = self.hedged(roia_model::x_max_from_tick(
            &self.model.params,
            MigrationSide::Initiate,
            v.avg_tick,
            n,
            self.model.u_threshold,
        ));
        if v.avg_tick >= self.model.u_threshold {
            ini_left = ini_left.max(self.config.overload_migration_floor);
        }
        let mut remaining = v.active_users;
        for target in &snapshot.servers {
            if target.server == victim || ini_left == 0 || remaining == 0 {
                continue;
            }
            let rcv = self.hedged(roia_model::x_max_from_tick(
                &self.model.params,
                MigrationSide::Receive,
                target.avg_tick,
                n,
                self.model.u_threshold,
            ));
            let k = remaining.min(rcv).min(ini_left);
            self.audit_budget(now_tick, v, target, ini_left, rcv, k);
            if k == 0 {
                continue;
            }
            out.push(Action::Migrate {
                from: victim,
                to: target.server,
                users: k,
            });
            ini_left -= k;
            remaining -= k;
        }
    }
}

impl Policy for ModelDriven {
    fn name(&self) -> &'static str {
        "model-driven"
    }

    fn decide(&mut self, snapshot: &ZoneSnapshot, now_tick: u64) -> Vec<Action> {
        self.refresh_model();
        let mut out = Vec::new();
        let l = snapshot.replicas();
        if l == 0 {
            return out;
        }
        let n = snapshot.total_users();
        let m = snapshot.npcs;

        // A new replica joined: reset the cooldown.
        if l > self.replicas_last_round {
            self.cooldown_rounds_left = 0;
        }
        self.replicas_last_round = l;
        self.cooldown_rounds_left = self.cooldown_rounds_left.saturating_sub(1);

        // Continue an in-progress removal first: drain, then shut down.
        // But re-check the scale-down condition every round: a workload
        // shift (or a model refit) mid-drain can mean the zone no longer
        // fits on l − 1 servers, and finishing the drain would wedge the
        // cluster — the remaining servers go past U, their receive
        // budgets hit zero, and the drain can neither finish nor yield
        // to replication while it holds the policy. Abort instead.
        if self.draining.is_some()
            && (l < 2
                || f64::from(n)
                    >= self.config.remove_fraction * f64::from(self.model.max_users(l - 1, m)))
        {
            self.draining = None;
        }
        if let Some(victim) = self.draining {
            match snapshot.server(victim) {
                Some(v) if v.active_users == 0 => {
                    out.push(Action::RemoveReplica {
                        zone: snapshot.zone,
                        server: victim,
                    });
                    self.draining = None;
                    // The snapshot still lists the victim; further decisions
                    // wait until the next round sees the updated group.
                    self.audit_decision(snapshot, now_tick, "remove_replica");
                    return out;
                }
                Some(_) => {
                    self.drain_round(snapshot, victim, now_tick, &mut out);
                    self.audit_decision(snapshot, now_tick, "scale_down");
                    return out;
                }
                None => self.draining = None,
            }
        }

        let trigger = self.model.replication_trigger(l, m);
        let limit = self.model.max_replicas(m);

        if n >= trigger && self.cooldown_rounds_left == 0 {
            if l < limit.l_max {
                out.push(Action::AddReplica {
                    zone: snapshot.zone,
                });
                self.cooldown_rounds_left = self.config.replica_cooldown_rounds;
                self.audit_decision(snapshot, now_tick, "add_replica");
            } else {
                // l_max reached: substitute the most loaded standard
                // machine, if one is left (§IV).
                let candidate = snapshot
                    .servers
                    .iter()
                    .filter(|s| s.speedup <= 1.0)
                    .max_by_key(|s| s.active_users);
                if let Some(old) = candidate {
                    out.push(Action::Substitute {
                        zone: snapshot.zone,
                        old: old.server,
                    });
                    self.cooldown_rounds_left = self.config.replica_cooldown_rounds;
                    self.audit_decision(snapshot, now_tick, "substitute");
                }
            }
        } else if l > 1 && self.draining.is_none() && self.cooldown_rounds_left == 0 {
            // Scale down when the population fits easily on l − 1 servers.
            let cap_smaller = self.model.max_users(l - 1, m);
            if f64::from(n) < self.config.remove_fraction * f64::from(cap_smaller) {
                if let Some(least) = snapshot.least_loaded() {
                    self.draining = Some(least.server);
                    self.drain_round(snapshot, least.server, now_tick, &mut out);
                    self.audit_decision(snapshot, now_tick, "scale_down");
                    return out;
                }
            }
        }

        let before_balance = out.len();
        self.balance_round(snapshot, now_tick, &mut out);
        if out.is_empty() {
            self.audit_decision(snapshot, now_tick, "hold");
        } else if out.len() > before_balance && before_balance == 0 {
            self.audit_decision(snapshot, now_tick, "balance");
        }
        out
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ServerSnapshot;
    use roia_model::{CostFn, ModelParams};
    use rtf_core::zone::ZoneId;

    /// A model with a known capacity: own cost 1e-4·u ⇒ n_max(1) = 399,
    /// trigger(1) = 319; migrations cost 1 ms each way.
    fn model() -> ScalabilityModel {
        let params = ModelParams {
            t_ua: CostFn::Constant(1e-4),
            t_fa: CostFn::Constant(2e-6),
            t_mig_ini: CostFn::Constant(1e-3),
            t_mig_rcv: CostFn::Constant(0.5e-3),
            ..ModelParams::default()
        };
        ScalabilityModel::new(params, 0.040)
    }

    fn snapshot(users: &[u32], ticks_ms: &[f64]) -> ZoneSnapshot {
        ZoneSnapshot {
            zone: ZoneId(1),
            npcs: 0,
            servers: users
                .iter()
                .zip(ticks_ms)
                .enumerate()
                .map(|(i, (&u, &t))| ServerSnapshot {
                    server: NodeId(i as u32),
                    active_users: u,
                    avg_tick: t * 1e-3,
                    max_tick: t * 1e-3,
                    speedup: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn no_action_in_comfort_zone() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        // Balanced, far below the trigger.
        let s = snapshot(&[50, 50], &[10.0, 10.0]);
        // But n=100 < 0.6 · n_max(1)=399·0.6=239 ⇒ removal kicks in! That is
        // correct behaviour; to test the comfort zone use a population in
        // the middle band.
        let s_mid = snapshot(&[150, 150], &[15.0, 15.0]);
        let _ = s;
        let actions = p.decide(&s_mid, 0);
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn migration_budgets_respected() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        // Heavy imbalance; s0 at 35 ms has budget (40−35)/1 ms = 4 (strict).
        let s = snapshot(&[180, 80], &[35.0, 15.0]);
        let actions = p.decide(&s, 0);
        let migrated: u32 = actions
            .iter()
            .map(|a| match a {
                Action::Migrate { from, users, .. } => {
                    assert_eq!(*from, NodeId(0));
                    *users
                }
                _ => 0,
            })
            .sum();
        assert!(migrated >= 1, "{actions:?}");
        assert!(migrated <= 4, "Eq. (5) caps the round at 4, got {migrated}");
    }

    #[test]
    fn overloaded_server_with_no_budget_cannot_migrate() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        // Tick already past U ⇒ x_max_ini = 0 ⇒ no migrations (RTF-RMS
        // must escalate via replication instead — which it does, since
        // 330 ≥ trigger(2)).
        let s = snapshot(&[250, 80], &[41.0, 15.0]);
        let actions = p.decide(&s, 0);
        assert!(
            actions.iter().all(|a| !matches!(a, Action::Migrate { .. })),
            "{actions:?}"
        );
    }

    #[test]
    fn replication_fires_at_trigger() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        let trigger = p.model().replication_trigger(1, 0);
        let s = snapshot(&[trigger], &[32.0]);
        let actions = p.decide(&s, 0);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::AddReplica { .. })),
            "n = trigger must enact replication: {actions:?}"
        );
    }

    #[test]
    fn below_trigger_no_replication() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        let trigger = p.model().replication_trigger(1, 0);
        let s = snapshot(&[trigger - 1], &[30.0]);
        let actions = p.decide(&s, 0);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::AddReplica { .. })));
    }

    #[test]
    fn cooldown_prevents_replica_storm() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        let s = snapshot(&[390], &[38.0]);
        let first = p.decide(&s, 0);
        assert_eq!(
            first
                .iter()
                .filter(|a| matches!(a, Action::AddReplica { .. }))
                .count(),
            1
        );
        // Immediately after, the cooldown suppresses another request.
        let second = p.decide(&s, 25);
        assert!(second
            .iter()
            .all(|a| !matches!(a, Action::AddReplica { .. })));
    }

    #[test]
    fn substitution_after_l_max() {
        // Force l_max = 1 by making replication useless (c = 1 and heavy
        // forwarded costs).
        let params = ModelParams {
            t_ua: CostFn::Constant(1e-4),
            t_fa: CostFn::Constant(1e-4),
            t_mig_ini: CostFn::Constant(1e-3),
            t_mig_rcv: CostFn::Constant(1e-3),
            ..ModelParams::default()
        };
        let model = ScalabilityModel::new(params, 0.040).with_improvement_factor(1.0);
        assert_eq!(model.max_replicas(0).l_max, 1);
        let mut p = ModelDriven::new(model, ModelDrivenConfig::default());
        let s = snapshot(&[390], &[39.0]);
        let actions = p.decide(&s, 0);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Substitute { .. })),
            "at l_max the policy substitutes: {actions:?}"
        );
    }

    #[test]
    fn removal_drains_then_removes() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        // Two replicas, tiny population: removal territory.
        let s = snapshot(&[30, 10], &[5.0, 3.0]);
        let actions = p.decide(&s, 0);
        assert!(p.draining().is_some(), "least loaded marked for draining");
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Migrate { from, .. } if *from == NodeId(1))));

        // Once drained, the replica is removed.
        let drained = snapshot(&[40, 0], &[6.0, 0.5]);
        let actions2 = p.decide(&drained, 25);
        assert!(
            actions2
                .iter()
                .any(|a| matches!(a, Action::RemoveReplica { server, .. } if *server == NodeId(1))),
            "{actions2:?}"
        );
        assert!(p.draining().is_none());
    }

    #[test]
    fn draining_server_disappearing_resets_state() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        let s = snapshot(&[30, 10], &[5.0, 3.0]);
        p.decide(&s, 0);
        assert!(p.draining().is_some());
        // Next snapshot no longer contains the victim (sim removed it).
        let gone = snapshot(&[40], &[6.0]);
        p.decide(&gone, 25);
        assert!(p.draining().is_none());
    }

    #[test]
    fn live_policy_follows_registry_versions() {
        use roia_autocal::{
            CandidateFit, FitPath, ParamRefit, PublishOutcome, RefitReason, RegistryConfig,
        };
        let registry = Arc::new(ModelRegistry::new(
            model(),
            RegistryConfig {
                cooldown_ticks: 0,
                min_relative_change: 0.0,
                ..RegistryConfig::default()
            },
        ));
        let mut p = ModelDriven::live(registry.clone(), ModelDrivenConfig::default());
        assert_eq!(p.model_version(), 1);
        let trigger_v1 = p.model().replication_trigger(1, 0);

        // Publish a version where the per-user cost doubled: capacity (and
        // the trigger) halves.
        let doubled = CostFn::Constant(2e-4);
        let mut params = model().params;
        params.set(roia_model::ParamKind::Ua, doubled.clone());
        let outcome = registry.try_publish(
            CandidateFit {
                params,
                refits: vec![ParamRefit {
                    kind: roia_model::ParamKind::Ua,
                    cost_fn: doubled,
                    samples: 100,
                    r_squared: 0.99,
                    rmse: 1e-6,
                    mean_y: 2e-4,
                    path: FitPath::Rls,
                }],
                reason: RefitReason::Drift,
            },
            10,
        );
        assert!(matches!(outcome, PublishOutcome::Published { version: 2 }));

        // The next decision runs on the new model.
        let s = snapshot(&[trigger_v1 - 50], &[30.0]);
        let actions = p.decide(&s, 0);
        assert_eq!(p.model_version(), 2);
        let trigger_v2 = p.model().replication_trigger(1, 0);
        assert!(trigger_v2 < trigger_v1);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::AddReplica { .. })),
            "below the stale trigger but above the live one: {actions:?}"
        );
    }

    #[test]
    fn small_imbalance_ignored() {
        let mut p = ModelDriven::new(model(), ModelDrivenConfig::default());
        let s = snapshot(&[151, 149], &[15.0, 15.0]);
        let actions = p.decide(&s, 0);
        assert!(
            actions.is_empty(),
            "imbalance of 2 < min_imbalance: {actions:?}"
        );
    }
}
